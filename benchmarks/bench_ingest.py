"""Ingestion benchmark: columnar streaming vs the object-graph reader.

Before the columnar refactor, parsing a LiLa trace materialized one
Python object per interval and per sample entry before any analysis
could run. The streaming path (:func:`repro.lila.source.build_store`)
folds the same record stream into parallel arrays instead. This script
quantifies the difference on a synthetic session of configurable size:

- **peak memory** while parsing and holding the result (tracemalloc
  peak; the process's max RSS is also reported where available), and
- **parse time** (best of ``--repeats`` runs).

Both paths share the same tokenizer (:class:`TextTraceSource`), so the
comparison isolates exactly the representation cost.

Two further phases exercise the zero-copy column file:

- **mmap fan-out**: the trace is converted to a ``.lilac`` column file
  and the engine fan-out is timed against the in-memory store vs the
  mmap-backed one; because a file-backed store pickles as its path,
  the shipped task bytes collapse (gated by ``--min-ship-ratio``).
- **sharding**: one large trace dispatched whole vs split into row
  shards across workers, verified byte-identical and timed.

The script exits nonzero if the memory improvement falls below
``--min-ratio`` (default 2x), if the shipped-bytes improvement falls
below ``--min-ship-ratio`` (default 2x), or, with ``--budget-mb``, if
the columnar peak exceeds the budget — which is how CI uses it as an
ingestion-regression gate::

    python benchmarks/bench_ingest.py --records 50000 --budget-mb 64
"""

from __future__ import annotations

import argparse
import gc
import json
import pickle
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.core.intervals import IntervalKind, IntervalTreeBuilder  # noqa: E402
from repro.core.samples import Sample, ThreadSample  # noqa: E402
from repro.core.store import (  # noqa: E402
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
)
from repro.core.trace import Trace, TraceMetadata  # noqa: E402
from repro.lila.source import TextTraceSource, build_store  # noqa: E402

NS_PER_MS = 1_000_000


def generate_trace(path: Path, records: int) -> int:
    """Write a deterministic synthetic text trace with >= ``records`` records.

    Episodes alternate among a few structural shapes (listener only,
    listener+paint, with/without a GC) so the trace exercises nesting,
    interning, and the sample section like a real session does.
    """
    lines: List[str] = ["#%lila 1"]
    episode_lines = 7  # average lines per episode incl. its samples
    episodes = max(1, records // episode_lines)
    start_ns = 1_000_000_000
    period = 5 * NS_PER_MS
    t = start_ns
    body: List[str] = []
    sample_section: List[str] = []
    for i in range(episodes):
        shape = i % 4
        dur = (3 + (i % 17)) * NS_PER_MS
        body.append(f"O {t} dispatch java.awt.EventQueue#dispatchEvent")
        inner = t + dur // 8
        body.append(
            f"O {inner} listener app.view.Editor#actionPerformed{i % 23}"
        )
        if shape == 1:
            mid = inner + dur // 8
            body.append(f"G {mid} {mid + dur // 16} gc.Collector#minor")
        body.append(f"C {inner + dur // 2}")
        if shape >= 2:
            paint = t + (dur * 3) // 4
            body.append(f"O {paint} paint javax.swing.JComponent#paint")
            body.append(f"C {paint + dur // 8}")
        body.append(f"C {t + dur}")
        tick = t + dur // 2
        sample_section.append(f"P {tick}")
        state = ("runnable", "blocked", "waiting")[i % 3]
        sample_section.append(
            f"t gui {state} app.view.Editor#actionPerformed{i % 23};"
            "java.awt.EventQueue#dispatchEvent"
        )
        if i % 2:
            sample_section.append(
                f"t worker runnable app.io.Loader#fetch{i % 11};"
                "java.lang.Thread#run"
            )
        t += dur + 2 * NS_PER_MS
    end_ns = t + NS_PER_MS
    lines += [
        "M application BenchApp",
        "M session_id bench-session",
        f"M start_ns {start_ns}",
        f"M end_ns {end_ns}",
        "M gui_thread gui",
        f"M sample_period_ns {period}",
        "M filter_ms 3.0",
        f"F {episodes // 10}",
        "T gui",
    ]
    lines += body
    lines += ["T worker", f"O {start_ns} native java.lang.Thread#run",
              f"C {end_ns - 1}"]
    lines += sample_section
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def legacy_read(path: Path) -> Trace:
    """The pre-columnar eager reader: every record becomes an object.

    Reproduces what ``read_trace`` did before the refactor — the same
    record stream folded into :class:`Interval`/:class:`Sample` objects
    and an eagerly-episoded :class:`Trace` — so the benchmark compares
    representations, not tokenizers.
    """
    meta: Dict[str, str] = {}
    extra: Dict[str, str] = {}
    filtered = 0
    builders: Dict[str, IntervalTreeBuilder] = {}
    order: List[str] = []
    current: Optional[IntervalTreeBuilder] = None
    samples: List[Sample] = []
    tick_ns: Optional[int] = None
    entries: List[ThreadSample] = []
    for record in TextTraceSource(path).records():
        tag = record[0]
        if tag == REC_OPEN:
            current.open(record[2], record[3], record[1])
        elif tag == REC_CLOSE:
            current.close(record[1])
        elif tag == REC_GC:
            current.add_complete(
                IntervalKind.GC, record[3], record[1], record[2]
            )
        elif tag == REC_TICK:
            if tick_ns is not None:
                samples.append(Sample(tick_ns, entries))
            tick_ns, entries = record[1], []
        elif tag == REC_ENTRY:
            entries.append(ThreadSample(record[1], record[2], record[3]))
        elif tag == REC_THREAD:
            name = record[1]
            if name not in builders:
                builders[name] = IntervalTreeBuilder()
                order.append(name)
            current = builders[name]
        elif tag == REC_META:
            (extra if record[3] else meta)[record[1]] = record[2]
        elif tag == REC_FILTERED:
            filtered = record[1]
    if tick_ns is not None:
        samples.append(Sample(tick_ns, entries))
    metadata = TraceMetadata(
        application=meta["application"],
        session_id=meta["session_id"],
        start_ns=int(meta["start_ns"]),
        end_ns=int(meta["end_ns"]),
        gui_thread=meta["gui_thread"],
        sample_period_ns=int(meta.get("sample_period_ns", 10_000_000)),
        filter_ms=float(meta.get("filter_ms", 3.0)),
        extra=extra,
    )
    thread_roots = {name: builders[name].finish() for name in order}
    return Trace(
        metadata, thread_roots, samples=samples, short_episode_count=filtered
    )


def columnar_read(path: Path):
    return build_store(TextTraceSource(path))


def bench_mmap_fanout(
    path: Path, workdir: Path, repeats: int, workers: int = 2
) -> Dict[str, float]:
    """Engine fan-out over the in-memory store vs the mmap column file.

    Returns shipped pickle bytes per task and best fan-out times for
    both shapes. A file-backed store pickles as its path, so workers
    re-map the column file instead of receiving the columns by value.
    """
    from repro.core.analyzer import AnalysisConfig
    from repro.core.store import FacadeTrace
    from repro.engine.engine import AnalysisEngine
    from repro.lila.colfile import open_column_trace, write_column_file

    store = columnar_read(path)
    column_path = write_column_file(store, workdir / "bench.lilac")
    memory_trace = FacadeTrace(store)
    mapped_trace = open_column_trace(column_path)

    memory_bytes = len(pickle.dumps(memory_trace))
    mapped_bytes = len(pickle.dumps(mapped_trace))

    names = ("statistics", "occurrence")
    config = AnalysisConfig()

    def fanout(trace):
        engine = AnalysisEngine(workers=workers, use_cache=False)
        return engine.summarize_all(names, [trace], config)

    check_memory = pickle.dumps(sorted(fanout(memory_trace).items()))
    check_mapped = pickle.dumps(sorted(fanout(mapped_trace).items()))
    assert check_memory == check_mapped, (
        "mmap-backed fan-out disagrees with the in-memory fan-out"
    )

    memory_s = measure_time(lambda _: fanout(memory_trace), path, repeats)
    mapped_s = measure_time(lambda _: fanout(mapped_trace), path, repeats)
    return {
        "memory_task_bytes": memory_bytes,
        "mapped_task_bytes": mapped_bytes,
        "ship_ratio": (
            memory_bytes / mapped_bytes if mapped_bytes else float("inf")
        ),
        "memory_fanout_s": memory_s,
        "mapped_fanout_s": mapped_s,
        "fanout_speedup": memory_s / mapped_s if mapped_s else float("inf"),
    }


def bench_sharding(
    path: Path, workdir: Path, repeats: int,
    workers: int = 2, shards: int = 2,
) -> Dict[str, float]:
    """One large trace dispatched whole vs split into row shards.

    A single trace is one engine task, so workers cannot help it until
    it shards. The scaling signal reported is the **critical path**: the
    slowest single shard task vs the whole-trace task — what a
    multi-core fan-out waits for (wall-clock parallel speedup cannot be
    measured on a single-CPU CI box, so the bench times each shard task
    in-process instead). The sharded fan-out is verified byte-identical
    through the real worker pool first.
    """
    from repro.core.analyzer import AnalysisConfig
    from repro.core.plan import build_plan
    from repro.engine.engine import AnalysisEngine
    from repro.lila.colfile import open_column_trace, write_column_file

    store = columnar_read(path)
    column_path = write_column_file(store, workdir / "shard.lilac")
    trace = open_column_trace(column_path)
    names = ("statistics", "occurrence", "triggers")
    config = AnalysisConfig()

    def fanout(shard_count):
        engine = AnalysisEngine(
            workers=workers, use_cache=False, shards=shard_count
        )
        return engine.summarize_all(names, [trace], config)

    whole = pickle.dumps(sorted(fanout(1).items()))
    sharded = pickle.dumps(sorted(fanout(shards).items()))
    assert whole == sharded, (
        f"sharded fan-out ({shards} shards) disagrees with the whole-trace "
        f"fan-out"
    )

    # Critical path: a worker-side task = re-map the column file, then
    # execute its row range. Fresh trace per run so memos don't carry.
    plan = build_plan(names)

    def task(shard):
        worker_trace = open_column_trace(column_path)
        return plan.execute(worker_trace, config, shard=shard)

    whole_s = measure_time(lambda _: task(None), path, repeats)
    shard_times = [
        measure_time(lambda _: task((index, shards)), path, repeats)
        for index in range(shards)
    ]
    critical_s = max(shard_times)
    return {
        "shards": shards,
        "whole_task_s": whole_s,
        "critical_shard_s": critical_s,
        "shard_task_s": shard_times,
        "critical_path_speedup": (
            whole_s / critical_s if critical_s else float("inf")
        ),
    }


def measure_peak(func, path: Path) -> int:
    """Peak traced bytes while parsing and holding the result."""
    gc.collect()
    tracemalloc.start()
    result = func(path)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del result
    gc.collect()
    return peak


def measure_time(func, path: Path, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        result = func(path)
        best = min(best, time.perf_counter() - t0)
        del result
    return best


def max_rss_mb() -> Optional[float]:
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return rss / 1024.0 if sys.platform != "darwin" else rss / (1024.0**2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=50_000,
                        help="minimum record count of the synthetic trace")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing runs per path (best is reported)")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="required legacy/columnar peak-memory ratio")
    parser.add_argument("--min-ship-ratio", type=float, default=2.0,
                        help="required in-memory/mmap shipped-bytes ratio")
    parser.add_argument("--budget-mb", type=float, default=None,
                        help="fail if the columnar peak exceeds this")
    parser.add_argument("--trace", default=None,
                        help="use this text trace instead of a synthetic one")
    parser.add_argument("--skip-fanout", action="store_true",
                        help="skip the mmap fan-out and sharding phases")
    parser.add_argument("--json-out", default=None,
                        help="also write the numbers as JSON to this path")
    args = parser.parse_args(argv)

    tmpdir = None
    if args.trace is not None:
        path = Path(args.trace)
        print(f"trace: {path}")
    else:
        tmpdir = tempfile.TemporaryDirectory()
        path = Path(tmpdir.name) / "bench.lila"
        count = generate_trace(path, args.records)
        print(f"trace: {count} records, "
              f"{path.stat().st_size / 1024:.0f} KiB (synthetic)")

    # Verify both paths agree before trusting their numbers.
    store = columnar_read(path)
    legacy = legacy_read(path)
    assert store.interval_count == sum(
        1 for roots in legacy.thread_roots.values()
        for root in roots for _ in root.preorder()
    ), "paths disagree on interval count"
    assert store.sample_count == len(legacy.samples)
    intervals, ticks = store.interval_count, store.sample_count
    store_bytes = store.nbytes
    del store, legacy
    print(f"parsed: {intervals} intervals, {ticks} sample ticks; "
          f"columnar store holds {store_bytes / 1024:.0f} KiB of columns")

    legacy_peak = measure_peak(legacy_read, path)
    columnar_peak = measure_peak(columnar_read, path)
    legacy_time = measure_time(legacy_read, path, args.repeats)
    columnar_time = measure_time(columnar_read, path, args.repeats)

    mem_ratio = legacy_peak / columnar_peak if columnar_peak else float("inf")
    time_ratio = legacy_time / columnar_time if columnar_time else float("inf")
    print()
    print(f"{'path':<12} {'peak memory':>14} {'parse time':>12}")
    print(f"{'legacy':<12} {legacy_peak / 1024**2:>11.2f} MiB "
          f"{legacy_time * 1000:>9.1f} ms")
    print(f"{'columnar':<12} {columnar_peak / 1024**2:>11.2f} MiB "
          f"{columnar_time * 1000:>9.1f} ms")
    print(f"{'ratio':<12} {mem_ratio:>13.2f}x {time_ratio:>10.2f}x")
    rss = max_rss_mb()
    if rss is not None:
        print(f"process max RSS: {rss:.1f} MiB")

    failed = False
    if mem_ratio < args.min_ratio:
        print(f"FAIL: memory ratio {mem_ratio:.2f}x is below the required "
              f"{args.min_ratio:.1f}x", file=sys.stderr)
        failed = True
    if time_ratio < 1.0:
        print(f"FAIL: columnar parse is slower than legacy "
              f"({time_ratio:.2f}x)", file=sys.stderr)
        failed = True
    if args.budget_mb is not None and columnar_peak > args.budget_mb * 1024**2:
        print(f"FAIL: columnar peak {columnar_peak / 1024**2:.1f} MiB "
              f"exceeds the {args.budget_mb:.0f} MiB budget",
              file=sys.stderr)
        failed = True

    fanout = sharding = None
    if not args.skip_fanout:
        workdir = Path(tmpdir.name) if tmpdir is not None else path.parent
        fanout = bench_mmap_fanout(path, workdir, args.repeats)
        print()
        print("mmap fan-out (2 workers, statistics + occurrence):")
        print(f"  shipped bytes/task: in-memory "
              f"{fanout['memory_task_bytes']}, mapped "
              f"{fanout['mapped_task_bytes']} "
              f"({fanout['ship_ratio']:.0f}x lower)")
        print(f"  fan-out time: in-memory "
              f"{fanout['memory_fanout_s'] * 1000:.1f} ms, mapped "
              f"{fanout['mapped_fanout_s'] * 1000:.1f} ms "
              f"({fanout['fanout_speedup']:.2f}x)")
        if fanout["ship_ratio"] < args.min_ship_ratio:
            print(f"FAIL: shipped-bytes ratio {fanout['ship_ratio']:.2f}x "
                  f"is below the required {args.min_ship_ratio:.1f}x",
                  file=sys.stderr)
            failed = True
        sharding = bench_sharding(path, workdir, args.repeats)
        print(f"sharding ({sharding['shards']} shards, "
              f"verified byte-identical through the pool):")
        print(f"  whole task {sharding['whole_task_s'] * 1000:.1f} ms, "
              f"slowest shard task "
              f"{sharding['critical_shard_s'] * 1000:.1f} ms "
              f"({sharding['critical_path_speedup']:.2f}x shorter "
              f"critical path)")

    if args.json_out:
        append_trajectory(Path(args.json_out), {
            "generated": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "bench": "ingest_columns",
            "workload": {
                "records": args.records if args.trace is None else None,
                "intervals": intervals,
                "ticks": ticks,
                "store_bytes": store_bytes,
            },
            "legacy_peak_bytes": legacy_peak,
            "columnar_peak_bytes": columnar_peak,
            "legacy_parse_s": round(legacy_time, 6),
            "columnar_parse_s": round(columnar_time, 6),
            "memory_ratio": round(mem_ratio, 3),
            "parse_speedup": round(time_ratio, 3),
            "mmap_fanout": fanout,
            "sharding": sharding,
            "passed": not failed,
        })
        print(f"trajectory entry appended to {args.json_out}")

    if tmpdir is not None:
        tmpdir.cleanup()
    if not failed:
        print("PASS")
    return 1 if failed else 0


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` to the trajectory file (created if missing)."""
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"benchmark": "ingest_service", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    sys.exit(main())
