"""Ingestion benchmark: columnar streaming vs the object-graph reader.

Before the columnar refactor, parsing a LiLa trace materialized one
Python object per interval and per sample entry before any analysis
could run. The streaming path (:func:`repro.lila.source.build_store`)
folds the same record stream into parallel arrays instead. This script
quantifies the difference on a synthetic session of configurable size:

- **peak memory** while parsing and holding the result (tracemalloc
  peak; the process's max RSS is also reported where available), and
- **parse time** (best of ``--repeats`` runs).

Both paths share the same tokenizer (:class:`TextTraceSource`), so the
comparison isolates exactly the representation cost. The script exits
nonzero if the memory improvement falls below ``--min-ratio`` (default
2x) or, with ``--budget-mb``, if the columnar peak exceeds the budget —
which is how CI uses it as an ingestion-regression gate::

    python benchmarks/bench_ingest.py --records 50000 --budget-mb 64
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Dict, List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.core.intervals import IntervalKind, IntervalTreeBuilder  # noqa: E402
from repro.core.samples import Sample, ThreadSample  # noqa: E402
from repro.core.store import (  # noqa: E402
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
)
from repro.core.trace import Trace, TraceMetadata  # noqa: E402
from repro.lila.source import TextTraceSource, build_store  # noqa: E402

NS_PER_MS = 1_000_000


def generate_trace(path: Path, records: int) -> int:
    """Write a deterministic synthetic text trace with >= ``records`` records.

    Episodes alternate among a few structural shapes (listener only,
    listener+paint, with/without a GC) so the trace exercises nesting,
    interning, and the sample section like a real session does.
    """
    lines: List[str] = ["#%lila 1"]
    episode_lines = 7  # average lines per episode incl. its samples
    episodes = max(1, records // episode_lines)
    start_ns = 1_000_000_000
    period = 5 * NS_PER_MS
    t = start_ns
    body: List[str] = []
    sample_section: List[str] = []
    for i in range(episodes):
        shape = i % 4
        dur = (3 + (i % 17)) * NS_PER_MS
        body.append(f"O {t} dispatch java.awt.EventQueue#dispatchEvent")
        inner = t + dur // 8
        body.append(
            f"O {inner} listener app.view.Editor#actionPerformed{i % 23}"
        )
        if shape == 1:
            mid = inner + dur // 8
            body.append(f"G {mid} {mid + dur // 16} gc.Collector#minor")
        body.append(f"C {inner + dur // 2}")
        if shape >= 2:
            paint = t + (dur * 3) // 4
            body.append(f"O {paint} paint javax.swing.JComponent#paint")
            body.append(f"C {paint + dur // 8}")
        body.append(f"C {t + dur}")
        tick = t + dur // 2
        sample_section.append(f"P {tick}")
        state = ("runnable", "blocked", "waiting")[i % 3]
        sample_section.append(
            f"t gui {state} app.view.Editor#actionPerformed{i % 23};"
            "java.awt.EventQueue#dispatchEvent"
        )
        if i % 2:
            sample_section.append(
                f"t worker runnable app.io.Loader#fetch{i % 11};"
                "java.lang.Thread#run"
            )
        t += dur + 2 * NS_PER_MS
    end_ns = t + NS_PER_MS
    lines += [
        "M application BenchApp",
        "M session_id bench-session",
        f"M start_ns {start_ns}",
        f"M end_ns {end_ns}",
        "M gui_thread gui",
        f"M sample_period_ns {period}",
        "M filter_ms 3.0",
        f"F {episodes // 10}",
        "T gui",
    ]
    lines += body
    lines += ["T worker", f"O {start_ns} native java.lang.Thread#run",
              f"C {end_ns - 1}"]
    lines += sample_section
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def legacy_read(path: Path) -> Trace:
    """The pre-columnar eager reader: every record becomes an object.

    Reproduces what ``read_trace`` did before the refactor — the same
    record stream folded into :class:`Interval`/:class:`Sample` objects
    and an eagerly-episoded :class:`Trace` — so the benchmark compares
    representations, not tokenizers.
    """
    meta: Dict[str, str] = {}
    extra: Dict[str, str] = {}
    filtered = 0
    builders: Dict[str, IntervalTreeBuilder] = {}
    order: List[str] = []
    current: Optional[IntervalTreeBuilder] = None
    samples: List[Sample] = []
    tick_ns: Optional[int] = None
    entries: List[ThreadSample] = []
    for record in TextTraceSource(path).records():
        tag = record[0]
        if tag == REC_OPEN:
            current.open(record[2], record[3], record[1])
        elif tag == REC_CLOSE:
            current.close(record[1])
        elif tag == REC_GC:
            current.add_complete(
                IntervalKind.GC, record[3], record[1], record[2]
            )
        elif tag == REC_TICK:
            if tick_ns is not None:
                samples.append(Sample(tick_ns, entries))
            tick_ns, entries = record[1], []
        elif tag == REC_ENTRY:
            entries.append(ThreadSample(record[1], record[2], record[3]))
        elif tag == REC_THREAD:
            name = record[1]
            if name not in builders:
                builders[name] = IntervalTreeBuilder()
                order.append(name)
            current = builders[name]
        elif tag == REC_META:
            (extra if record[3] else meta)[record[1]] = record[2]
        elif tag == REC_FILTERED:
            filtered = record[1]
    if tick_ns is not None:
        samples.append(Sample(tick_ns, entries))
    metadata = TraceMetadata(
        application=meta["application"],
        session_id=meta["session_id"],
        start_ns=int(meta["start_ns"]),
        end_ns=int(meta["end_ns"]),
        gui_thread=meta["gui_thread"],
        sample_period_ns=int(meta.get("sample_period_ns", 10_000_000)),
        filter_ms=float(meta.get("filter_ms", 3.0)),
        extra=extra,
    )
    thread_roots = {name: builders[name].finish() for name in order}
    return Trace(
        metadata, thread_roots, samples=samples, short_episode_count=filtered
    )


def columnar_read(path: Path):
    return build_store(TextTraceSource(path))


def measure_peak(func, path: Path) -> int:
    """Peak traced bytes while parsing and holding the result."""
    gc.collect()
    tracemalloc.start()
    result = func(path)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del result
    gc.collect()
    return peak


def measure_time(func, path: Path, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        result = func(path)
        best = min(best, time.perf_counter() - t0)
        del result
    return best


def max_rss_mb() -> Optional[float]:
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return rss / 1024.0 if sys.platform != "darwin" else rss / (1024.0**2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=50_000,
                        help="minimum record count of the synthetic trace")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing runs per path (best is reported)")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="required legacy/columnar peak-memory ratio")
    parser.add_argument("--budget-mb", type=float, default=None,
                        help="fail if the columnar peak exceeds this")
    parser.add_argument("--trace", default=None,
                        help="use this text trace instead of a synthetic one")
    args = parser.parse_args(argv)

    tmpdir = None
    if args.trace is not None:
        path = Path(args.trace)
        print(f"trace: {path}")
    else:
        tmpdir = tempfile.TemporaryDirectory()
        path = Path(tmpdir.name) / "bench.lila"
        count = generate_trace(path, args.records)
        print(f"trace: {count} records, "
              f"{path.stat().st_size / 1024:.0f} KiB (synthetic)")

    # Verify both paths agree before trusting their numbers.
    store = columnar_read(path)
    legacy = legacy_read(path)
    assert store.interval_count == sum(
        1 for roots in legacy.thread_roots.values()
        for root in roots for _ in root.preorder()
    ), "paths disagree on interval count"
    assert store.sample_count == len(legacy.samples)
    intervals, ticks = store.interval_count, store.sample_count
    store_bytes = store.nbytes
    del store, legacy
    print(f"parsed: {intervals} intervals, {ticks} sample ticks; "
          f"columnar store holds {store_bytes / 1024:.0f} KiB of columns")

    legacy_peak = measure_peak(legacy_read, path)
    columnar_peak = measure_peak(columnar_read, path)
    legacy_time = measure_time(legacy_read, path, args.repeats)
    columnar_time = measure_time(columnar_read, path, args.repeats)

    mem_ratio = legacy_peak / columnar_peak if columnar_peak else float("inf")
    time_ratio = legacy_time / columnar_time if columnar_time else float("inf")
    print()
    print(f"{'path':<12} {'peak memory':>14} {'parse time':>12}")
    print(f"{'legacy':<12} {legacy_peak / 1024**2:>11.2f} MiB "
          f"{legacy_time * 1000:>9.1f} ms")
    print(f"{'columnar':<12} {columnar_peak / 1024**2:>11.2f} MiB "
          f"{columnar_time * 1000:>9.1f} ms")
    print(f"{'ratio':<12} {mem_ratio:>13.2f}x {time_ratio:>10.2f}x")
    rss = max_rss_mb()
    if rss is not None:
        print(f"process max RSS: {rss:.1f} MiB")

    failed = False
    if mem_ratio < args.min_ratio:
        print(f"FAIL: memory ratio {mem_ratio:.2f}x is below the required "
              f"{args.min_ratio:.1f}x", file=sys.stderr)
        failed = True
    if time_ratio < 1.0:
        print(f"FAIL: columnar parse is slower than legacy "
              f"({time_ratio:.2f}x)", file=sys.stderr)
        failed = True
    if args.budget_mb is not None and columnar_peak > args.budget_mb * 1024**2:
        print(f"FAIL: columnar peak {columnar_peak / 1024**2:.1f} MiB "
              f"exceeds the {args.budget_mb:.0f} MiB budget",
              file=sys.stderr)
        failed = True
    if tmpdir is not None:
        tmpdir.cleanup()
    if not failed:
        print("PASS")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
