"""Cause-analysis benchmark: graph build + outlier rank + run diff gate.

The dependency-graph cause analysis earns its keep only if attributing
a latency delta stays interactive: building every episode's cause
graph, extracting critical paths, ranking outlier causes, and diffing
two warehouse runs must all finish within a wall-clock bound over a
realistic ``io_service`` study. This script simulates a baseline and a
degraded run (every IO wait stretched by ``--io-scale``), verifies the
attribution is *correct* — the columnar cause tally matches the object
path, and the diff ranks the injected cause first — and then times the
pipeline, exiting nonzero past the bound, which is how CI uses it as a
smoke gate::

    python benchmarks/bench_cause.py --sessions 2 --max-diff-ms 250

``--json-out BENCH_cause.json`` additionally appends this run's
numbers to the benchmark trajectory.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.apps.io_service import simulate_service_sessions  # noqa: E402
from repro.core.analyzer import AnalysisConfig, LagAlyzer  # noqa: E402
from repro.core.causegraph import (  # noqa: E402
    build_graph,
    critical_path,
    merge_cause_tallies,
    rank_outliers,
    tally_causes,
)
from repro.warehouse.store import StudyWarehouse  # noqa: E402

#: The label the degraded run's extra latency must be attributed to
#: (orders.search's database scan dominates the stretched IO waits).
INJECTED_LABEL = "iowait:java.sql.Statement.executeQuery"


def best_of(repeats: int, fn) -> float:
    """Best wall time of ``repeats`` calls, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=2,
                        help="io_service sessions per run")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="session-length scale in (0, 1]")
    parser.add_argument("--io-scale", type=float, default=3.0,
                        help="IO-wait stretch of the degraded run")
    parser.add_argument("--seed", type=int, default=20100401)
    parser.add_argument("--threshold-ms", type=float, default=100.0)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per stage (best-of)")
    parser.add_argument("--max-graph-ms", type=float, default=500.0,
                        help="bound on building every episode graph + "
                             "critical path of one run")
    parser.add_argument("--max-diff-ms", type=float, default=250.0,
                        help="bound on the warehouse diff query")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="append this run's numbers to a "
                             "BENCH_cause.json trajectory")
    args = parser.parse_args(argv)

    config = AnalysisConfig(perceptible_threshold_ms=args.threshold_ms)
    baseline = simulate_service_sessions(
        "OrderApi", count=args.sessions, seed=args.seed, scale=args.scale
    )
    degraded = simulate_service_sessions(
        "OrderApi", count=args.sessions, seed=args.seed, scale=args.scale,
        io_scale=args.io_scale,
    )
    episodes = [ep for trace in baseline for ep in trace.episodes]
    print(f"simulated {2 * args.sessions} io_service sessions "
          f"(scale {args.scale}, io x{args.io_scale} degraded): "
          f"{len(episodes)} baseline episodes")

    # Correctness before timings: the columnar kernel tally must equal
    # the object-path tally, episode for episode.
    analyzer = LagAlyzer.from_traces(list(baseline), config=config)
    kernel_tally = analyzer.cause_summary().as_tally()
    object_tally = merge_cause_tallies(
        [tally_causes(trace.episodes) for trace in baseline]
    )
    if kernel_tally != object_tally:
        print("FAIL: columnar cause tally diverged from the object path",
              file=sys.stderr)
        return 1

    tmpdir = tempfile.TemporaryDirectory()
    warehouse = StudyWarehouse(Path(tmpdir.name) / "bench.sqlite")
    started = time.perf_counter()
    for run_id, traces in (("baseline", baseline), ("degraded", degraded)):
        for trace in traces:
            warehouse.ingest_trace(trace, run_id, config)
    ingest_s = time.perf_counter() - started

    report = warehouse.diff("baseline", "degraded")
    if not report.deltas or report.deltas[0].label != INJECTED_LABEL:
        top = report.deltas[0].label if report.deltas else "<none>"
        print(f"FAIL: diff ranked {top!r} first, expected the injected "
              f"cause {INJECTED_LABEL!r}", file=sys.stderr)
        return 1

    def graphs_and_paths() -> int:
        total = 0
        for episode in episodes:
            total += len(critical_path(build_graph(episode)))
        return total

    graph_ms = best_of(args.repeats, graphs_and_paths)
    rank_ms = best_of(
        args.repeats, lambda: rank_outliers(episodes, args.threshold_ms)
    )
    diff_ms = best_of(
        args.repeats, lambda: warehouse.diff("baseline", "degraded")
    )

    print(f"{'graphs + paths':<18} {graph_ms:>8.1f} ms "
          f"({len(episodes)} episodes)")
    print(f"{'outlier rank':<18} {rank_ms:>8.1f} ms")
    print(f"{'warehouse diff':<18} {diff_ms:>8.1f} ms")

    failed = False
    if graph_ms > args.max_graph_ms:
        print(f"FAIL: graph build {graph_ms:.1f} ms exceeds the "
              f"{args.max_graph_ms:.0f} ms bound", file=sys.stderr)
        failed = True
    if diff_ms > args.max_diff_ms:
        print(f"FAIL: diff query {diff_ms:.1f} ms exceeds the "
              f"{args.max_diff_ms:.0f} ms bound", file=sys.stderr)
        failed = True

    tmpdir.cleanup()
    if args.json_out:
        append_trajectory(Path(args.json_out), {
            "generated": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "workload": {
                "sessions": args.sessions,
                "scale": args.scale,
                "io_scale": args.io_scale,
                "seed": args.seed,
            },
            "episodes": len(episodes),
            "ingest_s": round(ingest_s, 6),
            "graph_ms": round(graph_ms, 3),
            "rank_ms": round(rank_ms, 3),
            "diff_ms": round(diff_ms, 3),
            "top_delta_label": report.deltas[0].label,
            "top_delta_ms": round(report.deltas[0].delta_ns / 1e6, 3),
            "passed": not failed,
        })
        print(f"trajectory entry appended to {args.json_out}")
    if not failed:
        print(f"PASS: injected cause ranked first; diff answered in "
              f"{diff_ms:.1f} ms (bound {args.max_diff_ms:.0f} ms)")
    return 1 if failed else 0


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` to the trajectory file (created if missing)."""
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"benchmark": "cause", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    sys.exit(main())
