"""Ablation — GC-blind pattern keys (Section II-D design choice).

The paper excludes GC nodes from pattern comparison so a collection's
arbitrary placement cannot split an equivalence class. This ablation
mines patterns both ways and quantifies the consolidation.
"""

from repro.core.patterns import PatternTable


def test_gc_blindness_consolidates_patterns(app_analyzer):
    # ArgoUML: frequent minor GCs spread through many episodes, the
    # worst case for GC-aware keys.
    episodes = app_analyzer("ArgoUML").episodes
    blind = PatternTable.from_episodes(episodes)
    aware = PatternTable.from_episodes(episodes, include_gc=True)
    print()
    print(f"GC-blind keys:  {blind.distinct_count} patterns")
    print(f"GC-aware keys:  {aware.distinct_count} patterns")
    print(f"consolidation:  "
          f"{aware.distinct_count - blind.distinct_count} patterns merged")
    assert aware.distinct_count >= blind.distinct_count
    # Coverage is unchanged; only grouping differs.
    assert aware.covered_episodes == blind.covered_episodes


def test_gc_blind_mining_cost(benchmark, app_analyzer):
    episodes = app_analyzer("ArgoUML").episodes
    table = benchmark(PatternTable.from_episodes, episodes)
    assert table.distinct_count > 0


def test_gc_aware_mining_cost(benchmark, app_analyzer):
    episodes = app_analyzer("ArgoUML").episodes

    def mine():
        return PatternTable.from_episodes(episodes, include_gc=True)

    table = benchmark(mine)
    assert table.distinct_count > 0
