"""Ablation — the 3 ms trace filter (Section III / V design choice).

LiLa filters sub-3 ms episodes to keep traces loadable; LagAlyzer only
sees their count. This ablation raises the effective filter further
(3 -> 10 -> 30 ms) and measures what the analyses would lose: traced
episodes drop fast, but perceptible episodes — the ones that matter —
are untouched, which is exactly why the paper's filter is safe.
"""

import pytest

from repro.core.patterns import PatternTable


@pytest.mark.parametrize("filter_ms", [3.0, 10.0, 30.0])
def test_filter_sensitivity(study_result, app_analyzer, filter_ms):
    analyzer = app_analyzer("SwingSet")
    episodes = [
        ep for ep in analyzer.episodes if ep.duration_ms >= filter_ms
    ]
    perceptible = [ep for ep in episodes if ep.is_perceptible()]
    table = PatternTable.from_episodes(episodes)
    print()
    print(f"filter {filter_ms:5.1f} ms: {len(episodes):5d} episodes, "
          f"{table.distinct_count:4d} patterns, "
          f"{len(perceptible):3d} perceptible")
    # Perceptible episodes are immune to any filter below 100 ms.
    assert len(perceptible) == len(analyzer.perceptible_episodes())


def test_filter_cost(benchmark, app_analyzer):
    episodes = app_analyzer("SwingSet").episodes

    def refilter():
        return [ep for ep in episodes if ep.duration_ms >= 10.0]

    kept = benchmark(refilter)
    assert len(kept) <= len(episodes)
