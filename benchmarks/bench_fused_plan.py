"""Fused-plan benchmark: one pass per trace vs N independent passes.

Before the plan refactor, asking for all seven characterization
analyses scanned every trace seven times: each analysis re-split the
episodes and re-derived pattern keys for itself. A fused
:class:`~repro.core.plan.AnalysisPlan` maps each trace **once**,
computing the shared stages (episode split, pattern tallies) a single
time and handing every operator its partial from the same pass — and
with a worker pool it dispatches one task per trace instead of one per
(analysis x trace).

This script times both shapes on simulated sessions (caching disabled,
so every run really computes) and verifies the summaries are
byte-identical before trusting the numbers:

- **legacy**: ``engine.summarize(name, ...)`` once per analysis —
  N fan-outs, N x traces tasks, shared work recomputed per analysis.
- **fused**: ``engine.summarize_all(names, ...)`` — one fan-out,
  one task per trace.

It exits nonzero if the fused pass is slower than the per-analysis
path at any worker setting, which is how CI uses it as a smoke gate::

    python benchmarks/bench_fused_plan.py --sessions 2 --scale 0.1 --repeats 2
"""

from __future__ import annotations

import argparse
import gc
import json
import pickle
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.apps.sessions import simulate_sessions  # noqa: E402
from repro.core.analyses import REGISTRY  # noqa: E402
from repro.core.api import AnalysisConfig  # noqa: E402
from repro.core.store import as_columnar  # noqa: E402
from repro.engine.engine import AnalysisEngine  # noqa: E402

APPLICATION = "CrosswordSage"


def run_legacy(names, traces, config, workers: int) -> Dict[str, object]:
    """N independent passes: one engine fan-out per analysis."""
    engine = AnalysisEngine(workers=workers, use_cache=False)
    return {
        name: engine.summarize(name, traces, config) for name in names
    }


def run_fused(names, traces, config, workers: int) -> Dict[str, object]:
    """One fused pass per trace through a single fan-out."""
    engine = AnalysisEngine(workers=workers, use_cache=False)
    return engine.summarize_all(names, traces, config)


def best_time(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=3,
                        help="simulated sessions to analyze")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="session-length multiplier in (0, 1]")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing runs per shape (best is reported)")
    parser.add_argument("--workers", type=int, nargs="+", default=[0, 2],
                        help="worker settings to benchmark (1 = serial "
                             "in-process, 0 = one worker per CPU)")
    parser.add_argument("--json-out", default=None,
                        help="also write the numbers as JSON to this path")
    args = parser.parse_args(argv)

    names = tuple(REGISTRY)
    config = AnalysisConfig()
    traces = [
        as_columnar(trace)
        for trace in simulate_sessions(
            APPLICATION, args.sessions, scale=args.scale
        )
    ]
    episodes = sum(len(t.columnar.episode_rows()) for t in traces)
    print(f"workload: {len(traces)} {APPLICATION} sessions "
          f"(scale {args.scale}), {episodes} episodes, "
          f"{len(names)} analyses")
    print(f"tasks per run: legacy {len(names) * len(traces)} "
          f"({len(names)} fan-outs), fused {len(traces)} (1 fan-out)")

    # Verify both shapes agree before trusting their numbers.
    serial_legacy = run_legacy(names, traces, config, workers=1)
    serial_fused = run_fused(names, traces, config, workers=1)
    for name in names:
        assert pickle.dumps(serial_fused[name]) == pickle.dumps(
            serial_legacy[name]
        ), f"fused and legacy summaries differ for {name!r}"
    print("verified: fused and per-analysis summaries are byte-identical")

    failed = False
    rows = []
    print()
    print(f"{'workers':<10} {'legacy':>12} {'fused':>12} {'speedup':>9}")
    for workers in args.workers:
        legacy_s = best_time(
            lambda: run_legacy(names, traces, config, workers), args.repeats
        )
        fused_s = best_time(
            lambda: run_fused(names, traces, config, workers), args.repeats
        )
        speedup = legacy_s / fused_s if fused_s else float("inf")
        label = "serial" if workers == 1 else (
            "per-CPU" if workers == 0 else str(workers)
        )
        print(f"{label:<10} {legacy_s * 1000:>9.1f} ms "
              f"{fused_s * 1000:>9.1f} ms {speedup:>8.2f}x")
        rows.append({
            "workers": workers,
            "legacy_ms": legacy_s * 1000,
            "fused_ms": fused_s * 1000,
            "speedup": speedup,
        })
        if fused_s > legacy_s:
            print(f"FAIL: fused pass is slower than {len(names)} "
                  f"per-analysis passes at workers={workers} "
                  f"({speedup:.2f}x)", file=sys.stderr)
            failed = True

    if args.json_out:
        append_trajectory(Path(args.json_out), {
            "generated": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "workload": {
                "sessions": args.sessions,
                "scale": args.scale,
                "episodes": episodes,
                "analyses": len(names),
            },
            "results": rows,
            "passed": not failed,
        })
        print(f"trajectory entry appended to {args.json_out}")

    if not failed:
        print("PASS")
    return 1 if failed else 0


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` to the trajectory file (created if missing)."""
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"benchmark": "columns", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    sys.exit(main())
