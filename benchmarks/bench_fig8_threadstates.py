"""Figure 8 — synchronization and sleep during (perceptible) episodes.

Regenerates both graphs and checks the paper's callouts: jEdit's
modal-dialog waits, FreeMind's monitor contention, Euclide's toolkit
sleeps — and the headline that aggregate (all-episode) statistics hide
what the perceptible episodes reveal. Benchmarks the state-tally pass.
"""

from repro.core import threadstates as threadstates_mod
from repro.study.figures import figure8_data


def _print_rows(data, heading):
    print()
    print(heading)
    print(f"{'app':<14s} {'blocked':>8s} {'waiting':>8s} {'sleeping':>9s}")
    for name, row in data.items():
        print(f"{name:<14s} {row['blocked']:7.0f}% {row['waiting']:7.0f}% "
              f"{row['sleeping']:8.0f}%")


def test_fig8_perceptible_rows(study_result):
    data = figure8_data(study_result, perceptible_only=True)
    _print_rows(data, "GUI-thread states in perceptible episodes")
    assert data["JEdit"]["waiting"] > 15.0
    assert data["FreeMind"]["blocked"] > 6.0
    assert data["Euclide"]["sleeping"] > 25.0
    # Euclide is the sleep outlier.
    assert data["Euclide"]["sleeping"] == max(
        row["sleeping"] for row in data.values()
    )


def test_fig8_aggregate_hides_causes(study_result):
    all_eps = figure8_data(study_result, perceptible_only=False)
    perceptible = figure8_data(study_result, perceptible_only=True)
    # The paper: over all episodes almost no blocked/wait/sleep time is
    # visible, while perceptible episodes show substantial shares.
    for name in ("Euclide", "JEdit", "FreeMind"):
        non_runnable_all = 100.0 - all_eps[name]["runnable"]
        non_runnable_perc = 100.0 - perceptible[name]["runnable"]
        assert non_runnable_perc > 1.5 * non_runnable_all, name


def test_fig8_analysis_cost(benchmark, app_analyzer):
    episodes = app_analyzer("Euclide").episodes
    summary = benchmark(threadstates_mod.summarize, episodes)
    assert summary.total > 0
