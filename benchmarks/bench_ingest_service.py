"""Ingest-service benchmark: many concurrent sessions, zero loss.

Spins up one :class:`repro.ingest.server.IngestServer` with a
deliberately small per-session queue and replays ``--sessions``
simulated sessions against it **concurrently** — every session gets its
own :class:`TraceClient` on its own thread, so the daemon sees the full
connection count at once and the bounded queues actually push back.

The script reports and gates on:

- **throughput** — records acknowledged per second of wall time across
  the whole fleet (``--min-records-per-sec``),
- **p99 ingest latency** — per-batch send-to-ack latency from the
  client's ``ingest.client.flush_ms`` histogram, upper-bound estimated
  from the bucket bounds (``--max-p99-ms``), and
- **zero record loss** — every line every client enqueued is in that
  session's spool file (exact line-count match, always fatal), with
  backpressure provably exercised (at least one nack fleet-wide).

CI runs it as a smoke gate in the ``ingest-bench`` job::

    python benchmarks/bench_ingest_service.py --sessions 200 --records 120

``--json-out BENCH_ingest.json`` additionally appends this run's
numbers to the tracked trajectory file (ROADMAP item 2).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.ingest.client import TraceClient  # noqa: E402
from repro.ingest.server import IngestServer  # noqa: E402
from repro.ingest.spool import spool_name  # noqa: E402
from repro.obs import runtime as obs_runtime  # noqa: E402
from repro.obs.observer import Observer  # noqa: E402

NS_PER_MS = 1_000_000
APPLICATION = "BenchService"


def session_lines(index: int, records: int) -> List[str]:
    """A valid synthetic text-trace, >= ``records`` lines, per session.

    Structurally a miniature interactive session — dispatch roots with a
    listener each plus sample ticks — so the spools the daemon writes
    are analyzable, not just countable.
    """
    lines = [
        "#%lila 1",
        f"M application {APPLICATION}",
        f"M session_id bench-{index}",
        "M start_ns 1000000000",
        "M gui_thread gui",
        "M sample_period_ns 5000000",
        "M filter_ms 3.0",
        "T gui",
    ]
    t = 1_000_000_000
    body: List[str] = []
    ticks: List[str] = []
    episode = 0
    while len(body) + len(ticks) < records:
        dur = (4 + (episode + index) % 13) * NS_PER_MS
        body.append(f"O {t} dispatch java.awt.EventQueue#dispatchEvent")
        body.append(
            f"O {t + dur // 8} listener app.Editor#action{episode % 7}"
        )
        body.append(f"C {t + dur // 2}")
        body.append(f"C {t + dur}")
        ticks.append(f"P {t + dur // 2}")
        ticks.append(
            f"t gui runnable app.Editor#action{episode % 7};"
            "java.awt.EventQueue#dispatchEvent"
        )
        t += dur + 2 * NS_PER_MS
        episode += 1
    lines.append(f"M end_ns {t + NS_PER_MS}")
    lines.append("F 0")
    return lines + body + ticks


def run_session(address, index: int, lines: List[str],
                batch_records: int) -> TraceClient:
    client = TraceClient(
        address,
        session=f"bench-{index}",
        application=APPLICATION,
        batch_records=batch_records,
        overflow="block",
    )
    try:
        client.extend(lines)
    finally:
        client.close()
    return client


def histogram_p99(observer: Observer, name: str) -> Optional[float]:
    """Upper-bound p99 estimate from the fixed-bucket histogram."""
    hist = observer.metrics.histogram(name)
    if not hist.count:
        return None
    target = hist.count * 0.99
    seen = 0
    for i, count in enumerate(hist.counts):
        seen += count
        if seen >= target:
            return (hist.buckets[i] if i < len(hist.buckets)
                    else hist.buckets[-1] * 2)
    return hist.buckets[-1] * 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=200,
                        help="concurrent client sessions")
    parser.add_argument("--records", type=int, default=120,
                        help="record lines per session")
    parser.add_argument("--batch-records", type=int, default=16,
                        help="client batch size (small = more frames)")
    parser.add_argument("--queue-limit", type=int, default=4,
                        help="server per-session queue bound")
    parser.add_argument("--min-records-per-sec", type=float, default=5000.0,
                        help="required fleet-wide acknowledged throughput")
    parser.add_argument("--max-p99-ms", type=float, default=1000.0,
                        help="p99 bound for per-batch send-to-ack latency")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="append this run's numbers to a "
                             "BENCH_ingest.json trajectory")
    args = parser.parse_args(argv)

    fleets = [session_lines(i, args.records) for i in range(args.sessions)]
    total_lines = sum(len(lines) for lines in fleets)
    print(f"fleet: {args.sessions} concurrent sessions, "
          f"{total_lines} records total, queue_limit={args.queue_limit}, "
          f"batch_records={args.batch_records}")

    observer = Observer()
    tmpdir = tempfile.TemporaryDirectory()
    spool_dir = Path(tmpdir.name)
    with obs_runtime.installed(observer):
        with IngestServer(spool_dir=spool_dir,
                          queue_limit=args.queue_limit) as server:
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=args.sessions) as pool:
                futures = [
                    pool.submit(run_session, server.address, i, lines,
                                args.batch_records)
                    for i, lines in enumerate(fleets)
                ]
                clients = [f.result() for f in futures]
            elapsed = time.perf_counter() - t0
            stats = server.stats()

    lost = 0
    for i, lines in enumerate(fleets):
        spool = spool_dir / spool_name(f"bench-{i}", APPLICATION)
        written = (len(spool.read_text(encoding="utf-8").splitlines())
                   if spool.exists() else 0)
        lost += len(lines) - written
    dropped = sum(c.dropped_records for c in clients)
    nacks = sum(c.nacks_received for c in clients)
    retries = sum(c.retries for c in clients)
    rate = total_lines / elapsed if elapsed else float("inf")
    p99 = histogram_p99(observer, "ingest.client.flush_ms")

    print()
    print(f"elapsed: {elapsed * 1000:.0f} ms  "
          f"throughput: {rate:,.0f} records/s")
    print(f"backpressure: {nacks} nacks, {retries} retries "
          f"(server saw {stats['nacks_sent']} nacks, "
          f"{stats['sessions']} sessions)")
    print("p99 send-to-ack latency: "
          + (f"<= {p99:.0f} ms" if p99 is not None else "n/a"))

    failed = False
    if lost or dropped:
        print(f"FAIL: record loss — {lost} lines missing from spools, "
              f"{dropped} dropped by clients", file=sys.stderr)
        failed = True
    if nacks == 0:
        print("FAIL: backpressure never exercised (0 nacks) — "
              "shrink --queue-limit or grow the fleet", file=sys.stderr)
        failed = True
    if rate < args.min_records_per_sec:
        print(f"FAIL: throughput {rate:,.0f} records/s is below the "
              f"required {args.min_records_per_sec:,.0f}", file=sys.stderr)
        failed = True
    if p99 is not None and p99 > args.max_p99_ms:
        print(f"FAIL: p99 ingest latency <= {p99:.0f} ms exceeds the "
              f"{args.max_p99_ms:.0f} ms bound", file=sys.stderr)
        failed = True
    tmpdir.cleanup()
    if args.json_out:
        append_trajectory(Path(args.json_out), {
            "generated": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "workload": {
                "sessions": args.sessions,
                "records": args.records,
                "batch_records": args.batch_records,
                "queue_limit": args.queue_limit,
            },
            "elapsed_s": round(elapsed, 6),
            "records_total": total_lines,
            "records_per_sec": round(rate, 1),
            "p99_send_to_ack_ms": p99,
            "nacks": nacks,
            "retries": retries,
            "lost_records": lost + dropped,
            "passed": not failed,
        })
        print(f"trajectory entry appended to {args.json_out}")
    if not failed:
        print(f"PASS: {args.sessions} concurrent sessions, zero loss "
              "under backpressure")
    return 1 if failed else 0


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` to the trajectory file (created if missing)."""
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"benchmark": "ingest_service", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    sys.exit(main())
