"""Figure 3 — cumulative distribution of episodes into patterns.

Regenerates the per-application CDF curves and checks the Pareto rule
the paper highlights (roughly 80% of episodes in 20% of patterns);
benchmarks pattern mining plus the CDF computation.
"""

import statistics

from repro.core.patterns import PatternTable
from repro.study.figures import figure3_data


def test_fig3_pareto_rule(study_result):
    curves = figure3_data(study_result)
    at20 = {name: curve[20] for name, curve in curves.items()}
    print()
    print("episodes covered by the top 20% of patterns (paper: ~80%):")
    for name, value in at20.items():
        print(f"  {name:<14s} {value:5.1f}%")
    mean_at20 = statistics.mean(at20.values())
    print(f"  {'MEAN':<14s} {mean_at20:5.1f}%")
    assert mean_at20 > 60.0
    # Every application is strongly super-diagonal.
    assert all(value > 40.0 for value in at20.values())


def test_fig3_curves_monotone(study_result):
    for name, curve in figure3_data(study_result).items():
        assert len(curve) == 101
        assert all(b >= a for a, b in zip(curve, curve[1:])), name
        assert curve[-1] > 99.0, name


def test_fig3_mining_and_cdf_cost(benchmark, app_analyzer):
    episodes = app_analyzer("ArgoUML").episodes

    def mine_and_cdf():
        table = PatternTable.from_episodes(episodes)
        return table.cumulative_episode_distribution()

    cdf = benchmark(mine_and_cdf)
    assert cdf[-1] > 99.0
