"""Study-warehouse benchmark: compact 1k sessions, query under a bound.

The warehouse's reason to exist is that fleet questions ("top-N worst
patterns", "which app regressed") should be answered from indexed
SQLite rows, not by re-analyzing a thousand traces. This script
fabricates a deterministic synthetic fleet (``random.Random(seed)`` —
no simulator in the loop, the warehouse is what's being measured),
compacts it session by session, and then times the query surface.

It verifies the top-N answer against a Python-side merge of the
generated counts before trusting the numbers, and exits nonzero when
the top-N query misses its latency bound, which is how CI uses it as a
smoke gate::

    python benchmarks/bench_warehouse.py --sessions 1000 --max-top-ms 250

``--json-out BENCH_warehouse.json`` additionally appends this run's
numbers to the benchmark trajectory.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.core.statistics import SessionStats  # noqa: E402
from repro.warehouse.store import StudyWarehouse  # noqa: E402

APPLICATIONS = (
    "ArgoUML", "CrosswordSage", "Euclide", "FreeMind", "GanttProject",
    "jEdit", "JFreeChart", "JHotDraw", "JMol", "Jomic",
    "LAoE", "NetBeans", "SweetHome3D", "Zeus",
)


def synthetic_session(
    rng: random.Random, app: str
) -> Tuple[SessionStats, Dict[str, Tuple[int, int]]]:
    """One plausible Table III row plus its pattern tallies."""
    traced = rng.randint(40, 400)
    perceptible = rng.randint(0, traced // 4)
    stats = SessionStats(
        application=app,
        e2e_s=rng.uniform(300.0, 1800.0),
        in_episode_pct=rng.uniform(2.0, 40.0),
        below_filter=float(rng.randint(0, 2000)),
        traced=float(traced),
        perceptible=float(perceptible),
        long_per_min=rng.uniform(0.0, 6.0),
        distinct_patterns=float(rng.randint(5, 60)),
        covered_episodes=float(traced - rng.randint(0, traced // 5)),
        singleton_pct=rng.uniform(10.0, 90.0),
        mean_descendants=rng.uniform(1.0, 40.0),
        mean_depth=rng.uniform(1.0, 8.0),
    )
    counts: Dict[str, Tuple[int, int]] = {}
    for _ in range(rng.randint(4, 16)):
        key = f"d(l{rng.randint(0, 199)}(p{rng.randint(0, 9)}))"
        count = rng.randint(1, 20)
        counts[key] = (count, rng.randint(0, count))
    return stats, counts


def best_of(repeats: int, fn) -> float:
    """Best wall time of ``repeats`` calls, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=1000,
                        help="synthetic sessions to compact")
    parser.add_argument("--runs", type=int, default=8,
                        help="run ids the sessions are spread across")
    parser.add_argument("--seed", type=int, default=20100401)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repeats per query (best-of)")
    parser.add_argument("--max-top-ms", type=float, default=250.0,
                        help="required bound on the top-N query")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="append this run's numbers to a "
                             "BENCH_warehouse.json trajectory")
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    tmpdir = tempfile.TemporaryDirectory()
    warehouse = StudyWarehouse(Path(tmpdir.name) / "bench.sqlite")

    merged: Dict[Tuple[str, str], Tuple[int, int]] = {}
    started = time.perf_counter()
    for index in range(args.sessions):
        app = APPLICATIONS[index % len(APPLICATIONS)]
        run_id = f"run-{index % args.runs}"
        stats, counts = synthetic_session(rng, app)
        warehouse.ingest_session(
            run_id, app, f"s{index}", stats,
            pattern_counts=counts,
            trace_digest=f"digest-{index}",
            ts=1_000_000.0 + index * 60.0,
        )
        for key, (count, perceptible) in counts.items():
            prev_count, prev_perceptible = merged.get((app, key), (0, 0))
            merged[(app, key)] = (
                prev_count + count, prev_perceptible + perceptible
            )
    ingest_s = time.perf_counter() - started
    rate = args.sessions / ingest_s if ingest_s else float("inf")
    print(f"compacted {args.sessions} sessions across {args.runs} runs "
          f"in {ingest_s * 1000:.0f} ms ({rate:,.0f} sessions/s, "
          f"{len(merged)} distinct (app, pattern) pairs)")

    # Correctness before timings: the top-N answer must equal the
    # Python-side merge of what was generated.
    top = warehouse.top_patterns(n=10)
    for entry in top:
        expected = merged[(entry.application, entry.pattern_key)]
        if (entry.occurrences, entry.perceptible) != expected:
            print(f"FAIL: top-N mismatch for ({entry.application}, "
                  f"{entry.pattern_key}): warehouse "
                  f"{(entry.occurrences, entry.perceptible)} != "
                  f"generated {expected}", file=sys.stderr)
            return 1

    top_ms = best_of(args.repeats, lambda: warehouse.top_patterns(n=10))
    aggregate_ms = best_of(args.repeats, warehouse.aggregate)
    half = args.runs // 2 or 1
    baseline = [f"run-{i}" for i in range(half)]
    candidate = [f"run-{i}" for i in range(half, args.runs)]
    regression_ms = best_of(
        args.repeats,
        lambda: warehouse.regression(baseline, candidate),
    )
    series_ms = best_of(
        args.repeats, lambda: warehouse.series(bucket="day")
    )

    print(f"{'top-N patterns':<18} {top_ms:>8.1f} ms")
    print(f"{'aggregate':<18} {aggregate_ms:>8.1f} ms")
    print(f"{'regression diff':<18} {regression_ms:>8.1f} ms")
    print(f"{'series (day)':<18} {series_ms:>8.1f} ms")

    failed = False
    if top_ms > args.max_top_ms:
        print(f"FAIL: top-N query {top_ms:.1f} ms exceeds the "
              f"{args.max_top_ms:.0f} ms bound", file=sys.stderr)
        failed = True

    tmpdir.cleanup()
    if args.json_out:
        append_trajectory(Path(args.json_out), {
            "generated": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "workload": {
                "sessions": args.sessions,
                "runs": args.runs,
                "seed": args.seed,
            },
            "ingest_s": round(ingest_s, 6),
            "sessions_per_sec": round(rate, 1),
            "top_ms": round(top_ms, 3),
            "aggregate_ms": round(aggregate_ms, 3),
            "regression_ms": round(regression_ms, 3),
            "series_ms": round(series_ms, 3),
            "passed": not failed,
        })
        print(f"trajectory entry appended to {args.json_out}")
    if not failed:
        print(f"PASS: top-N over {args.sessions} sessions answered in "
              f"{top_ms:.1f} ms (bound {args.max_top_ms:.0f} ms)")
    return 1 if failed else 0


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` to the trajectory file (created if missing)."""
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"benchmark": "warehouse", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    sys.exit(main())
