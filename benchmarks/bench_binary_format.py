"""Ablation — binary vs text trace encoding.

The paper's limitations section: LiLa "produces relatively large traces
for real-world sessions", constraining session length. The binary
encoding interns strings, frames, and stacks; this bench quantifies the
size reduction and the parse/serialize speed difference against the
text format on the same simulated session.
"""


import pytest

from repro.lila.binary import read_trace_binary, write_trace_binary
from repro.lila.reader import read_trace
from repro.lila.writer import write_trace


@pytest.fixture(scope="module")
def trace(app_traces):
    return app_traces("SwingSet")[0]


@pytest.fixture(scope="module")
def trace_files(trace, tmp_path_factory):
    outdir = tmp_path_factory.mktemp("formats")
    text_path = write_trace(trace, outdir / "session.lila")
    binary_path = write_trace_binary(trace, outdir / "session.lilb")
    return text_path, binary_path


def test_size_reduction(trace_files):
    text_path, binary_path = trace_files
    text_size = text_path.stat().st_size
    binary_size = binary_path.stat().st_size
    ratio = text_size / binary_size
    print()
    print(f"text:   {text_size / 1024:8.1f} KiB")
    print(f"binary: {binary_size / 1024:8.1f} KiB  ({ratio:.1f}x smaller)")
    assert ratio > 2.0


def test_text_write_cost(benchmark, trace, tmp_path):
    path = tmp_path / "t.lila"
    benchmark(write_trace, trace, path)


def test_binary_write_cost(benchmark, trace, tmp_path):
    path = tmp_path / "t.lilb"
    benchmark(write_trace_binary, trace, path)


def test_text_read_cost(benchmark, trace_files):
    text_path, _ = trace_files
    loaded = benchmark(read_trace, text_path)
    assert loaded.episodes


def test_binary_read_cost(benchmark, trace_files):
    _, binary_path = trace_files
    loaded = benchmark(read_trace_binary, binary_path)
    assert loaded.episodes


def test_formats_agree(trace_files):
    text_path, binary_path = trace_files
    a = read_trace(text_path)
    b = read_trace_binary(binary_path)
    assert len(a.episodes) == len(b.episodes)
    assert len(a.samples) == len(b.samples)
    assert a.short_episode_count == b.short_episode_count
