"""Figure 6 — location of episode time (app / library / GC / native).

Regenerates both graphs and checks the paper's callouts: Arabeske's
explicit GCs dominating its perceptible lag, JHotDraw almost entirely
in application code, Euclide library-heavy, JFreeChart the most
native-heavy. Benchmarks the location analysis (sample partitioning
plus interval time accounting).
"""

from repro.core import location as location_mod
from repro.study.figures import figure6_data


def _print_rows(data, heading):
    print()
    print(heading)
    print(f"{'app':<14s} {'app':>5s} {'lib':>5s} {'gc':>5s} {'native':>7s}")
    for name, row in data.items():
        print(f"{name:<14s} {row['Application']:4.0f}% "
              f"{row['RT Library']:4.0f}% {row['GC']:4.0f}% "
              f"{row['Native']:6.0f}%")


def test_fig6_perceptible_rows(study_result):
    data = figure6_data(study_result, perceptible_only=True)
    _print_rows(data, "location of perceptible lag "
                      "(paper mean: 48 app / 52 lib / 11 gc / 5 native)")
    assert data["Arabeske"]["GC"] == max(row["GC"] for row in data.values())
    assert data["Arabeske"]["GC"] > 30.0
    assert data["JHotDraw"]["Application"] > 85.0
    assert data["Euclide"]["RT Library"] > 60.0
    assert data["JFreeChart"]["Native"] == max(
        row["Native"] for row in data.values()
    )


def test_fig6_all_rows(study_result):
    data = figure6_data(study_result, perceptible_only=False)
    _print_rows(data, "location over all episodes")
    # ArgoUML's GC is prevalent across the whole execution (paper: 16%).
    assert data["ArgoUML"]["GC"] > 5.0
    for name, row in data.items():
        assert 0.0 <= row["GC"] + row["Native"] <= 100.0, name


def test_fig6_analysis_cost(benchmark, app_analyzer):
    episodes = app_analyzer("ArgoUML").episodes
    summary = benchmark(location_mod.summarize, episodes)
    assert summary.episode_ns > 0
