"""Ablation — streaming vs in-memory analysis.

Quantifies what the streaming reader costs and saves: the Table III row
computed by `stream_session_stats` (O(1) memory) versus loading the
whole trace and running `session_stats` (what the paper's tool does).
"""

import pytest

from repro.core.statistics import session_stats
from repro.lila.reader import read_trace
from repro.lila.streaming import iter_episodes, stream_session_stats
from repro.lila.writer import write_trace


@pytest.fixture(scope="module")
def trace_path(app_traces, tmp_path_factory):
    trace = app_traces("SwingSet")[0]
    outdir = tmp_path_factory.mktemp("streaming")
    return write_trace(trace, outdir / "session.lila"), trace


def test_streaming_stats_cost(benchmark, trace_path):
    path, _ = trace_path
    stats = benchmark(stream_session_stats, path)
    assert stats.traced > 0


def test_in_memory_stats_cost(benchmark, trace_path):
    path, _ = trace_path

    def load_and_compute():
        return session_stats(read_trace(path))

    stats = benchmark(load_and_compute)
    assert stats.traced > 0


def test_results_identical(trace_path):
    path, trace = trace_path
    streamed = stream_session_stats(path)
    in_memory = session_stats(trace)
    print()
    print(f"streamed:  traced={streamed.traced:.0f} "
          f"perceptible={streamed.perceptible:.0f}")
    print(f"in-memory: traced={in_memory.traced:.0f} "
          f"perceptible={in_memory.perceptible:.0f}")
    assert streamed.traced == in_memory.traced
    assert streamed.perceptible == in_memory.perceptible
    assert streamed.distinct_patterns == in_memory.distinct_patterns


def test_episode_iteration_cost(benchmark, trace_path):
    path, _ = trace_path

    def scan():
        return sum(1 for _ in iter_episodes(path))

    count = benchmark(scan)
    assert count > 0
