"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures. The
session-scoped fixtures simulate the study once (at a reduced scale so
the whole harness runs in seconds — set ``LAGALYZER_BENCH_SCALE=1.0``
and ``LAGALYZER_BENCH_SESSIONS=4`` for the paper's full setup) and every
bench then measures the *analysis* cost over the shared traces, which is
what LagAlyzer itself does offline.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
regenerated rows printed next to the paper's values.
"""

import os

import pytest

from repro.core.api import LagAlyzer
from repro.apps.sessions import simulate_sessions
from repro.study.runner import StudyConfig, run_study

BENCH_SCALE = float(os.environ.get("LAGALYZER_BENCH_SCALE", "0.15"))
BENCH_SESSIONS = int(os.environ.get("LAGALYZER_BENCH_SESSIONS", "1"))
BENCH_SEED = 20100401


@pytest.fixture(scope="session")
def study_config():
    return StudyConfig(
        seed=BENCH_SEED, sessions=BENCH_SESSIONS, scale=BENCH_SCALE
    )


@pytest.fixture(scope="session")
def study_result(study_config):
    """The full 14-application study, simulated once per pytest run."""
    return run_study(study_config)


@pytest.fixture(scope="session")
def app_traces():
    """Per-application trace lists, simulated lazily and cached."""
    cache = {}

    def get(app, sessions=BENCH_SESSIONS, scale=BENCH_SCALE):
        key = (app, sessions, scale)
        if key not in cache:
            cache[key] = simulate_sessions(
                app, count=sessions, seed=BENCH_SEED, scale=scale
            )
        return cache[key]

    return get


@pytest.fixture(scope="session")
def app_analyzer(app_traces):
    """Per-application LagAlyzer over the cached traces."""
    cache = {}

    def get(app):
        if app not in cache:
            cache[app] = LagAlyzer.from_traces(app_traces(app))
        return cache[app]

    return get
