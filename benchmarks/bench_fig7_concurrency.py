"""Figure 7 — concurrency (mean runnable threads during episodes).

Regenerates both graphs and checks the paper's headline: concurrency is
low overall (GUI applications are single-thread-dominated), and only
Arabeske, FindBugs, and NetBeans exceed one runnable thread during
perceptible episodes. Benchmarks the runnable-count pass.
"""

import statistics

from repro.core import concurrency as concurrency_mod
from repro.study.figures import figure7_data

CONCURRENT_APPS = {"Arabeske", "FindBugs", "NetBeans"}


def test_fig7_rows(study_result):
    all_eps = figure7_data(study_result, perceptible_only=False)
    perceptible = figure7_data(study_result, perceptible_only=True)
    print()
    print(f"{'app':<14s} {'all':>6s} {'>=100ms':>8s}")
    for name in all_eps:
        print(f"{name:<14s} {all_eps[name]:5.2f} {perceptible[name]:7.2f}")
    mean_all = statistics.mean(all_eps.values())
    print(f"mean over all episodes: {mean_all:.2f} (paper: 1.2)")
    assert 1.0 <= mean_all <= 1.5

    # The paper's three background-thread applications are the most
    # concurrent ones (ranking by all-episode concurrency is stable
    # even at reduced session scale).
    top3 = set(sorted(all_eps, key=all_eps.get)[-3:])
    assert top3 == CONCURRENT_APPS

    # Everyone else hovers at or below ~one runnable thread during
    # perceptible episodes.
    for name, value in perceptible.items():
        if name not in CONCURRENT_APPS:
            assert value <= 1.15, name


def test_fig7_analysis_cost(benchmark, app_analyzer):
    episodes = app_analyzer("NetBeans").episodes
    summary = benchmark(concurrency_mod.summarize, episodes)
    assert summary.sample_count > 0
