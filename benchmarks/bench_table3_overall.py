"""Table III — overall statistics of the characterization study.

Regenerates the paper's Table III (one row per application plus the
mean row) from the simulated study and benchmarks the per-session
statistics computation that produces a row.
"""


from repro.core.statistics import session_stats
from repro.study.tables import format_table3


def test_table3_regeneration(study_result):
    rows = [app.mean_stats for app in study_result.ordered()]
    text = format_table3(rows, study_result.mean_stats)
    print()
    print(f"(scale={study_result.config.scale}, counts scale accordingly; "
          f"paper values at scale 1.0)")
    print(text)
    assert len(rows) == 14

    # Shape claims that must survive any scale:
    by_name = {app.name: app.mean_stats for app in study_result.ordered()}
    # GanttProject has the richest interval trees...
    assert by_name["GanttProject"].mean_descendants == max(
        s.mean_descendants for s in rows
    )
    assert by_name["GanttProject"].mean_depth == max(
        s.mean_depth for s in rows
    )
    # ...JMol and GanttProject the worst perceptible rates...
    worst_two = sorted(rows, key=lambda s: s.long_per_min)[-2:]
    assert {s.application for s in worst_two} <= {
        "JMol", "GanttProject", "JFreeChart",
    }
    # ...and Laoe by far the most sub-filter episodes.
    assert by_name["Laoe"].below_filter == max(s.below_filter for s in rows)


def test_table3_row_cost(benchmark, app_traces):
    """Cost of computing one Table III row from a loaded trace."""
    trace = app_traces("ArgoUML")[0]
    stats = benchmark(session_stats, trace)
    assert stats.traced > 0


def test_table3_in_eps_range(study_result):
    """In-episode fractions stay in the paper's observed 8-47%% band."""
    for app in study_result.ordered():
        assert 3.0 <= app.mean_stats.in_episode_pct <= 60.0, app.name
