"""Figure 4 — always / sometimes / once / never patterns.

Regenerates the occurrence-class distribution per application and
benchmarks the classification pass.
"""

import statistics

from repro.core import occurrence as occurrence_mod
from repro.study.figures import figure4_data


def test_fig4_rows(study_result):
    data = figure4_data(study_result)
    print()
    print(f"{'app':<14s} {'always':>7s} {'sometimes':>10s} "
          f"{'once':>6s} {'never':>7s}")
    for name, row in data.items():
        print(f"{name:<14s} {row['always']:6.0f}% {row['sometimes']:9.0f}% "
              f"{row['once']:5.0f}% {row['never']:6.0f}%")
    # Shape claims (paper Section IV-B):
    # GanttProject has the largest always-slow share...
    assert data["GanttProject"]["always"] == max(
        row["always"] for row in data.values()
    )
    # ...FreeMind is overwhelmingly never-slow.
    assert data["FreeMind"]["never"] > 80.0


def test_fig4_consistency_aggregate(study_result):
    consistent = statistics.mean(
        app.occurrence.consistent_fraction for app in study_result.ordered()
    )
    ever = statistics.mean(
        app.occurrence.ever_perceptible_fraction
        for app in study_result.ordered()
    )
    print()
    print(f"consistently fast-or-slow: {100 * consistent:.0f}% (paper 96%)")
    print(f"ever perceptible: {100 * ever:.0f}% (paper 22%)")
    assert consistent > 0.85
    assert ever < 0.45


def test_fig4_classification_cost(benchmark, app_analyzer):
    table = app_analyzer("ArgoUML").pattern_table()
    summary = benchmark(occurrence_mod.summarize, table)
    assert summary.total == table.distinct_count
