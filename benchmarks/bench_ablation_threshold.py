"""Ablation — the perceptibility threshold.

The paper uses Shneiderman's 100 ms; Dabrowski & Munson suggest 150 ms
for keyboard and 195 ms for mouse input. This ablation re-runs the
occurrence classification at each threshold and quantifies how many
episodes and patterns stop being "problems".
"""

import pytest

from repro.core import occurrence as occurrence_mod
from repro.core.api import AnalysisConfig, LagAlyzer


@pytest.mark.parametrize("threshold_ms", [100.0, 150.0, 195.0])
def test_threshold_sensitivity(app_traces, threshold_ms):
    traces = app_traces("GanttProject")
    analyzer = LagAlyzer.from_traces(
        traces, config=AnalysisConfig(perceptible_threshold_ms=threshold_ms)
    )
    perceptible = analyzer.perceptible_episodes()
    summary = analyzer.occurrence_summary()
    ever = summary.ever_perceptible_fraction
    print()
    print(f"threshold {threshold_ms:5.0f} ms: "
          f"{len(perceptible):4d} perceptible episodes, "
          f"{100 * ever:4.0f}% of patterns ever perceptible")
    assert perceptible


def test_thresholds_strictly_ordered(app_traces):
    traces = app_traces("GanttProject")
    counts = []
    for threshold in (100.0, 150.0, 195.0):
        analyzer = LagAlyzer.from_traces(
            traces, config=AnalysisConfig(perceptible_threshold_ms=threshold)
        )
        counts.append(len(analyzer.perceptible_episodes()))
    assert counts[0] >= counts[1] >= counts[2]
    assert counts[0] > counts[2]


def test_occurrence_at_strict_threshold_cost(benchmark, app_analyzer):
    table = app_analyzer("GanttProject").pattern_table()

    def classify():
        return occurrence_mod.summarize(table, threshold_ms=195.0)

    summary = benchmark(classify)
    assert summary.total == table.distinct_count
