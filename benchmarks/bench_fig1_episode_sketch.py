"""Figure 1 — the episode sketch.

Reconstructs the paper's Figure 1 scenario (a long paint episode whose
native DrawLine call contains a garbage collection, with the JVMTI
sampling blackout around it) and benchmarks the sketch renderer.
"""

import pytest

from repro.core.intervals import IntervalKind
from repro.vm.behavior import Behavior, NativeCall, Paint, native_stack
from repro.vm.components import Component
from repro.vm.heap import HeapConfig
from repro.vm.jvm import PostedEvent, SessionConfig, SimulatedJVM
from repro.viz.sketch import render_episode_sketch


@pytest.fixture(scope="module")
def figure1_episode():
    toolbar = Component(
        "javax.swing.JToolBar", self_paint_ms=430.0,
        alloc_bytes_per_paint=100 * 1024 * 1024,
    )
    chain = toolbar
    for cls in ("javax.swing.JLayeredPane", "javax.swing.JRootPane",
                "javax.swing.JFrame"):
        chain = Component(cls, [chain], self_paint_ms=50.0)
    config = SessionConfig(
        application="Fig1", session_id="s0", seed=7, duration_s=5.0,
        heap=HeapConfig(
            young_capacity_bytes=32 * 1024 * 1024,
            old_capacity_bytes=40 * 1024 * 1024,
            promotion_fraction=1.0,
            major_pause_ms=466.0,
            pause_jitter=0.0,
        ),
    )
    jvm = SimulatedJVM(config)
    behavior = Behavior([
        Paint(chain, sigma=0.0),
        NativeCall(
            "sun.java2d.loops.DrawLine.DrawLine", 377.0,
            native_stack("sun.java2d.loops.DrawLine", "DrawLine"),
            sigma=0.0, alloc_bytes_per_ms=220 * 1024,
        ),
    ])
    trace = jvm.run([PostedEvent(1_000_000_000, behavior)])
    return max(trace.episodes, key=lambda ep: ep.duration_ns)


def test_figure1_scenario_shape(figure1_episode):
    ep = figure1_episode
    print()
    print(f"episode lag: {ep.duration_ms:.0f} ms (paper: 1705 ms)")
    # The cascade JFrame -> ... -> toolbar exists.
    symbols = [n.symbol for n in ep.root.preorder()]
    assert "javax.swing.JFrame.paint" in symbols
    assert "javax.swing.JToolBar.paint" in symbols
    # A GC nests somewhere inside the episode...
    gcs = ep.intervals_of_kind(IntervalKind.GC)
    assert gcs
    # ...and the sampling blackout is visible: no samples during GC.
    for gc in gcs:
        assert not any(
            gc.start_ns <= s.timestamp_ns < gc.end_ns for s in ep.samples
        )
    # The episode is clearly perceptible, like the paper's 1705 ms one.
    assert ep.duration_ms > 1000.0


def test_fig1_sketch_render_cost(benchmark, figure1_episode):
    doc = benchmark(render_episode_sketch, figure1_episode)
    text = doc.to_string()
    assert "JToolBar" in text
    assert text.startswith("<svg")
