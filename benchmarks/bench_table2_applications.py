"""Table II — the 14-application suite.

Regenerates Table II from the application catalog and benchmarks the
per-application behaviour-model expansion (template catalog build).
"""

from repro.apps.catalog import APPLICATION_NAMES, get_spec
from repro.apps.sessions import build_catalog
from repro.study.tables import format_table2


def test_table2_rows(benchmark):
    text = benchmark(format_table2)
    print()
    print(text)
    assert "NetBeans" in text and "45367" in text
    assert len(text.splitlines()) == 2 + len(APPLICATION_NAMES)


def test_catalog_expansion_cost(benchmark):
    """Cost of expanding one rich spec into its template catalog."""
    spec = get_spec("ArgoUML")
    catalog = benchmark(build_catalog, spec, 20100401)
    assert len(catalog.common) == spec.n_common_templates
