"""Table I — the interval-type vocabulary.

Regenerates the paper's Table I and benchmarks the hot path it feeds:
interval-kind lookup during trace parsing.
"""

from repro.core.intervals import IntervalKind
from repro.study.tables import format_table1


def test_table1_rows(benchmark):
    text = benchmark(format_table1)
    print()
    print(text)
    for name in ("Dispatch", "Listener", "Paint", "Native", "Async", "GC"):
        assert name in text


def test_kind_lookup_throughput(benchmark):
    names = [kind.value for kind in IntervalKind] * 1000

    def parse_all():
        return [IntervalKind.from_name(name) for name in names]

    kinds = benchmark(parse_all)
    assert len(kinds) == 6000
