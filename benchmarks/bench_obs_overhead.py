"""Observability overhead gates — disabled mode and sampled propagation.

Two budgets, both asserted in CI and both recordable into the tracked
``BENCH_obs.json`` trajectory (ROADMAP item 2):

- **Disabled mode, under 2%.** Every instrumented hot path goes
  through the guarded helpers in :mod:`repro.obs.runtime`; with no
  observer installed each call is one global read and one comparison.
  A medium study is timed twice — once through the real guards, once
  with the helpers swapped for the cheapest possible stubs (the "no
  instrumentation at all" floor) — interleaved, best of N.
- **Sampled propagation, under 5%.** A sampled session mints a trace
  context per batch, carries it in HELLO/BATCH frames, and the daemon
  opens adopted spans per frame and flush; deterministic seed-derived
  sampling is the mechanism that keeps the *fleet-level* cost bounded.
  The gate replays a ten-session fleet at the nominal 10% sample rate
  (the deterministic sampler picks exactly one of the fixed session
  names) against a daemon in its own process — as deployed, so daemon
  span bookkeeping burns daemon CPU — and compares the client
  process's **CPU time** with propagation on vs ``propagate=False``.
  CPU time rather than wall clock because delivery is stop-and-wait:
  a saturated loopback replay is ack-RTT-bound, so wall clock mostly
  measures scheduler wake-up luck that a live, trickling application
  never sees.

Runs standalone (``python benchmarks/bench_obs_overhead.py
[--json-out BENCH_obs.json]``) or under pytest as the CI smoke step;
no pytest-benchmark needed. Environment knobs: ``OBS_BENCH_SCALE``
(default 0.15), ``OBS_BENCH_REPEATS`` (default 7),
``OBS_BENCH_LIMIT_PCT`` (default 2), ``OBS_BENCH_NOISE_MS`` (default
15 — absolute allowance for scheduler and timer jitter, well below
what any real per-episode regression would cost on this workload),
``OBS_BENCH_PROP_RECORDS`` (default 16000), ``OBS_BENCH_PROP_REPEATS``
(default 5), and ``OBS_BENCH_PROP_LIMIT_PCT`` (default 5).
"""

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import runtime as obs_runtime  # noqa: E402
from repro.obs.spans import NULL_SPAN  # noqa: E402
from repro.study.runner import StudyConfig, run_study  # noqa: E402

SCALE = float(os.environ.get("OBS_BENCH_SCALE", "0.15"))
REPEATS = int(os.environ.get("OBS_BENCH_REPEATS", "7"))
LIMIT_PCT = float(os.environ.get("OBS_BENCH_LIMIT_PCT", "2.0"))
NOISE_S = float(os.environ.get("OBS_BENCH_NOISE_MS", "15")) / 1e3

PROP_RECORDS = int(os.environ.get("OBS_BENCH_PROP_RECORDS", "16000"))
PROP_REPEATS = int(os.environ.get("OBS_BENCH_PROP_REPEATS", "5"))
PROP_LIMIT_PCT = float(os.environ.get("OBS_BENCH_PROP_LIMIT_PCT", "5.0"))

#: The guarded helpers and their do-nothing floor equivalents.
_STUBS = {
    "maybe_span": lambda name, metric=None, **attrs: NULL_SPAN,
    "count": lambda name, n=1: None,
    "observe": lambda name, value: None,
    "set_gauge": lambda name, value: None,
    "profiled": lambda key: NULL_SPAN,
    "current": lambda: None,
}


def _workload() -> None:
    config = StudyConfig(
        sessions=1,
        scale=SCALE,
        applications=("Arabeske", "Euclide"),
    )
    run_study(config, workers=1, use_cache=False)


def _timed() -> float:
    start = time.perf_counter()
    _workload()
    return time.perf_counter() - start


def measure_overhead(repeats: int = REPEATS) -> Tuple[float, float]:
    """``(guarded_s, floor_s)`` — best-of-N, interleaved A/B."""
    assert obs_runtime.current() is None, "bench requires disabled mode"
    originals = {name: getattr(obs_runtime, name) for name in _STUBS}
    _workload()  # warm caches, imports, and the code paths themselves
    guarded = floor = float("inf")
    try:
        for _ in range(repeats):
            guarded = min(guarded, _timed())
            for name, stub in _STUBS.items():
                setattr(obs_runtime, name, stub)
            try:
                floor = min(floor, _timed())
            finally:
                for name, original in originals.items():
                    setattr(obs_runtime, name, original)
    finally:
        for name, original in originals.items():
            setattr(obs_runtime, name, original)
    return guarded, floor


#: An observed ingest daemon in its own process, as deployed — the
#: daemon's span bookkeeping must burn *its* CPU, not the client's.
#: In-process loopback would serialize both ends through one GIL and
#: charge the application for the daemon's work.
_SERVER_SCRIPT = """
import sys, time
from repro.ingest.server import IngestServer
from repro.obs import runtime as obs_runtime
from repro.obs.observer import Observer

obs_runtime.install(Observer())
with IngestServer(spool_dir=sys.argv[1]) as server:
    print(server.address[1], flush=True)
    time.sleep(600)
"""

FLEET_SESSIONS = 10
#: The nominal fleet operating rate the propagation gate validates.
PROP_SAMPLE_RATE = 0.1
# Over the fixed names fleet-0..fleet-9 at seed 0, the deterministic
# sampler (sample_decision) picks exactly fleet-9 — one session in
# ten, i.e. the nominal rate, every run, on every machine.


def _session_lines() -> List[str]:
    pad = "x" * 40
    return [
        f"4807.867 0.000 Bench CALL com/example/Class{i % 97} "
        f"method{i % 31} {pad}"
        for i in range(PROP_RECORDS // FLEET_SESSIONS)
    ]


def _fleet_replay(propagate: bool) -> float:
    """Replay the ten-session fleet; the client's CPU seconds.

    Measures the **client process's CPU time** for full lossless
    replays (connect, stream, drain, END ack) of every session —
    everything an instrumented application pays for propagation: the
    per-batch context mint and JSON encode in ``_seal``, the context
    block on the wire, and the carrier span around each sampled
    delivery. Unsampled sessions pay one branch per seal, which is
    the point. A fresh daemon per replay keeps the fixed session
    names (the sampling decision hangs off them) collision-free.
    """
    import subprocess

    from repro.ingest.client import TraceClient
    from repro.obs.observer import Observer

    lines = _session_lines()
    with tempfile.TemporaryDirectory() as spool_dir:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        daemon = subprocess.Popen(
            [sys.executable, "-c", _SERVER_SCRIPT, spool_dir],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            port = int(daemon.stdout.readline())
            with obs_runtime.installed(Observer()):
                start = time.process_time()
                for k in range(FLEET_SESSIONS):
                    client = TraceClient(
                        ("127.0.0.1", port),
                        session=f"fleet-{k}",
                        application="Bench",
                        propagate=propagate,
                        sample_rate=PROP_SAMPLE_RATE,
                    )
                    with client:
                        client.extend(lines)
                    assert client.dropped_records == 0
                return time.process_time() - start
        finally:
            daemon.kill()
            daemon.wait()


def measure_propagation(
    repeats: int = PROP_REPEATS,
) -> Tuple[float, float]:
    """``(sampled_s, plain_s)`` — best-of-N, interleaved A/B."""
    _fleet_replay(False)  # warm sockets, imports, and code paths
    sampled = plain = float("inf")
    for _ in range(repeats):
        sampled = min(sampled, _fleet_replay(True))
        plain = min(plain, _fleet_replay(False))
    return sampled, plain


def _check_disabled(guarded: float, floor: float) -> None:
    overhead_pct = 100.0 * (guarded - floor) / floor
    print(
        f"\n[obs overhead] guarded={guarded * 1e3:.1f}ms "
        f"floor={floor * 1e3:.1f}ms overhead={overhead_pct:+.2f}% "
        f"(limit {LIMIT_PCT:.1f}%, scale {SCALE}, best of {REPEATS})"
    )
    assert guarded <= floor * (1.0 + LIMIT_PCT / 100.0) + NOISE_S, (
        f"disabled-mode observability overhead {overhead_pct:.2f}% exceeds "
        f"{LIMIT_PCT:.1f}% (guarded {guarded:.3f}s vs floor {floor:.3f}s)"
    )


def _check_propagation(sampled: float, plain: float) -> None:
    overhead_pct = 100.0 * (sampled - plain) / plain
    print(
        f"\n[obs propagation] sampled={sampled * 1e3:.1f}ms "
        f"plain={plain * 1e3:.1f}ms cpu, overhead={overhead_pct:+.2f}% "
        f"(limit {PROP_LIMIT_PCT:.1f}%, {FLEET_SESSIONS} sessions x "
        f"{PROP_RECORDS // FLEET_SESSIONS} records at rate "
        f"{PROP_SAMPLE_RATE}, best of {PROP_REPEATS})"
    )
    assert sampled <= plain * (1.0 + PROP_LIMIT_PCT / 100.0) + NOISE_S, (
        f"sampled-propagation overhead {overhead_pct:.2f}% exceeds "
        f"{PROP_LIMIT_PCT:.1f}% (sampled {sampled:.3f}s vs plain "
        f"{plain:.3f}s)"
    )


def test_disabled_mode_overhead_under_limit() -> None:
    _check_disabled(*measure_overhead())


def test_sampled_propagation_overhead_under_limit() -> None:
    _check_propagation(*measure_propagation())


# ----------------------------------------------------------------------
# The tracked trajectory — BENCH_obs.json
# ----------------------------------------------------------------------


def bench_entry(
    guarded: float, floor: float, sampled: float, plain: float
) -> Dict[str, Any]:
    """One trajectory entry: both measurements plus their workloads."""
    return {
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "disabled_mode": {
            "workload": {"scale": SCALE, "repeats": REPEATS,
                         "sessions": 1, "apps": 2},
            "guarded_s": round(guarded, 6),
            "floor_s": round(floor, 6),
            "overhead_pct": round(100.0 * (guarded - floor) / floor, 3),
            "limit_pct": LIMIT_PCT,
        },
        "sampled_propagation": {
            "workload": {"records": PROP_RECORDS,
                         "sessions": FLEET_SESSIONS,
                         "sample_rate": PROP_SAMPLE_RATE,
                         "batch_records": 256,
                         "repeats": PROP_REPEATS},
            "sampled_cpu_s": round(sampled, 6),
            "plain_cpu_s": round(plain, 6),
            "overhead_pct": round(100.0 * (sampled - plain) / plain, 3),
            "limit_pct": PROP_LIMIT_PCT,
        },
    }


def append_trajectory(path: Path, entry: Dict[str, Any]) -> None:
    """Append ``entry`` to the trajectory file (created if missing)."""
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    else:
        data = {"benchmark": "obs_overhead", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="append this run's numbers to a BENCH_obs.json trajectory",
    )
    args = parser.parse_args(argv)
    guarded, floor = measure_overhead()
    sampled, plain = measure_propagation()
    _check_disabled(guarded, floor)
    _check_propagation(sampled, plain)
    if args.json_out:
        append_trajectory(
            Path(args.json_out),
            bench_entry(guarded, floor, sampled, plain),
        )
        print(f"trajectory entry appended to {args.json_out}")
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
