"""Disabled-mode observability overhead — must stay under 2%.

Every instrumented hot path goes through the guarded helpers in
:mod:`repro.obs.runtime`; with no observer installed each call is one
global read and one comparison. This bench proves that budget is held
on a medium study: it times the same study twice — once through the
real guards, once with the helpers swapped for the cheapest possible
stubs (the "no instrumentation at all" floor) — interleaved, best of N,
and asserts the guarded run is within 2% of the floor.

Runs standalone (``python benchmarks/bench_obs_overhead.py``) or under
pytest as the CI smoke step; no pytest-benchmark needed.
Environment knobs: ``OBS_BENCH_SCALE`` (default 0.15),
``OBS_BENCH_REPEATS`` (default 7), ``OBS_BENCH_LIMIT_PCT`` (default 2),
``OBS_BENCH_NOISE_MS`` (default 15 — absolute allowance for scheduler
and timer jitter, well below what any real per-episode regression
would cost on this workload).
"""

import os
import time

from repro.obs import runtime as obs_runtime
from repro.obs.spans import NULL_SPAN
from repro.study.runner import StudyConfig, run_study

SCALE = float(os.environ.get("OBS_BENCH_SCALE", "0.15"))
REPEATS = int(os.environ.get("OBS_BENCH_REPEATS", "7"))
LIMIT_PCT = float(os.environ.get("OBS_BENCH_LIMIT_PCT", "2.0"))
NOISE_S = float(os.environ.get("OBS_BENCH_NOISE_MS", "15")) / 1e3

#: The guarded helpers and their do-nothing floor equivalents.
_STUBS = {
    "maybe_span": lambda name, metric=None, **attrs: NULL_SPAN,
    "count": lambda name, n=1: None,
    "observe": lambda name, value: None,
    "set_gauge": lambda name, value: None,
    "profiled": lambda key: NULL_SPAN,
    "current": lambda: None,
}


def _workload() -> None:
    config = StudyConfig(
        sessions=1,
        scale=SCALE,
        applications=("Arabeske", "Euclide"),
    )
    run_study(config, workers=1, use_cache=False)


def _timed() -> float:
    start = time.perf_counter()
    _workload()
    return time.perf_counter() - start


def measure_overhead(repeats: int = REPEATS):
    """``(guarded_s, floor_s)`` — best-of-N, interleaved A/B."""
    assert obs_runtime.current() is None, "bench requires disabled mode"
    originals = {name: getattr(obs_runtime, name) for name in _STUBS}
    _workload()  # warm caches, imports, and the code paths themselves
    guarded = floor = float("inf")
    try:
        for _ in range(repeats):
            guarded = min(guarded, _timed())
            for name, stub in _STUBS.items():
                setattr(obs_runtime, name, stub)
            try:
                floor = min(floor, _timed())
            finally:
                for name, original in originals.items():
                    setattr(obs_runtime, name, original)
    finally:
        for name, original in originals.items():
            setattr(obs_runtime, name, original)
    return guarded, floor


def test_disabled_mode_overhead_under_limit():
    guarded, floor = measure_overhead()
    overhead_pct = 100.0 * (guarded - floor) / floor
    print(
        f"\n[obs overhead] guarded={guarded * 1e3:.1f}ms "
        f"floor={floor * 1e3:.1f}ms overhead={overhead_pct:+.2f}% "
        f"(limit {LIMIT_PCT:.1f}%, scale {SCALE}, best of {REPEATS})"
    )
    assert guarded <= floor * (1.0 + LIMIT_PCT / 100.0) + NOISE_S, (
        f"disabled-mode observability overhead {overhead_pct:.2f}% exceeds "
        f"{LIMIT_PCT:.1f}% (guarded {guarded:.3f}s vs floor {floor:.3f}s)"
    )


if __name__ == "__main__":
    test_disabled_mode_overhead_under_limit()
    print("ok")
