"""Scalability — analysis cost versus trace size.

The paper reports that fully automated analysis of about 7.5 hours of
sessions (roughly 250k episodes) took 15 minutes. This bench measures
how our core scales: trace loading (parse + validate), pattern mining,
and the full analysis battery, at increasing session lengths.
"""

import pytest

from repro.core.api import LagAlyzer
from repro.apps.sessions import simulate_session
from repro.lila.reader import read_trace_lines
from repro.lila.writer import trace_to_lines


@pytest.fixture(scope="module")
def sized_traces():
    cache = {}

    def get(scale):
        if scale not in cache:
            cache[scale] = simulate_session(
                "SwingSet", seed=1, scale=scale
            )
        return cache[scale]

    return get


@pytest.mark.parametrize("scale", [0.05, 0.1, 0.2])
def test_full_analysis_cost(benchmark, sized_traces, scale):
    trace = sized_traces(scale)

    def analyze():
        analyzer = LagAlyzer.from_traces([trace])
        analyzer.pattern_table()
        analyzer.occurrence_summary()
        analyzer.trigger_summary(perceptible_only=True)
        analyzer.location_summary(perceptible_only=True)
        analyzer.concurrency_summary(perceptible_only=True)
        analyzer.threadstate_summary(perceptible_only=True)
        return analyzer.mean_session_stats()

    stats = benchmark(analyze)
    print()
    print(f"scale {scale}: {stats.traced:.0f} episodes analyzed")
    assert stats.traced > 0


def test_trace_parse_cost(benchmark, sized_traces):
    lines = trace_to_lines(sized_traces(0.1))

    trace = benchmark(read_trace_lines, lines)
    assert trace.episodes


def test_trace_serialize_cost(benchmark, sized_traces):
    trace = sized_traces(0.1)
    lines = benchmark(trace_to_lines, trace)
    assert lines[0].startswith("#%lila")
