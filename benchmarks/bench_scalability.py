"""Scalability — analysis cost versus trace size.

The paper reports that fully automated analysis of about 7.5 hours of
sessions (roughly 250k episodes) took 15 minutes. This bench measures
how our core scales: trace loading (parse + validate), pattern mining,
and the full analysis battery, at increasing session lengths.
"""

import os

import pytest

from repro.core.api import LagAlyzer
from repro.apps.sessions import simulate_session
from repro.lila.reader import read_trace_lines
from repro.lila.writer import trace_to_lines
from repro.study.runner import StudyConfig, run_study

BENCH_WORKERS = int(os.environ.get("BENCH_WORKERS", "2"))


@pytest.fixture(scope="module")
def sized_traces():
    cache = {}

    def get(scale):
        if scale not in cache:
            cache[scale] = simulate_session(
                "SwingSet", seed=1, scale=scale
            )
        return cache[scale]

    return get


@pytest.mark.parametrize("scale", [0.05, 0.1, 0.2])
def test_full_analysis_cost(benchmark, sized_traces, scale):
    trace = sized_traces(scale)

    def analyze():
        analyzer = LagAlyzer.from_traces([trace])
        analyzer.pattern_table()
        analyzer.occurrence_summary()
        analyzer.trigger_summary(perceptible_only=True)
        analyzer.location_summary(perceptible_only=True)
        analyzer.concurrency_summary(perceptible_only=True)
        analyzer.threadstate_summary(perceptible_only=True)
        return analyzer.mean_session_stats()

    stats = benchmark(analyze)
    print()
    print(f"scale {scale}: {stats.traced:.0f} episodes analyzed")
    assert stats.traced > 0


def test_trace_parse_cost(benchmark, sized_traces):
    lines = trace_to_lines(sized_traces(0.1))

    trace = benchmark(read_trace_lines, lines)
    assert trace.episodes


def test_trace_serialize_cost(benchmark, sized_traces):
    trace = sized_traces(0.1)
    lines = benchmark(trace_to_lines, trace)
    assert lines[0].startswith("#%lila")


@pytest.mark.parametrize("workers", [1, BENCH_WORKERS])
def test_run_study_workers(benchmark, workers, tmp_path_factory):
    """The engine fan-out: the study at 1 worker versus a small pool.

    The cache directory is fresh per round so every measurement is a
    cold run — this isolates the parallel speedup from cache effects
    (cache behavior is covered by tests/test_engine.py).
    """
    config = StudyConfig(
        sessions=2,
        scale=0.05,
        applications=("CrosswordSage", "JFreeChart", "SwingSet", "JEdit"),
    )
    counter = iter(range(10**9))

    def study():
        cache_dir = tmp_path_factory.mktemp(f"study-cache-{next(counter)}")
        return run_study(config, workers=workers, cache_dir=cache_dir)

    result = benchmark.pedantic(study, rounds=1, iterations=1, warmup_rounds=0)
    assert len(result.apps) == len(config.applications)
