"""Figure 5 — triggers of (perceptible) episodes.

Regenerates both graphs (all episodes / perceptible only) and checks
the paper's callouts: JMol output-dominated, ArgoUML input-dominated,
FindBugs with the largest async share, Arabeske with a large
unspecified share. Benchmarks the trigger classification pass.
"""

import pytest

from repro.core import triggers as triggers_mod
from repro.study.figures import figure5_data


def _print_rows(data, heading):
    print()
    print(heading)
    print(f"{'app':<14s} {'input':>6s} {'output':>7s} {'async':>6s} "
          f"{'unspec':>7s}")
    for name, row in data.items():
        print(f"{name:<14s} {row['input']:5.0f}% {row['output']:6.0f}% "
              f"{row['asynchronous']:5.0f}% {row['unspecified']:6.0f}%")


def test_fig5_perceptible_rows(study_result):
    data = figure5_data(study_result, perceptible_only=True)
    _print_rows(data, "triggers of perceptible episodes "
                      "(paper mean: 40/47/7)")
    assert data["JMol"]["output"] > 90.0
    assert data["ArgoUML"]["input"] > 60.0
    assert data["FindBugs"]["asynchronous"] == max(
        row["asynchronous"] for row in data.values()
    )
    assert data["Arabeske"]["unspecified"] > 40.0


def test_fig5_all_rows(study_result):
    data = figure5_data(study_result, perceptible_only=False)
    _print_rows(data, "triggers of all episodes")
    for name, row in data.items():
        assert sum(row.values()) == pytest.approx(100.0), name


def test_fig5_classification_cost(benchmark, app_analyzer):
    episodes = app_analyzer("ArgoUML").episodes
    summary = benchmark(triggers_mod.summarize, episodes)
    assert summary.total == len(episodes)
