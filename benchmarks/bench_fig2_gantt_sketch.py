"""Figure 2 — GanttProject's deeply nested paint cascade.

Finds a deep-paint episode in a simulated GanttProject session and
benchmarks sketching it; asserts the deep nesting the paper shows.
"""

import pytest

from repro.core.intervals import IntervalKind
from repro.viz.sketch import render_episode_sketch


@pytest.fixture(scope="module")
def gantt_episode(app_analyzer):
    analyzer = app_analyzer("GanttProject")
    # The paper sketches a paint-rich episode: pick the deepest.
    return max(analyzer.episodes, key=lambda ep: ep.tree_depth())


def test_gantt_deep_nesting(gantt_episode):
    depth = gantt_episode.tree_depth()
    paints = gantt_episode.intervals_of_kind(IntervalKind.PAINT)
    print()
    print(
        f"deepest GanttProject episode: depth {depth}, "
        f"{len(paints)} paint intervals, "
        f"{gantt_episode.duration_ms:.0f} ms"
    )
    assert depth >= 8, "GanttProject episodes must nest deeply (paper: 12)"
    assert len(paints) >= 6


def test_fig2_sketch_render_cost(benchmark, gantt_episode):
    doc = benchmark(render_episode_sketch, gantt_episode)
    assert "paint" in doc.to_string()
