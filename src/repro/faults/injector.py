"""The execution half of fault injection: deciding and firing faults.

A :class:`FaultInjector` owns a :class:`~repro.faults.plan.FaultPlan`
and is consulted by the pipeline's injection sites through
:mod:`repro.faults.runtime`. Every decision is a pure function of
``(plan seed, rule index, site, key)`` plus the task's attempt number,
so a given plan fires at the same coordinates on every run. Fired
events are recorded in :attr:`FaultInjector.events` (and counted in the
ambient obs metrics as ``faults.injected``) for reproduction reports.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Union

from repro.core.errors import TraceFormatError
from repro.faults.plan import FaultClock, FaultPlan, FaultRule, hash_unit
from repro.obs import runtime as obs_runtime


class TransientFault(Exception):
    """Base of retryable injected failures (the retry policy's cue)."""


class InjectedCrash(TransientFault):
    """An injected worker crash (``worker_crash`` in raise mode)."""


class InjectedFault(TransientFault):
    """A generic injected task failure (``task_error``)."""


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired."""

    site: str
    key: str
    kind: str
    attempt: int

    def as_dict(self) -> dict:
        return {
            "site": self.site,
            "key": self.key,
            "kind": self.kind,
            "attempt": self.attempt,
        }


def _in_worker_process() -> bool:
    """True in a multiprocessing child (safe to hard-exit)."""
    try:
        import multiprocessing

        return multiprocessing.parent_process() is not None
    except Exception:
        return False


class FaultInjector:
    """Evaluates a plan at the pipeline's injection sites.

    One injector is installed ambiently per process (see
    :mod:`repro.faults.runtime`); worker processes get a fresh injector
    rebuilt from the plan dict shipped with their task, so decisions —
    which are stateless in the plan coordinates — agree everywhere.
    """

    def __init__(self, plan: Union[FaultPlan, dict, None]) -> None:
        if plan is None:
            plan = FaultPlan()
        elif isinstance(plan, dict):
            plan = FaultPlan.from_dict(plan)
        self.plan = plan
        self.clock = FaultClock()
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------

    def _matches(
        self, rule_index: int, rule: FaultRule, site: str, key: str,
        attempt: int,
    ) -> bool:
        if rule.times is not None and attempt >= rule.times:
            return False
        if rule.at:
            return key in rule.at
        return hash_unit(
            self.plan.seed, rule_index, rule.kind, site, key
        ) < rule.probability

    def _fired(
        self, site: str, key: str, attempt: int,
    ) -> Iterable[tuple]:
        for rule_index, rule in self.plan.rules_for(site):
            if self._matches(rule_index, rule, site, key, attempt):
                yield rule_index, rule

    def _record(self, site: str, key: str, kind: str, attempt: int) -> None:
        self.events.append(FaultEvent(site, key, kind, attempt))
        obs_runtime.count("faults.injected")

    # ------------------------------------------------------------------
    # Site API (called via repro.faults.runtime)
    # ------------------------------------------------------------------

    def check(
        self, site: str, key: Optional[Any] = None, attempt: int = 0
    ) -> None:
        """Fire any matching *raising* fault at ``site``.

        Raises the fault's exception (or stalls, for ``worker_hang``);
        returns normally when no rule fires.
        """
        if not self.plan.rules:
            return
        if key is None:
            key = self.clock.tick(site)
        key = str(key)
        for rule_index, rule in self._fired(site, key, attempt):
            if self._is_filter_kind(rule.kind, site):
                continue  # applied by filter_bytes/filter_lines instead
            self._record(site, key, rule.kind, attempt)
            self._trigger(rule, site, key)

    @staticmethod
    def _is_filter_kind(kind: str, site: str) -> bool:
        """Kinds that damage data in-stream rather than raising.

        ``cache_corrupt`` only ever flips bytes; trace damage is
        in-stream at the reader (``lila.read``) but raises the typed
        parse error directly at in-memory sites (``trace.map``).
        """
        if kind == "cache_corrupt":
            return True
        return (
            kind in ("trace_truncated", "trace_garbled")
            and site == "lila.read"
        )

    def _trigger(self, rule: FaultRule, site: str, key: str) -> None:
        kind = rule.kind
        if kind == "worker_crash":
            if rule.mode == "exit" and _in_worker_process():
                os._exit(3)
            raise InjectedCrash(
                f"injected worker crash at {site} key={key}"
            )
        if kind == "worker_hang":
            time.sleep(rule.seconds)
            return
        if kind == "task_error":
            raise InjectedFault(f"injected task error at {site} key={key}")
        if kind == "broken_pool":
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool(f"injected pool break (dispatch {key})")
        if kind == "cache_read_error":
            raise OSError(
                errno.EIO, f"injected cache read error for {key[:12]}"
            )
        if kind in ("cache_write_error", "disk_full"):
            code = errno.ENOSPC if kind == "disk_full" else errno.EIO
            raise OSError(
                code, f"injected cache write failure for {key[:12]}"
            )
        if kind == "warehouse_write_error":
            raise OSError(
                errno.EIO, f"injected warehouse write failure for {key}"
            )
        if kind == "mmap_error":
            # A column file that cannot be mapped is deterministically
            # unreadable — typed so the engine quarantines, whether the
            # open happens at load time or at worker-side re-open.
            raise TraceFormatError(
                f"injected column-file map failure for {key}"
            )
        if kind in ("trace_truncated", "trace_garbled"):
            # At a non-reader site (trace.map) the damaged trace
            # surfaces as the typed, deterministic parse failure the
            # engine quarantines on.
            raise TraceFormatError(
                f"injected {kind.replace('_', ' ')} for trace {key}"
            )
        raise AssertionError(f"unhandled fault kind {kind!r}")

    def filter_bytes(
        self, site: str, key: str, data: bytes, attempt: int = 0
    ) -> bytes:
        """Apply byte-corruption faults (``cache_corrupt``) to ``data``."""
        if not self.plan.rules or not data:
            return data
        key = str(key)
        for rule_index, rule in self._fired(site, key, attempt):
            if rule.kind != "cache_corrupt":
                continue
            self._record(site, key, rule.kind, attempt)
            position = int(
                hash_unit(self.plan.seed, rule_index, "byte", key)
                * len(data)
            )
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        return data

    def filter_lines(
        self, site: str, key: str, lines: Iterable[str], attempt: int = 0
    ) -> Iterable[str]:
        """Apply record-level trace damage (truncation / garbling).

        Returns ``lines`` untouched (lazily, without materializing)
        when no rule fires.
        """
        if not self.plan.rules:
            return lines
        key = str(key)
        fired = [
            (rule_index, rule)
            for rule_index, rule in self._fired(site, key, attempt)
            if rule.kind in ("trace_truncated", "trace_garbled")
        ]
        if not fired:
            return lines
        damaged = list(lines)
        for rule_index, rule in fired:
            self._record(site, key, rule.kind, attempt)
            if len(damaged) < 3:
                continue
            if rule.kind == "trace_truncated":
                fraction = 0.25 + 0.5 * hash_unit(
                    self.plan.seed, rule_index, "cut", key
                )
                keep = max(2, int(len(damaged) * fraction))
                damaged = damaged[:keep]
            else:  # trace_garbled: cut one record line down to its tag
                body = max(1, len(damaged) - 1)
                line_index = 1 + int(
                    hash_unit(self.plan.seed, rule_index, "line", key)
                    * body
                )
                line_index = min(line_index, len(damaged) - 1)
                damaged[line_index] = damaged[line_index][:1]
        return damaged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def schedule(self) -> List[dict]:
        """The fired events so far, as JSON-ready dicts (this process)."""
        return [event.as_dict() for event in self.events]

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, "
            f"rules={len(self.plan.rules)}, fired={len(self.events)})"
        )
