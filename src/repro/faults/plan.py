"""Declarative, seedable fault plans.

A :class:`FaultPlan` is the *schedule* half of the fault-injection
layer: a seed plus an ordered list of :class:`FaultRule` entries, each
naming a fault ``kind``, the injection ``site`` it applies to, and
*when* it fires — at exact keys (task indices, cache keys, session
ids), or with a probability derived from a named hash of
``(seed, rule, site, key)``. Because every decision is a pure function
of those coordinates, a plan reproduces the identical fault schedule on
every run, independent of wall-clock time, worker scheduling, or
process boundaries — the property the chaos suite and the
``study --faults plan.json`` reproduction workflow rely on.

The execution half lives in :mod:`repro.faults.injector`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.errors import LagAlyzerError


class FaultPlanError(LagAlyzerError):
    """A fault plan is malformed or internally inconsistent."""


#: Injection sites the pipeline exposes (rule sites must be one of these).
SITES = (
    "engine.task",   # one scheduled task (key = task index in the batch)
    "engine.pool",   # process-pool dispatch (key = dispatch count)
    "trace.map",     # per-trace analysis map (key = "App/session-id")
    "cache.read",    # result-cache read (key = cache entry key)
    "cache.write",   # result-cache write (key = cache entry key)
    "lila.read",     # trace-file parse (key = file name)
    "lila.mmap",     # column-file mmap open (key = file name)
    "ingest.frame",  # ingest-daemon frame intake (key = "session/seq")
    "ingest.flush",  # ingest-daemon spool flush (key = session id)
    "obs.publish",   # telemetry-warehouse flush (key = run id)
    "warehouse.write",  # study-warehouse session write (key = "app/session")
)

#: Fault kinds and the site each defaults to.
KIND_SITES: Dict[str, str] = {
    "worker_crash": "engine.task",      # task dies (raise, or hard exit)
    "worker_hang": "engine.task",       # task stalls for `seconds`
    "task_error": "engine.task",        # task raises a transient error
    "broken_pool": "engine.pool",       # the whole pool breaks
    "cache_read_error": "cache.read",   # entry read raises an IO error
    "cache_corrupt": "cache.read",      # entry bytes silently flipped
    "cache_write_error": "cache.write", # entry write raises an IO error
    "disk_full": "cache.write",         # entry write raises ENOSPC
    "trace_truncated": "lila.read",     # trace records cut off mid-file
    "trace_garbled": "lila.read",       # one trace record garbled
    "mmap_error": "lila.mmap",          # column-file map open raises IO
    "warehouse_write_error": "warehouse.write",  # study row write raises IO
}

#: Kinds that model *transient* failures: they default to firing on the
#: first attempt only (``times=1``) so a retry succeeds.
TRANSIENT_KINDS = frozenset(
    (
        "worker_crash",
        "worker_hang",
        "task_error",
        "broken_pool",
        "cache_read_error",
        "cache_write_error",
        "disk_full",
        "warehouse_write_error",
    )
)


def hash_unit(seed: int, *parts: Any) -> float:
    """A deterministic uniform draw in ``[0, 1)`` named by its parts.

    The injection layer's replacement for ``random.random()``: the same
    ``(seed, *parts)`` coordinates always produce the same value, in
    any process, in any order.
    """
    text = "/".join([str(seed), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultRule:
    """One fault: what to inject, where, and when.

    Args:
        kind: one of :data:`KIND_SITES`.
        site: injection site; defaults to the kind's natural site.
        at: exact keys to fire on (task indices are matched as strings).
        probability: chance of firing per (site, key), decided by
            :func:`hash_unit` — deterministic, not sampled.
        times: fire on attempts ``0 .. times-1`` of a task only;
            ``None`` means every attempt. Defaults to 1 for transient
            kinds (so retries recover) and ``None`` for deterministic
            corruption kinds (so retries keep failing).
        seconds: stall duration for ``worker_hang``.
        mode: ``worker_crash`` only — ``"raise"`` raises a retryable
            :class:`~repro.faults.injector.InjectedCrash`; ``"exit"``
            hard-kills the worker process (a real ``BrokenProcessPool``).
    """

    kind: str
    site: str = ""
    at: Tuple[str, ...] = ()
    probability: float = 0.0
    times: Optional[int] = -1  # -1 = "use the kind's default"
    seconds: float = 0.25
    mode: str = "raise"

    def __post_init__(self) -> None:
        if self.kind not in KIND_SITES:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {', '.join(sorted(KIND_SITES))})"
            )
        if not self.site:
            object.__setattr__(self, "site", KIND_SITES[self.kind])
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown injection site {self.site!r} "
                f"(choose from {', '.join(SITES)})"
            )
        object.__setattr__(
            self, "at", tuple(str(key) for key in self.at)
        )
        if not self.at and not self.probability:
            raise FaultPlanError(
                f"rule {self.kind!r} needs 'at' keys or a 'probability'"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"rule {self.kind!r}: probability {self.probability} "
                f"outside [0, 1]"
            )
        if self.times == -1:
            object.__setattr__(
                self, "times", 1 if self.kind in TRANSIENT_KINDS else None
            )
        if self.times is not None and self.times < 1:
            raise FaultPlanError(
                f"rule {self.kind!r}: times must be >= 1 or null"
            )
        if self.mode not in ("raise", "exit"):
            raise FaultPlanError(
                f"rule {self.kind!r}: mode must be 'raise' or 'exit'"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "site": self.site,
            "at": list(self.at),
            "probability": self.probability,
            "times": self.times,
            "seconds": self.seconds,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(raw, Mapping):
            raise FaultPlanError(f"rule must be an object, got {raw!r}")
        unknown = set(raw) - {
            "kind", "site", "at", "probability", "times", "seconds", "mode"
        }
        if unknown:
            raise FaultPlanError(
                f"rule has unknown field(s): {', '.join(sorted(unknown))}"
            )
        if "kind" not in raw:
            raise FaultPlanError("rule is missing 'kind'")
        return cls(
            kind=str(raw["kind"]),
            site=str(raw.get("site", "")),
            at=tuple(raw.get("at", ())),
            probability=float(raw.get("probability", 0.0)),
            times=raw.get("times", -1) if raw.get("times", -1) is not None
            else None,
            seconds=float(raw.get("seconds", 0.25)),
            mode=str(raw.get("mode", "raise")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules it drives. JSON round-trippable."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def rules_for(self, site: str) -> Iterable[Tuple[int, FaultRule]]:
        """``(rule_index, rule)`` pairs registered at ``site``."""
        for index, rule in enumerate(self.rules):
            if rule.site == site:
                yield index, rule

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.as_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(raw, Mapping):
            raise FaultPlanError(f"fault plan must be an object, got {raw!r}")
        rules = raw.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise FaultPlanError("'rules' must be a list")
        return cls(
            seed=int(raw.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {path}: {error}")
        try:
            raw = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(
                f"fault plan {path} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(raw)


class FaultClock:
    """Deterministic logical time: per-site invocation counters.

    The injection layer never consults the wall clock. Sites without a
    naturally stable key (pool dispatches) are keyed by their
    invocation index from this clock instead, so a serial re-run
    replays the identical sequence.
    """

    def __init__(self) -> None:
        self._ticks: Dict[str, int] = {}

    def tick(self, site: str) -> int:
        """The invocation index of this call at ``site`` (0-based)."""
        count = self._ticks.get(site, 0)
        self._ticks[site] = count + 1
        return count

    def reset(self) -> None:
        self._ticks.clear()
