"""The ambient fault injector: process-global, one-branch no-op guards.

Mirrors :mod:`repro.obs.runtime`: injection sites deep in the pipeline
(the cache, the reader, the scheduler's task wrapper) cannot have an
``injector=`` parameter threaded through every signature, so one
injector is *installed* per process and sites consult it through the
helpers here. Every helper starts with ``if _current is None: return``,
so production runs without a fault plan pay one global read per site.

Worker processes never share the parent's injector object: the
scheduler ships the plan dict inside each task payload and
:class:`task_scope` rebuilds a fresh injector in the worker (decisions
are stateless in the plan coordinates, so parent and workers agree).
A fork-inherited injector is ignored via the owning-pid check, exactly
like the obs runtime.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Optional

from repro.faults.injector import FaultInjector

#: The installed injector, or None (fault injection disabled).
_current: Optional[FaultInjector] = None
#: Pid that installed it; a forked child sees a mismatch and ignores it.
_owner_pid: int = -1
#: Ambient attempt number of the task being executed (set by the
#: scheduler's task wrapper; 0 outside any scheduled task).
_attempt: int = 0
#: Ambient index of the task being executed within its batch.
_task_index: int = 0


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the ambient injector for this process."""
    global _current, _owner_pid
    _current = injector
    _owner_pid = os.getpid()


def uninstall() -> None:
    """Disable ambient fault injection."""
    global _current
    _current = None


def current() -> Optional[FaultInjector]:
    """The ambient injector, or None when injection is disabled."""
    if _current is None or _owner_pid != os.getpid():
        return None
    return _current


class installed:
    """Context manager: install an injector, restore the previous one.

    A no-op when ``injector`` is None, so call sites don't branch.
    """

    __slots__ = ("_injector", "_previous", "_previous_pid")

    def __init__(self, injector: Optional[FaultInjector]) -> None:
        self._injector = injector
        self._previous: Optional[FaultInjector] = None
        self._previous_pid: int = -1

    def __enter__(self) -> Optional[FaultInjector]:
        if self._injector is not None:
            self._previous = _current
            self._previous_pid = _owner_pid
            install(self._injector)
        return self._injector

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._injector is not None:
            global _current, _owner_pid
            _current = self._previous
            _owner_pid = self._previous_pid
        return False


class task_scope:
    """Per-task injection context used by the scheduler's task wrapper.

    Sets the ambient (attempt, task index) for the duration of one task
    execution, and — in a fresh worker process where no injector is
    installed — rebuilds one from the plan dict shipped with the task.
    """

    __slots__ = ("_plan_dict", "_index", "_attempt", "_installed", "_saved")

    def __init__(
        self, plan_dict: Optional[dict], index: int, attempt: int
    ) -> None:
        self._plan_dict = plan_dict
        self._index = index
        self._attempt = attempt
        self._installed: Optional[installed] = None
        self._saved = (0, 0)

    def __enter__(self) -> None:
        global _attempt, _task_index
        if self._plan_dict is not None and current() is None:
            self._installed = installed(FaultInjector(self._plan_dict))
            self._installed.__enter__()
        self._saved = (_attempt, _task_index)
        _attempt = self._attempt
        _task_index = self._index
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _attempt, _task_index
        _attempt, _task_index = self._saved
        if self._installed is not None:
            self._installed.__exit__(exc_type, exc, tb)
            self._installed = None
        return False


# ----------------------------------------------------------------------
# One-branch guarded site helpers
# ----------------------------------------------------------------------


def check(
    site: str, key: Optional[Any] = None, attempt: Optional[int] = None
) -> None:
    """Fire any matching raising fault at ``site`` (no-op when disabled).

    ``attempt`` overrides the ambient scheduler-set attempt number —
    sites that manage their own retries (the ingest daemon's frame
    intake and flush loop) pass their local retry count so transient
    rules (``times=1``) recover on redelivery exactly as they do under
    the engine scheduler.
    """
    if _current is None:
        return
    if _owner_pid != os.getpid():
        return
    _current.check(
        site, key=key, attempt=_attempt if attempt is None else attempt
    )


def filter_bytes(site: str, key: Any, data: bytes) -> bytes:
    """Pass ``data`` through byte-corruption faults (identity when disabled)."""
    if _current is None:
        return data
    if _owner_pid != os.getpid():
        return data
    return _current.filter_bytes(site, str(key), data, attempt=_attempt)


def filter_lines(site: str, key: Any, lines: Iterable[str]) -> Iterable[str]:
    """Pass trace lines through damage faults (identity when disabled)."""
    if _current is None:
        return lines
    if _owner_pid != os.getpid():
        return lines
    return _current.filter_lines(site, str(key), lines, attempt=_attempt)


def plan_snapshot() -> Optional[dict]:
    """The ambient plan as a picklable dict (to ship into workers)."""
    injector = current()
    if injector is None or not injector.plan.rules:
        return None
    return injector.plan.as_dict()
