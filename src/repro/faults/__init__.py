"""``repro.faults`` — deterministic fault injection for the pipeline.

LagAlyzer is an offline analyzer: its value rests on never losing or
silently corrupting a study when a worker dies, a cache disk fills, or
a trace is truncated. This package makes those failure classes
*first-class, reproducible inputs*:

- :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultRule`
  — a seedable, JSON round-trippable schedule of faults (worker
  crashes, hangs, pool breaks, cache IO errors and silent byte
  corruption, disk-full, truncated/garbled trace records), fired at
  exact task indices or at probabilities derived from a named hash —
  never from wall-clock time or ``random`` state.
- :class:`~repro.faults.injector.FaultInjector` — evaluates the plan at
  the pipeline's injection sites and records every fired event.
- :mod:`~repro.faults.runtime` — the ambient per-process installation
  the hot paths consult with one-branch disabled guards (the same
  pattern as :mod:`repro.obs.runtime`).

The engine side of the story — retries with backoff, per-task
timeouts, serial re-execution after pool breaks, and the quarantine
list — lives in :mod:`repro.engine.scheduler` and
:mod:`repro.engine.engine`; ``docs/fault_injection.md`` documents the
plan format and the reproduction workflow
(``lagalyzer study --faults plan.json``).
"""

from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    TransientFault,
)
from repro.faults.plan import (
    KIND_SITES,
    SITES,
    FaultClock,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    hash_unit,
)

__all__ = [
    "FaultClock",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "KIND_SITES",
    "SITES",
    "TransientFault",
    "hash_unit",
]
