"""Chart renderers for the characterization figures.

Three chart families cover every figure of Section IV:

- stacked horizontal bars (Figures 4, 5, 6, 8): one bar per
  application, segments per category, x-axis in percent;
- dot/bar charts (Figure 7): one value per application;
- multi-series line charts (Figure 3): the cumulative distribution of
  episodes into patterns.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.viz.colors import color_for_app
from repro.viz.svg import SvgDocument

_LABEL_WIDTH = 120
_MARGIN = 16
_BAR_HEIGHT = 16
_BAR_GAP = 8
_LEGEND_BAND = 26
_AXIS_BAND = 30


def _chart_frame(
    n_rows: int, width: int
) -> SvgDocument:
    height = (
        _MARGIN
        + _LEGEND_BAND
        + n_rows * (_BAR_HEIGHT + _BAR_GAP)
        + _AXIS_BAND
    )
    return SvgDocument(width, height)


def render_stacked_bars(
    data: Mapping[str, Mapping[str, float]],
    colors: Mapping[str, str],
    title: str,
    width: int = 820,
    x_max: float = 100.0,
    x_label: str = "Episodes [%]",
) -> SvgDocument:
    """A horizontal stacked-bar chart, one bar per row of ``data``.

    Args:
        data: row label -> {category: percentage}; categories are drawn
            in ``colors`` order, so every row stacks identically.
        colors: category -> fill color; also defines the legend.
        title: chart heading.
        x_max: right edge of the axis (Figure 8 zooms to 60%).
        x_label: axis caption.
    """
    doc = _chart_frame(len(data), width)
    doc.text(_MARGIN, _MARGIN + 2, title, size=13, fill="#111111")

    # Legend.
    legend_x = _MARGIN + _LABEL_WIDTH
    for category, color in colors.items():
        doc.rect(legend_x, _MARGIN + 10, 10, 10, fill=color)
        doc.text(legend_x + 14, _MARGIN + 19, category, size=10)
        legend_x += 14 + 7 * len(category) + 18

    plot_left = _MARGIN + _LABEL_WIDTH
    plot_width = width - plot_left - _MARGIN
    top = _MARGIN + _LEGEND_BAND + 6

    for row_index, (label, values) in enumerate(data.items()):
        y = top + row_index * (_BAR_HEIGHT + _BAR_GAP)
        doc.text(
            plot_left - 6,
            y + _BAR_HEIGHT - 4,
            label,
            size=10,
            anchor="end",
        )
        x = float(plot_left)
        for category, color in colors.items():
            value = values.get(category, 0.0)
            seg = plot_width * min(value, x_max) / x_max
            if seg <= 0:
                continue
            doc.rect(
                x,
                y,
                seg,
                _BAR_HEIGHT,
                fill=color,
                title=f"{label}: {category} {value:.1f}%",
            )
            x += seg

    _draw_percent_axis(doc, plot_left, plot_width, top, len(data), x_max, x_label)
    return doc


def render_dot_chart(
    data: Mapping[str, float],
    title: str,
    width: int = 820,
    x_max: float = 2.0,
    x_label: str = "Runnable threads",
    reference: Optional[float] = 1.0,
) -> SvgDocument:
    """A dot chart, one value per row (Figure 7).

    Args:
        reference: draw a dashed vertical guide at this x (the "exactly
            one runnable thread" line); None omits it.
    """
    doc = _chart_frame(len(data), width)
    doc.text(_MARGIN, _MARGIN + 2, title, size=13, fill="#111111")
    plot_left = _MARGIN + _LABEL_WIDTH
    plot_width = width - plot_left - _MARGIN
    top = _MARGIN + _LEGEND_BAND + 6

    if reference is not None and 0 <= reference <= x_max:
        x_ref = plot_left + plot_width * reference / x_max
        bottom = top + len(data) * (_BAR_HEIGHT + _BAR_GAP) - _BAR_GAP
        doc.line(x_ref, top - 4, x_ref, bottom + 4, stroke="#999999",
                 dash="4,3")

    for row_index, (label, value) in enumerate(data.items()):
        y = top + row_index * (_BAR_HEIGHT + _BAR_GAP)
        cy = y + _BAR_HEIGHT / 2
        doc.text(plot_left - 6, y + _BAR_HEIGHT - 4, label, size=10,
                 anchor="end")
        doc.line(plot_left, cy, plot_left + plot_width * min(value, x_max) / x_max,
                 cy, stroke="#bbbbbb", stroke_width=2.0)
        doc.circle(
            plot_left + plot_width * min(value, x_max) / x_max,
            cy,
            4.0,
            fill="#4e79a7",
            title=f"{label}: {value:.2f}",
        )

    _draw_numeric_axis(doc, plot_left, plot_width, top, len(data), x_max, x_label)
    return doc


def render_cdf_chart(
    curves: Mapping[str, Sequence[float]],
    title: str = "Cumulative distribution of episodes into patterns",
    width: int = 760,
    height: int = 520,
) -> SvgDocument:
    """The Figure 3 chart: one CDF line per application.

    Args:
        curves: app name -> list of y values (percent of episodes) for
            x = 0..100 percent of patterns, equally spaced.
    """
    doc = SvgDocument(width, height)
    doc.text(_MARGIN, _MARGIN + 2, title, size=13, fill="#111111")
    plot_left = 60
    plot_top = 40
    plot_width = width - plot_left - 170
    plot_height = height - plot_top - 50

    # Frame and grid.
    for fraction in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        x = plot_left + plot_width * fraction
        y = plot_top + plot_height * (1 - fraction)
        doc.line(x, plot_top, x, plot_top + plot_height, stroke="#eeeeee")
        doc.line(plot_left, y, plot_left + plot_width, y, stroke="#eeeeee")
        doc.text(x, plot_top + plot_height + 16, f"{fraction * 100:.0f}",
                 size=9, anchor="middle", fill="#555555")
        doc.text(plot_left - 8, y + 3, f"{fraction * 100:.0f}", size=9,
                 anchor="end", fill="#555555")
    doc.text(
        plot_left + plot_width / 2,
        plot_top + plot_height + 34,
        "Patterns [%]",
        size=11,
        anchor="middle",
    )
    doc.text(
        18,
        plot_top + plot_height / 2,
        "Cumulative Episodes Count [%]",
        size=11,
        anchor="middle",
        rotate=-90.0,
    )

    legend_y = plot_top
    for index, (name, curve) in enumerate(curves.items()):
        color = color_for_app(index)
        if curve:
            n = len(curve) - 1
            points = [
                (
                    plot_left + plot_width * i / max(n, 1),
                    plot_top + plot_height * (1 - value / 100.0),
                )
                for i, value in enumerate(curve)
            ]
            doc.polyline(points, stroke=color, stroke_width=1.6)
        doc.line(
            plot_left + plot_width + 12,
            legend_y + 4,
            plot_left + plot_width + 30,
            legend_y + 4,
            stroke=color,
            stroke_width=2.0,
        )
        doc.text(plot_left + plot_width + 34, legend_y + 8, name, size=10)
        legend_y += 16
    return doc


def _draw_percent_axis(
    doc: SvgDocument,
    plot_left: float,
    plot_width: float,
    top: float,
    n_rows: int,
    x_max: float,
    x_label: str,
) -> None:
    axis_y = top + n_rows * (_BAR_HEIGHT + _BAR_GAP) + 4
    doc.line(plot_left, axis_y, plot_left + plot_width, axis_y,
             stroke="#555555")
    ticks = 4
    for i in range(ticks + 1):
        x = plot_left + plot_width * i / ticks
        doc.line(x, axis_y, x, axis_y + 4, stroke="#555555")
        doc.text(x, axis_y + 16, f"{x_max * i / ticks:.0f}", size=9,
                 anchor="middle", fill="#555555")
    doc.text(plot_left + plot_width / 2, axis_y + 28, x_label, size=10,
             anchor="middle")


def _draw_numeric_axis(
    doc: SvgDocument,
    plot_left: float,
    plot_width: float,
    top: float,
    n_rows: int,
    x_max: float,
    x_label: str,
) -> None:
    axis_y = top + n_rows * (_BAR_HEIGHT + _BAR_GAP) + 4
    doc.line(plot_left, axis_y, plot_left + plot_width, axis_y,
             stroke="#555555")
    ticks = 8
    for i in range(ticks + 1):
        x = plot_left + plot_width * i / ticks
        doc.line(x, axis_y, x, axis_y + 4, stroke="#555555")
        doc.text(x, axis_y + 16, f"{x_max * i / ticks:g}", size=9,
                 anchor="middle", fill="#555555")
    doc.text(plot_left + plot_width / 2, axis_y + 28, x_label, size=10,
             anchor="middle")
