"""Visualization: episode sketches and characterization charts.

The paper's tool renders *episode sketches* (a temporal view of one
episode: the nested interval tree over a time axis, with call-stack
sample dots along the top edge) and generates characterization charts
(the MATLAB figures of Section IV). This package reproduces both as
dependency-free SVG.
"""

from repro.viz.svg import SvgDocument
from repro.viz.colors import (
    APP_PALETTE,
    INTERVAL_COLORS,
    STATE_COLORS,
    color_for_app,
)
from repro.viz.sketch import render_episode_sketch
from repro.viz.timeline import render_session_timeline
from repro.viz.charts import (
    render_cdf_chart,
    render_dot_chart,
    render_stacked_bars,
)
from repro.viz.browser import render_pattern_browser
from repro.viz.obstimeline import render_span_timeline, save_span_timeline

__all__ = [
    "APP_PALETTE",
    "INTERVAL_COLORS",
    "STATE_COLORS",
    "SvgDocument",
    "color_for_app",
    "render_cdf_chart",
    "render_dot_chart",
    "render_episode_sketch",
    "render_pattern_browser",
    "render_session_timeline",
    "render_span_timeline",
    "render_stacked_bars",
    "save_span_timeline",
]
