"""Span timeline: the observability pipeline rendered with our own viz.

The paper's whole thesis is that latency profiles deserve a temporal
visualization; ``repro.obs`` traces the analysis pipeline itself, so it
would be odd to ship those spans only as Chrome-trace JSON. This module
dogfoods :class:`~repro.viz.svg.SvgDocument`: one lane per
(process, thread), spans drawn as nested bars over a shared wall-clock
axis — the same visual grammar as the session timeline, aimed at the
tool instead of the traced application.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.spans import Span
from repro.viz.svg import SvgDocument

#: Fill colors cycled by top-level span name so the same stage gets the
#: same hue across lanes and runs (dict order = assignment order).
_SPAN_PALETTE = (
    "#4878cf",  # blue
    "#6acc65",  # green
    "#d65f5f",  # red
    "#b47cc7",  # purple
    "#c4ad66",  # ochre
    "#77bedb",  # light blue
    "#ee854a",  # orange
    "#8c613c",  # brown
)

_LANE_HEIGHT = 18
_LANE_GAP = 6
_LABEL_WIDTH = 170
_MARGIN = 12
_AXIS_HEIGHT = 26
_MIN_BAR_PX = 1.5


def _lane_key(span: Span) -> Tuple[int, str]:
    return (span.pid, span.thread)


def _depths(spans: Sequence[Span]) -> Dict[str, int]:
    """Depth of every span (roots at 0), tolerant of absent parents."""
    by_id = {span.span_id: span for span in spans}
    depths: Dict[str, int] = {}

    def depth_of(span: Span) -> int:
        cached = depths.get(span.span_id)
        if cached is not None:
            return cached
        seen = set()
        depth = 0
        current = span
        while current.parent_id and current.parent_id in by_id:
            if current.span_id in seen:
                break
            seen.add(current.span_id)
            current = by_id[current.parent_id]
            depth += 1
        depths[span.span_id] = depth
        return depth

    for span in spans:
        depth_of(span)
    return depths


def render_span_timeline(
    spans: Sequence[Span],
    width: int = 960,
    title: Optional[str] = "pipeline spans",
) -> SvgDocument:
    """Render collected spans as a per-process/thread lane timeline.

    Args:
        spans: finished spans (e.g. from ``Observer.spans()`` or
            :func:`repro.obs.observer.load_bundle`).
        width: document width in pixels.
        title: heading text, or None to omit.

    Raises:
        ValueError: when ``spans`` is empty.
    """
    spans = [span for span in spans if span.end_ns > 0]
    if not spans:
        raise ValueError("no finished spans to render")

    origin_ns = min(span.start_ns for span in spans)
    horizon_ns = max(span.end_ns for span in spans)
    total_ns = max(horizon_ns - origin_ns, 1)

    lanes: List[Tuple[int, str]] = []
    lane_rows: Dict[Tuple[int, str], List[Span]] = {}
    for span in sorted(spans, key=lambda s: (s.pid, s.thread, s.start_ns)):
        key = _lane_key(span)
        if key not in lane_rows:
            lane_rows[key] = []
            lanes.append(key)
        lane_rows[key].append(span)

    depths = _depths(spans)
    lane_levels = {
        key: max(depths[s.span_id] for s in rows) + 1
        for key, rows in lane_rows.items()
    }

    colors: Dict[str, str] = {}

    def color_for(name: str) -> str:
        stage = name.split(".", 1)[0]
        if stage not in colors:
            colors[stage] = _SPAN_PALETTE[len(colors) % len(_SPAN_PALETTE)]
        return colors[stage]

    top = _MARGIN + (18 if title else 0)
    lane_tops: Dict[Tuple[int, str], int] = {}
    y = top
    for key in lanes:
        lane_tops[key] = y
        y += lane_levels[key] * _LANE_HEIGHT + _LANE_GAP
    height = y + _AXIS_HEIGHT

    doc = SvgDocument(width, height)
    plot_x = _LABEL_WIDTH
    plot_w = width - _LABEL_WIDTH - _MARGIN

    def x_of(t_ns: int) -> float:
        return plot_x + plot_w * (t_ns - origin_ns) / total_ns

    if title:
        doc.text(_MARGIN, _MARGIN + 4, title, size=13, fill="#111111")

    for key in lanes:
        pid, thread = key
        lane_y = lane_tops[key]
        lane_h = lane_levels[key] * _LANE_HEIGHT
        doc.rect(
            plot_x, lane_y, plot_w, lane_h, fill="#f7f7f7", stroke="#dddddd"
        )
        doc.text(
            _MARGIN,
            lane_y + lane_h / 2 + 4,
            f"pid {pid} / {thread}"[: _LABEL_WIDTH // 6],
            size=10,
            fill="#444444",
        )
        for span in lane_rows[key]:
            bar_x = x_of(span.start_ns)
            bar_w = max(
                plot_w * span.duration_ns / total_ns, _MIN_BAR_PX
            )
            bar_y = lane_y + depths[span.span_id] * _LANE_HEIGHT + 1
            label = (
                f"{span.name} — {span.duration_ns / 1e6:.2f} ms"
                f" (cpu {span.cpu_ns / 1e6:.2f} ms)"
            )
            doc.rect(
                bar_x,
                bar_y,
                bar_w,
                _LANE_HEIGHT - 2,
                fill=color_for(span.name),
                stroke="#ffffff",
                stroke_width=0.5,
                title=label,
                rx=1.5,
            )
            if bar_w > 60:
                doc.text(
                    bar_x + 3,
                    bar_y + _LANE_HEIGHT - 6,
                    span.name,
                    size=9,
                    fill="#ffffff",
                )

    axis_y = height - _AXIS_HEIGHT + 8
    doc.line(plot_x, axis_y, plot_x + plot_w, axis_y, stroke="#888888")
    for i in range(5):
        t_ns = origin_ns + total_ns * i // 4
        x = x_of(t_ns)
        doc.line(x, axis_y, x, axis_y + 4, stroke="#888888")
        doc.text(
            x,
            axis_y + 16,
            f"{(t_ns - origin_ns) / 1e6:.1f} ms",
            size=9,
            fill="#555555",
            anchor="middle",
        )
    return doc


def save_span_timeline(
    spans: Sequence[Span],
    path: Union[str, Path],
    width: int = 960,
    title: Optional[str] = "pipeline spans",
) -> Path:
    """Render and write the span timeline SVG; returns the path."""
    return render_span_timeline(spans, width=width, title=title).save(path)
