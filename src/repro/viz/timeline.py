"""Session timelines: the LiLa-Viewer view the episode sketch extends.

The paper's episode sketches are "an extension of the trace timeline
visualizations implemented in LiLa Viewer". This module renders that
underlying view for a whole session: every episode as a bar on the
session's time axis (height = lag, on a log scale; color = perceptible
or not), the perceptibility threshold as a guide line, and garbage
collections as marks underneath — the view a developer scans to decide
*which* episode to open as a sketch.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.intervals import IntervalKind, NS_PER_S
from repro.core.trace import Trace
from repro.viz.colors import INTERVAL_COLORS
from repro.viz.svg import SvgDocument

_PERCEPTIBLE_COLOR = "#c62828"
_FAST_COLOR = "#7f9fc4"
_THRESHOLD_COLOR = "#888888"


def render_session_timeline(
    trace: Trace,
    width: int = 1000,
    height: int = 260,
    threshold_ms: float = 100.0,
    max_lag_ms: Optional[float] = None,
) -> SvgDocument:
    """Render one session as a timeline of episode lags.

    Args:
        trace: the session to draw.
        threshold_ms: the perceptibility guide line.
        max_lag_ms: top of the log-scaled lag axis (defaults to the
            worst episode's lag).
    """
    doc = SvgDocument(width, height)
    margin_left, margin_right = 56, 14
    plot_top, plot_bottom = 36, height - 44
    plot_width = width - margin_left - margin_right
    plot_height = plot_bottom - plot_top

    doc.text(
        margin_left,
        18,
        f"{trace.application} — {trace.metadata.session_id}: "
        f"{len(trace.episodes)} episodes, "
        f"{len(trace.perceptible_episodes(threshold_ms))} perceptible",
        size=13,
        fill="#111111",
    )

    span_ns = max(trace.metadata.duration_ns, 1)

    def x_of(t_ns: int) -> float:
        return margin_left + plot_width * (t_ns - trace.metadata.start_ns) / span_ns

    lags = [ep.duration_ms for ep in trace.episodes]
    top_lag = max_lag_ms or (max(lags) if lags else threshold_ms * 2)
    top_lag = max(top_lag, threshold_ms * 1.5)
    floor_ms = 1.0
    log_floor = math.log10(floor_ms)
    log_span = math.log10(top_lag) - log_floor or 1.0

    def y_of(lag_ms: float) -> float:
        clamped = min(max(lag_ms, floor_ms), top_lag)
        fraction = (math.log10(clamped) - log_floor) / log_span
        return plot_bottom - plot_height * fraction

    # Lag axis (log): 1, 10, 100, ... ms.
    decade = floor_ms
    while decade <= top_lag:
        y = y_of(decade)
        doc.line(margin_left, y, width - margin_right, y, stroke="#f0f0f0")
        doc.text(margin_left - 6, y + 3, f"{decade:g}", size=9,
                 anchor="end", fill="#777777")
        decade *= 10
    doc.text(14, plot_top - 8, "lag [ms]", size=9, fill="#777777")

    # Perceptibility threshold.
    y_threshold = y_of(threshold_ms)
    doc.line(margin_left, y_threshold, width - margin_right, y_threshold,
             stroke=_THRESHOLD_COLOR, dash="5,4")
    doc.text(width - margin_right, y_threshold - 4,
             f"{threshold_ms:g} ms", size=9, anchor="end",
             fill=_THRESHOLD_COLOR)

    # Episodes.
    for episode in trace.episodes:
        x0 = x_of(episode.start_ns)
        bar_width = max(x_of(episode.end_ns) - x0, 0.8)
        y = y_of(episode.duration_ms)
        perceptible = episode.is_perceptible(threshold_ms)
        doc.rect(
            x0,
            y,
            bar_width,
            max(plot_bottom - y, 1.0),
            fill=_PERCEPTIBLE_COLOR if perceptible else _FAST_COLOR,
            title=(
                f"episode #{episode.index}: {episode.duration_ms:.1f} ms "
                f"at t={episode.start_ns / NS_PER_S:.1f} s"
            ),
        )

    # GC marks under the axis.
    gc_y = plot_bottom + 6
    for gc in trace.gc_intervals():
        doc.rect(
            x_of(gc.start_ns),
            gc_y,
            max(x_of(gc.end_ns) - x_of(gc.start_ns), 1.2),
            5,
            fill=INTERVAL_COLORS[IntervalKind.GC],
            title=f"{gc.symbol}: {gc.duration_ms:.0f} ms",
        )
    doc.text(margin_left - 6, gc_y + 5, "GC", size=8, anchor="end",
             fill="#777777")

    # Time axis.
    axis_y = plot_bottom + 18
    doc.line(margin_left, axis_y, width - margin_right, axis_y,
             stroke="#555555")
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        t_ns = trace.metadata.start_ns + round(span_ns * fraction)
        x = x_of(t_ns)
        doc.line(x, axis_y, x, axis_y + 4, stroke="#555555")
        doc.text(x, axis_y + 15, f"{t_ns / NS_PER_S:.0f} s", size=9,
                 anchor="middle", fill="#555555")
    return doc
