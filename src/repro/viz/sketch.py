"""Episode sketches: the temporal visualization of Figures 1 and 2.

An episode sketch has three parts (Section II-B):

1. a time axis at the bottom, locating the episode in the session;
2. above it, the tree of nested intervals, one row per nesting level,
   each interval a colored bar (color = interval type) labeled with its
   symbol and duration;
3. along the top edge, one dot per call-stack sample of the GUI thread,
   colored by thread state, with the full stack as a hover tooltip —
   the blackout during garbage collections is visible as a gap in the
   dots.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.episodes import Episode
from repro.core.intervals import Interval, NS_PER_MS
from repro.viz.colors import INTERVAL_COLORS, STATE_COLORS
from repro.viz.svg import SvgDocument

_ROW_HEIGHT = 22
_ROW_GAP = 4
_MARGIN_LEFT = 10
_MARGIN_RIGHT = 10
_SAMPLE_BAND = 26
_AXIS_BAND = 34
_MIN_LABEL_PX = 60


def _levels(root: Interval) -> List[List[Interval]]:
    """Intervals grouped by nesting level, root level first."""
    rows: List[List[Interval]] = []
    frontier = [root]
    while frontier:
        rows.append(frontier)
        next_frontier: List[Interval] = []
        for node in frontier:
            next_frontier.extend(node.children)
        frontier = next_frontier
    return rows


def render_episode_sketch(
    episode: Episode,
    width: int = 960,
    title: Optional[str] = None,
) -> SvgDocument:
    """Render one episode as an SVG sketch.

    Args:
        episode: the episode to draw (its samples supply the dot band).
        width: document width in pixels; height follows tree depth.
        title: optional heading (defaults to episode index and lag).
    """
    rows = _levels(episode.root)
    rows.reverse()  # dispatch at the bottom, like the paper's figure
    tree_height = len(rows) * (_ROW_HEIGHT + _ROW_GAP)
    height = _SAMPLE_BAND + tree_height + _AXIS_BAND + 24
    doc = SvgDocument(width, height)

    heading = title or (
        f"Episode #{episode.index} — {episode.duration_ms:.0f} ms"
    )
    doc.text(_MARGIN_LEFT, 16, heading, size=13, fill="#111111")

    span_ns = max(episode.duration_ns, 1)
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT

    def x_of(t_ns: int) -> float:
        return _MARGIN_LEFT + plot_width * (t_ns - episode.start_ns) / span_ns

    # --- sample dots along the top edge --------------------------------
    dot_y = 24 + _SAMPLE_BAND / 2
    for sample in episode.samples:
        entry = sample.thread(episode.gui_thread)
        if entry is None:
            continue
        frames = "\n".join(
            frame.qualified_name for frame in entry.stack.frames[:12]
        )
        tooltip = f"{entry.state.value}\n{frames}" if frames else entry.state.value
        doc.circle(
            x_of(sample.timestamp_ns),
            dot_y,
            2.2,
            fill=STATE_COLORS[entry.state],
            title=tooltip,
        )

    # --- interval tree ---------------------------------------------------
    tree_top = 24 + _SAMPLE_BAND
    for row_index, row in enumerate(rows):
        y = tree_top + row_index * (_ROW_HEIGHT + _ROW_GAP)
        for interval in row:
            x0 = x_of(interval.start_ns)
            x1 = x_of(interval.end_ns)
            bar_width = max(x1 - x0, 1.0)
            label = f"{interval.symbol} ({interval.duration_ms:.0f} ms)"
            doc.rect(
                x0,
                y,
                bar_width,
                _ROW_HEIGHT,
                fill=INTERVAL_COLORS[interval.kind],
                stroke="#ffffff",
                stroke_width=0.8,
                title=label,
                rx=2.0,
            )
            if bar_width >= _MIN_LABEL_PX:
                short = interval.symbol.rsplit(".", 2)
                text = ".".join(short[-2:]) if len(short) > 1 else short[0]
                doc.text(
                    x0 + 4,
                    y + _ROW_HEIGHT - 7,
                    f"{text} {interval.duration_ms:.0f}ms",
                    size=9,
                    fill="#ffffff",
                )

    # --- time axis --------------------------------------------------------
    axis_y = tree_top + tree_height + 12
    doc.line(_MARGIN_LEFT, axis_y, width - _MARGIN_RIGHT, axis_y,
             stroke="#555555")
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        t_ns = episode.start_ns + round(span_ns * fraction)
        x = x_of(t_ns)
        doc.line(x, axis_y, x, axis_y + 5, stroke="#555555")
        doc.text(
            x,
            axis_y + 18,
            f"{t_ns / NS_PER_MS:.0f} ms",
            size=9,
            anchor="middle",
            fill="#555555",
        )
    return doc
