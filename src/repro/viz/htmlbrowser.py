"""An HTML pattern browser: Section II-E as a shareable artifact.

The paper's Pattern Browser shows a table of patterns with lag
statistics; selecting a pattern reveals its episode list and an episode
sketch of its first episode, and the developer browses the sketches of
the pattern's episodes "to get a quick grasp of the timing variations".
This module renders that whole workflow into one static HTML page:
a sortable-by-construction pattern table, a collapsible section per
pattern with its episode list, and inline SVG sketches (first episode
plus the slowest, where different) — no server, no JavaScript
dependencies, attachable to a bug report.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import List, Optional, Union

from repro.core.analyzer import LagAlyzer
from repro.core.drilldown import drill_down_pattern, format_drilldown
from repro.core.occurrence import classify_pattern
from repro.core.patterns import Pattern
from repro.viz.sketch import render_episode_sketch

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 1060px; color: #222; }
h1 { border-bottom: 2px solid #4e79a7; padding-bottom: 0.2em; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: right; padding: 4px 10px;
         border-bottom: 1px solid #e5e5e5; }
th { background: #f1f4f8; }
td.key, th.key { text-align: left; font-family: monospace;
                 font-size: 12px; max-width: 330px; overflow: hidden;
                 text-overflow: ellipsis; white-space: nowrap; }
details { margin: 0.8em 0; border: 1px solid #dddddd; border-radius: 4px;
          padding: 0.4em 0.9em; }
summary { cursor: pointer; font-weight: bold; font-size: 14px; }
.occ-always { color: #c62828; } .occ-sometimes { color: #ef6c00; }
.occ-once { color: #b8860b; } .occ-never { color: #2e7d32; }
.meta { color: #666; font-size: 13px; }
"""


def _occurrence_cell(pattern: Pattern, threshold_ms: float) -> str:
    occurrence = classify_pattern(pattern, threshold_ms)
    return (
        f"<span class='occ-{occurrence.value}'>{occurrence.value}</span>"
    )


def _pattern_label(pattern: Pattern) -> str:
    children = pattern.representative.root.children
    if not children:
        return "(gc only)"
    return children[0].symbol


def _pattern_section(
    index: int,
    pattern: Pattern,
    threshold_ms: float,
    sketch_limit: int,
    episode_rows: int,
) -> str:
    parts: List[str] = []
    parts.append("<details>")
    parts.append(
        f"<summary>#{index} — {escape(_pattern_label(pattern))} "
        f"({pattern.count} episodes, "
        f"max {pattern.max_lag_ms:.0f} ms)</summary>"
    )
    parts.append(
        f"<p class='meta'>min {pattern.min_lag_ms:.1f} / "
        f"avg {pattern.avg_lag_ms:.1f} / max {pattern.max_lag_ms:.1f} / "
        f"total {pattern.total_lag_ms:.1f} ms — "
        f"{pattern.perceptible_count(threshold_ms)} perceptible, "
        f"{pattern.gc_episode_count()} with GC — "
        f"{_occurrence_cell(pattern, threshold_ms)}</p>"
    )

    drilldown = format_drilldown(drill_down_pattern(pattern, top=5))
    parts.append(
        f"<pre class='meta'>{escape(drilldown)}</pre>"
    )

    parts.append("<table><tr><th>episode</th><th>lag [ms]</th>"
                 "<th>perceptible</th></tr>")
    for episode in pattern.episodes[:episode_rows]:
        flag = "yes" if episode.is_perceptible(threshold_ms) else ""
        parts.append(
            f"<tr><td>{episode.index}</td>"
            f"<td>{episode.duration_ms:.1f}</td><td>{flag}</td></tr>"
        )
    parts.append("</table>")
    if pattern.count > episode_rows:
        parts.append(
            f"<p class='meta'>... and {pattern.count - episode_rows} "
            f"more episodes</p>"
        )

    # Sketches: the first episode (what the paper's browser shows) and
    # the slowest one, when different.
    to_sketch = [pattern.representative]
    worst = max(pattern.episodes, key=lambda ep: ep.duration_ns)
    if worst is not pattern.representative:
        to_sketch.append(worst)
    for episode in to_sketch[:sketch_limit]:
        sketch = render_episode_sketch(
            episode,
            width=980,
            title=(
                f"episode #{episode.index} — {episode.duration_ms:.0f} ms"
            ),
        )
        parts.append(sketch.to_string())
    parts.append("</details>")
    return "\n".join(parts)


def render_html_browser(
    analyzer: LagAlyzer,
    max_patterns: int = 25,
    perceptible_only: bool = True,
    sketches_per_pattern: int = 2,
    episode_rows: int = 12,
    title: Optional[str] = None,
) -> str:
    """Render the pattern browser for ``analyzer`` as one HTML page.

    Args:
        max_patterns: sections rendered (worst total lag first).
        perceptible_only: apply the browser's elision filter.
        sketches_per_pattern: inline sketches per pattern (first + worst).
        episode_rows: rows in each pattern's episode list.
    """
    threshold = analyzer.config.perceptible_threshold_ms
    table = analyzer.pattern_table()
    shown = table.perceptible_only(threshold) if perceptible_only else table
    rows = shown.rows()[:max_patterns]

    parts: List[str] = []
    parts.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    heading = title or f"Pattern browser — {analyzer.application}"
    parts.append(f"<title>{escape(heading)}</title>")
    parts.append(f"<style>{_STYLE}</style></head><body>")
    parts.append(f"<h1>{escape(heading)}</h1>")
    parts.append(
        f"<p class='meta'>{len(analyzer.traces)} session(s), "
        f"{len(analyzer.episodes)} episodes, "
        f"{table.distinct_count} patterns "
        f"({len(shown.rows())} shown after "
        f"{'perceptible-only filtering' if perceptible_only else 'no filtering'}"
        f"), threshold {threshold:.0f} ms.</p>"
    )

    parts.append("<table><tr><th>#</th><th>episodes</th><th>min</th>"
                 "<th>avg</th><th>max</th><th>total</th><th>perc</th>"
                 "<th>class</th><th class='key'>structure</th></tr>")
    for index, pattern in enumerate(rows, start=1):
        parts.append(
            f"<tr><td>{index}</td><td>{pattern.count}</td>"
            f"<td>{pattern.min_lag_ms:.1f}</td>"
            f"<td>{pattern.avg_lag_ms:.1f}</td>"
            f"<td>{pattern.max_lag_ms:.1f}</td>"
            f"<td>{pattern.total_lag_ms:.1f}</td>"
            f"<td>{pattern.perceptible_count(threshold)}</td>"
            f"<td>{_occurrence_cell(pattern, threshold)}</td>"
            f"<td class='key'>{escape(_pattern_label(pattern))}</td></tr>"
        )
    parts.append("</table>")

    for index, pattern in enumerate(rows, start=1):
        parts.append(
            _pattern_section(
                index, pattern, threshold, sketches_per_pattern,
                episode_rows,
            )
        )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_browser(
    analyzer: LagAlyzer,
    path: Union[str, Path],
    **kwargs,
) -> Path:
    """Write :func:`render_html_browser` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_browser(analyzer, **kwargs), encoding="utf-8")
    return path
