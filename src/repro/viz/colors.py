"""Color schemes for sketches and charts.

LagAlyzer "renders each interval type in a different color" and colors
sample dots by thread state; the characterization charts need a stable
categorical palette for the 14 applications and for the stacked-bar
category sets.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.intervals import IntervalKind
from repro.core.samples import ThreadState

#: Fill colors per interval type (the episode-sketch legend). The
#: workload-family kinds reuse shades of their gui analogues: request
#: and stage root episodes like dispatch, iowait blocks like async.
INTERVAL_COLORS: Dict[IntervalKind, str] = {
    IntervalKind.DISPATCH: "#9aa7b5",
    IntervalKind.LISTENER: "#4e79a7",
    IntervalKind.PAINT: "#59a14f",
    IntervalKind.NATIVE: "#e15759",
    IntervalKind.ASYNC: "#b07aa1",
    IntervalKind.GC: "#edc948",
    IntervalKind.REQUEST: "#7d8da0",
    IntervalKind.IOWAIT: "#8c6d9e",
    IntervalKind.STAGE: "#6f8f9e",
}

#: Sample-dot colors per thread state (runnable should read as "fine").
STATE_COLORS: Dict[ThreadState, str] = {
    ThreadState.RUNNABLE: "#2e7d32",
    ThreadState.BLOCKED: "#c62828",
    ThreadState.WAITING: "#ef6c00",
    ThreadState.SLEEPING: "#6a1b9a",
}

#: Stacked-bar colors for the trigger chart (Figure 5).
TRIGGER_COLORS: Dict[str, str] = {
    "input": "#4e79a7",
    "output": "#59a14f",
    "asynchronous": "#b07aa1",
    "unspecified": "#bab0ac",
}

#: Stacked-bar colors for the occurrence chart (Figure 4).
OCCURRENCE_COLORS: Dict[str, str] = {
    "always": "#c62828",
    "sometimes": "#ef6c00",
    "once": "#edc948",
    "never": "#59a14f",
}

#: Stacked-bar colors for the location chart (Figure 6).
LOCATION_COLORS: Dict[str, str] = {
    "Application": "#4e79a7",
    "RT Library": "#9ecae1",
    "GC": "#edc948",
    "Native": "#e15759",
}

#: Stacked-bar colors for the thread-state chart (Figure 8).
THREADSTATE_COLORS: Dict[str, str] = {
    "blocked": "#c62828",
    "waiting": "#ef6c00",
    "sleeping": "#6a1b9a",
    "runnable": "#d9e6d9",
}

#: Categorical palette for per-application lines (Figure 3).
APP_PALETTE: Sequence[str] = (
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
    "#1f77b4", "#2ca02c", "#d62728", "#9467bd",
)


def color_for_app(index: int) -> str:
    """A stable color for the app at ``index`` (Table II order)."""
    return APP_PALETTE[index % len(APP_PALETTE)]
