"""A minimal SVG document builder.

matplotlib is not available offline, so every chart and sketch in this
package is generated as plain SVG text. The builder covers exactly the
elements the renderers need, escapes text safely, and produces stable
output (attribute order is fixed) so renders can be golden-tested.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape, quoteattr


def _fmt(value: Union[int, float]) -> str:
    """Format a coordinate: trim trailing zeros, keep output stable."""
    if isinstance(value, int):
        return str(value)
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


class SvgDocument:
    """An append-only SVG scene graph with a fixed viewport."""

    def __init__(
        self, width: int, height: int, background: Optional[str] = "#ffffff"
    ) -> None:
        self.width = width
        self.height = height
        self._parts: List[str] = []
        if background is not None:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "#000000",
        stroke: str = "none",
        stroke_width: float = 1.0,
        title: Optional[str] = None,
        rx: float = 0.0,
    ) -> None:
        """Add a rectangle; ``title`` becomes a hover tooltip."""
        attrs = (
            f'x={quoteattr(_fmt(x))} y={quoteattr(_fmt(y))} '
            f'width={quoteattr(_fmt(max(width, 0.0)))} '
            f'height={quoteattr(_fmt(max(height, 0.0)))} '
            f'fill={quoteattr(fill)} stroke={quoteattr(stroke)} '
            f'stroke-width={quoteattr(_fmt(stroke_width))}'
        )
        if rx:
            attrs += f" rx={quoteattr(_fmt(rx))}"
        if title is None:
            self._parts.append(f"<rect {attrs}/>")
        else:
            self._parts.append(
                f"<rect {attrs}><title>{escape(title)}</title></rect>"
            )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
        dash: Optional[str] = None,
    ) -> None:
        attrs = (
            f'x1={quoteattr(_fmt(x1))} y1={quoteattr(_fmt(y1))} '
            f'x2={quoteattr(_fmt(x2))} y2={quoteattr(_fmt(y2))} '
            f'stroke={quoteattr(stroke)} '
            f'stroke-width={quoteattr(_fmt(stroke_width))}'
        )
        if dash:
            attrs += f" stroke-dasharray={quoteattr(dash)}"
        self._parts.append(f"<line {attrs}/>")

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "#000000",
        title: Optional[str] = None,
    ) -> None:
        attrs = (
            f'cx={quoteattr(_fmt(cx))} cy={quoteattr(_fmt(cy))} '
            f'r={quoteattr(_fmt(r))} fill={quoteattr(fill)}'
        )
        if title is None:
            self._parts.append(f"<circle {attrs}/>")
        else:
            self._parts.append(
                f"<circle {attrs}><title>{escape(title)}</title></circle>"
            )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str = "#000000",
        stroke_width: float = 1.5,
        fill: str = "none",
    ) -> None:
        path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._parts.append(
            f"<polyline points={quoteattr(path)} fill={quoteattr(fill)} "
            f"stroke={quoteattr(stroke)} "
            f"stroke-width={quoteattr(_fmt(stroke_width))}/>"
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 11,
        fill: str = "#222222",
        anchor: str = "start",
        family: str = "Helvetica, Arial, sans-serif",
        rotate: Optional[float] = None,
    ) -> None:
        attrs = (
            f'x={quoteattr(_fmt(x))} y={quoteattr(_fmt(y))} '
            f'font-size={quoteattr(str(size))} fill={quoteattr(fill)} '
            f'text-anchor={quoteattr(anchor)} '
            f'font-family={quoteattr(family)}'
        )
        if rotate is not None:
            attrs += (
                f' transform={quoteattr(f"rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})")}'
            )
        self._parts.append(f"<text {attrs}>{escape(content)}</text>")

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_string(self) -> str:
        """The complete SVG document as text."""
        header = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">'
        )
        return "\n".join([header] + self._parts + ["</svg>"])

    def save(self, path: Union[str, Path]) -> Path:
        """Write the document to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string(), encoding="utf-8")
        return path

    def __len__(self) -> int:
        """Number of elements added (background included)."""
        return len(self._parts)
