"""The Pattern Browser, rendered as text.

Section II-E: LagAlyzer presents a table of patterns with, for each,
the number of episodes and the minimum, average, maximum, and total lag;
the table can be filtered to patterns with perceptible episodes, and
selecting a pattern reveals its episode list and a sketch of its first
episode. This module renders the table (and an episode list) for
terminals and reports.
"""

from __future__ import annotations

from typing import List

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS
from repro.core.occurrence import classify_pattern
from repro.core.patterns import Pattern, PatternTable

_HEADER = (
    f"{'#':>4s} {'Episodes':>9s} {'Min[ms]':>9s} {'Avg[ms]':>9s} "
    f"{'Max[ms]':>9s} {'Total[ms]':>11s} {'Perc':>5s} {'Class':<10s} "
    f"Structure"
)


def _describe_key(pattern: Pattern, max_length: int = 48) -> str:
    """A compact human-readable summary of a pattern's structure."""
    episode = pattern.representative
    parts: List[str] = []
    for child in episode.root.children:
        symbol = child.symbol.rsplit(".", 2)
        parts.append(
            f"{child.kind.value}:{'.'.join(symbol[-2:])}"
        )
        if len(parts) >= 3:
            break
    text = " ".join(parts) if parts else "(gc only)"
    if len(text) > max_length:
        text = text[: max_length - 1] + "…"
    return text


def render_pattern_browser(
    table: PatternTable,
    limit: int = 20,
    perceptible_only: bool = False,
    threshold_ms: float = DEFAULT_PERCEPTIBLE_MS,
) -> str:
    """Render the pattern table, worst total lag first.

    Args:
        table: the mined patterns.
        limit: show at most this many rows.
        perceptible_only: apply the browser's elision filter.
        threshold_ms: perceptibility threshold for the "Perc" column.
    """
    shown = (
        table.perceptible_only(threshold_ms) if perceptible_only else table
    )
    lines = [_HEADER, "-" * len(_HEADER)]
    for index, pattern in enumerate(shown.rows()[:limit], start=1):
        occurrence = classify_pattern(pattern, threshold_ms)
        lines.append(
            f"{index:>4d} {pattern.count:>9d} {pattern.min_lag_ms:>9.1f} "
            f"{pattern.avg_lag_ms:>9.1f} {pattern.max_lag_ms:>9.1f} "
            f"{pattern.total_lag_ms:>11.1f} "
            f"{pattern.perceptible_count(threshold_ms):>5d} "
            f"{occurrence.value:<10s} {_describe_key(pattern)}"
        )
    remaining = len(shown.rows()) - limit
    if remaining > 0:
        lines.append(f"... and {remaining} more patterns")
    return "\n".join(lines)


def render_episode_list(
    pattern: Pattern, limit: int = 15, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
) -> str:
    """The episode list revealed when a pattern is selected."""
    lines = [
        f"Pattern with {pattern.count} episodes "
        f"(perceptible: {pattern.perceptible_count(threshold_ms)})",
        f"{'Episode':>8s} {'Lag[ms]':>9s} {'Perceptible':>12s}",
    ]
    for episode in pattern.episodes[:limit]:
        perceptible = "yes" if episode.is_perceptible(threshold_ms) else ""
        lines.append(
            f"{episode.index:>8d} {episode.duration_ms:>9.1f} "
            f"{perceptible:>12s}"
        )
    remaining = pattern.count - limit
    if remaining > 0:
        lines.append(f"... and {remaining} more episodes")
    return "\n".join(lines)
