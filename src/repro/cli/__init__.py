"""The ``lagalyzer`` command-line interface.

One module per command group (``repro.cli.trace``, ``.study``,
``.engine``, ``.obs``; shared argument helpers in ``._shared``), all
registered on one parser here. Subcommands:

- ``simulate``  — run one simulated session, write a LiLa trace file;
- ``analyze``   — load trace file(s), print stats and the pattern browser;
- ``sketch``    — render an episode sketch SVG from a trace;
- ``browse``    — write an HTML pattern browser with inline sketches;
- ``timeline``  — render a whole-session timeline SVG;
- ``lint``      — check trace files for anomalies a profiler can cause;
- ``export``    — write analysis results as JSON or the patterns as CSV;
- ``compare``   — diff the pattern tables of two trace sets
  (regression hunting);
- ``study``     — run the full characterization study, write Table III,
  all figure SVGs, and EXPERIMENTS.md (``--workers`` fans applications
  out across processes; results are cached on disk; ``--faults
  plan.json`` runs the study under a deterministic fault-injection
  plan);
- ``engine``    — inspect and manage the analysis engine
  (``engine cache stats`` / ``engine cache clear`` / ``engine faults
  demo``);
- ``obs``       — inspect and export the pipeline's own observability
  bundles written by ``study --obs`` (``obs report`` / ``obs export
  --format chrome|jsonl|prom`` / ``obs timeline``);
- ``ingest``    — live trace ingestion (``ingest serve`` runs the
  collector daemon, ``ingest replay`` replays trace files as
  concurrent client sessions, ``ingest tail`` follows a spool with the
  rolling incremental analysis).

Invoking with no arguments (``python -m repro``) prints this help and
exits 0.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.cli import engine as engine_commands
from repro.cli import ingest as ingest_commands
from repro.cli import obs as obs_commands
from repro.cli import study as study_commands
from repro.cli import trace as trace_commands

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lagalyzer",
        description="Latency profile analysis and visualization "
        "(ISPASS 2010 reproduction).",
    )
    sub = parser.add_subparsers(dest="command")
    trace_commands.register(sub)
    study_commands.register(sub)
    engine_commands.register(sub)
    obs_commands.register(sub)
    ingest_commands.register(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    return args.func(args)
