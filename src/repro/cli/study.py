"""The ``study`` command: run the characterization study, query the warehouse.

``study`` (no subcommand) runs the full study; ``study query
{runs|aggregate|top|series|regressions}`` reads a study warehouse built
with ``study --warehouse`` or ``ingest serve --study-warehouse``.

Exit-code contract for ``study query``: 0 on success, 1 when
``regressions`` finds a regression, 2 when the warehouse file does not
exist.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli._shared import (
    add_cache_dir,
    add_faults,
    add_obs,
    add_output,
    add_workers,
)

#: ``study query`` against a warehouse file that does not exist.
EXIT_NO_WAREHOUSE = 2

#: ``study query regressions`` found at least one regression.
EXIT_REGRESSED = 1

#: Default warehouse file for ``study query`` / ``study --warehouse``.
DEFAULT_WAREHOUSE = "study-warehouse.sqlite"


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.study.report import render_figures, write_experiments_md
    from repro.study.runner import (
        APPLICATION_NAMES,
        StudyConfig,
        run_study,
    )
    from repro.study.tables import format_table3

    applications = tuple(APPLICATION_NAMES)
    if args.apps:
        unknown = [name for name in args.apps if name not in APPLICATION_NAMES]
        if unknown:
            print(
                f"unknown application(s): {', '.join(unknown)} "
                f"(choose from {', '.join(APPLICATION_NAMES)})",
                file=sys.stderr,
            )
            return 1
        applications = tuple(args.apps)
    config = StudyConfig(
        seed=args.seed,
        sessions=args.sessions,
        scale=args.scale,
        applications=applications,
    )
    obs = None
    if args.obs is not None or args.profile:
        from repro.obs import Observer

        obs = Observer(profile=args.profile)
    injector = None
    if args.faults is not None:
        from repro.core.errors import LagAlyzerError
        from repro.faults import FaultInjector, FaultPlan

        try:
            plan = FaultPlan.load(args.faults)
        except (OSError, LagAlyzerError) as error:
            print(f"error: cannot load fault plan: {error}", file=sys.stderr)
            return 1
        injector = FaultInjector(plan)
        print(
            f"fault injection: {len(plan.rules)} rule(s), "
            f"seed {plan.seed} ({args.faults})"
        )
    print(
        f"running study: {len(config.applications)} applications x "
        f"{config.sessions} sessions (scale {config.scale}, "
        f"workers {args.workers}) ..."
    )
    result = run_study(
        config,
        progress=True,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        obs=obs,
        faults=injector,
        warehouse=args.warehouse,
        warehouse_run_id=args.warehouse_run_id,
    )
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    table3 = format_table3(
        [app.mean_stats for app in result.ordered()], result.mean_stats
    )
    (outdir / "table3.txt").write_text(table3 + "\n", encoding="utf-8")
    figure_paths = render_figures(result, outdir)
    report_path = write_experiments_md(result, outdir / "EXPERIMENTS.md")
    from repro.study.export import write_study_csvs
    from repro.study.html import write_html_report

    write_study_csvs(result, outdir / "csv")
    html_path = write_html_report(result, outdir / "report.html")
    print(table3)
    print(
        f"wrote {len(figure_paths)} figures, {report_path}, and "
        f"{html_path} to {outdir}/"
    )
    if injector is not None:
        quarantined = result.quarantined
        total = sum(len(entries) for entries in quarantined.values())
        print(
            f"fault injection: {len(injector.events)} fault(s) fired in "
            f"this process, {total} session(s) quarantined"
        )
        for entries in quarantined.values():
            for entry in entries:
                print(f"  quarantined {entry.describe()}")
    if obs is not None:
        if args.obs is not None:
            obs_dir = Path(args.obs)
            obs.save(obs_dir)
            print(f"wrote observability bundle to {obs_dir}/")
        if args.profile:
            report = obs.profiler.format_report(top=5)
            if report:
                print(report)
        print(obs.summary_line())
    return 0


def _cmd_study_entry(args: argparse.Namespace) -> int:
    """Dispatch ``study`` vs ``study query ...``.

    The query subcommands bind their handler to ``query_func`` (not
    ``func``) because argparse applies the parent parser's ``func``
    default before a subparser runs, so a child ``func`` default would
    never take effect.
    """
    query_func = getattr(args, "query_func", None)
    if query_func is not None:
        return query_func(args)
    return _cmd_study(args)


def _open_warehouse(args: argparse.Namespace):
    """The warehouse behind ``args.warehouse``, or ``None`` (missing)."""
    from repro.warehouse import StudyWarehouse

    path = Path(args.warehouse)
    if not path.exists():
        print(
            f"error: no study warehouse at {path} "
            f"(build one with `study --warehouse` or "
            f"`ingest serve --study-warehouse`)",
            file=sys.stderr,
        )
        return None
    return StudyWarehouse(path)


def _cmd_query_runs(args: argparse.Namespace) -> int:
    store = _open_warehouse(args)
    if store is None:
        return EXIT_NO_WAREHOUSE
    records = store.runs()
    if args.json:
        print(json.dumps([r.as_dict() for r in records], indent=2))
        return 0
    if not records:
        print("no runs recorded")
        return 0
    print(f"{'RUN':<28s} {'SOURCE':<8s} {'SESSIONS':>8s}  LABEL")
    for record in records:
        print(
            f"{record.run_id:<28s} {record.source:<8s} "
            f"{record.sessions:>8d}  {record.label}"
        )
    return 0


def _cmd_query_aggregate(args: argparse.Namespace) -> int:
    store = _open_warehouse(args)
    if store is None:
        return EXIT_NO_WAREHOUSE
    rows = store.aggregate(
        apps=args.apps, run_ids=args.runs, since_ts=args.since
    )
    if args.json:
        print(json.dumps([r.as_dict() for r in rows], indent=2))
        return 0
    if not rows:
        print("no sessions match")
        return 0
    print(
        f"{'APP':<16s} {'SESSIONS':>8s} {'TRACED':>8s} "
        f"{'PERCEPT':>8s} {'RATE':>7s} {'LONG/MIN':>9s}"
    )
    for row in rows:
        print(
            f"{row.application:<16s} {row.sessions:>8d} "
            f"{row.traced_episodes:>8d} {row.perceptible_episodes:>8d} "
            f"{row.perceptible_rate:>7.3f} {row.mean_long_per_min:>9.2f}"
        )
    return 0


def _cmd_query_top(args: argparse.Namespace) -> int:
    store = _open_warehouse(args)
    if store is None:
        return EXIT_NO_WAREHOUSE
    rows = store.top_patterns(
        n=args.limit, metric=args.analyses, apps=args.apps, run_ids=args.runs
    )
    if args.json:
        print(json.dumps([r.as_dict() for r in rows], indent=2))
        return 0
    if not rows:
        print("no patterns match")
        return 0
    print(
        f"{'APP':<16s} {'OCCUR':>6s} {'PERCEPT':>8s} {'SESSIONS':>8s}  "
        f"PATTERN"
    )
    for row in rows:
        print(
            f"{row.application:<16s} {row.occurrences:>6d} "
            f"{row.perceptible:>8d} {row.sessions:>8d}  {row.pattern_key}"
        )
    return 0


def _cmd_query_series(args: argparse.Namespace) -> int:
    store = _open_warehouse(args)
    if store is None:
        return EXIT_NO_WAREHOUSE
    points = store.series(
        metric=args.metric,
        bucket=args.bucket,
        apps=args.apps,
        run_ids=args.runs,
        since_ts=args.since,
    )
    if args.json:
        print(json.dumps([p.as_dict() for p in points], indent=2))
        return 0
    if not points:
        print("no sessions match")
        return 0
    print(f"{'APP':<16s} {'BUCKET':>12s} {'SESSIONS':>8s} {'VALUE':>10s}")
    for point in points:
        print(
            f"{point.application:<16s} {point.bucket_ts:>12.0f} "
            f"{point.sessions:>8d} {point.value:>10.4f}"
        )
    return 0


def _cmd_query_regressions(args: argparse.Namespace) -> int:
    store = _open_warehouse(args)
    if store is None:
        return EXIT_NO_WAREHOUSE
    report = store.regression(
        baseline_runs=args.baseline,
        candidate_runs=args.candidate,
        metric=args.metric,
        min_delta=args.min_delta,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return EXIT_REGRESSED if report.regressed else 0
    print(
        f"{args.metric}: baseline {', '.join(args.baseline)} vs "
        f"candidate {', '.join(args.candidate)} "
        f"(min delta {args.min_delta})"
    )
    print(
        f"{'APP':<16s} {'BASELINE':>10s} {'CANDIDATE':>10s} "
        f"{'DELTA':>10s}  VERDICT"
    )
    for entry in report.entries:
        verdict = "REGRESSED" if entry.regressed else "ok"
        print(
            f"{entry.application:<16s} {entry.baseline_value:>10.4f} "
            f"{entry.candidate_value:>10.4f} {entry.delta:>+10.4f}  "
            f"{verdict}"
        )
    if report.regressed:
        count = len(report.regressions)
        print(f"{count} application(s) regressed")
        return EXIT_REGRESSED
    print("no regressions")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    store = _open_warehouse(args)
    if store is None:
        return EXIT_NO_WAREHOUSE
    report = store.diff(
        args.run_a,
        args.run_b,
        apps=args.apps,
        perceptible_only=args.perceptible_only,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "run_a": report.run_a,
                    "run_b": report.run_b,
                    "total_delta_ns": report.total_delta_ns,
                    "deltas": [
                        {
                            "label": d.label,
                            "delta_ns": d.delta_ns,
                            "a_total_ns": d.a_total_ns,
                            "b_total_ns": d.b_total_ns,
                            "a_episodes": d.a_episodes,
                            "b_episodes": d.b_episodes,
                        }
                        for d in report.deltas[: args.limit]
                    ],
                },
                indent=2,
            )
        )
        return 0
    if not report.deltas:
        print(f"no cause rows for {args.run_a} or {args.run_b}")
        return 0
    sign = "+" if report.total_delta_ns >= 0 else ""
    print(
        f"{report.run_a} -> {report.run_b}: "
        f"{sign}{report.total_delta_ns / 1e6:.1f} ms in-episode self time"
    )
    print(f"{'DELTA[ms]':>10s} {'A[ms]':>9s} {'B[ms]':>9s}  CAUSE")
    for delta in report.deltas[: args.limit]:
        print(
            f"{delta.delta_ns / 1e6:>+10.1f} "
            f"{delta.a_total_ns / 1e6:>9.1f} "
            f"{delta.b_total_ns / 1e6:>9.1f}  {delta.label}"
        )
    return 0


def _add_query_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--warehouse", default=DEFAULT_WAREHOUSE, metavar="FILE",
        help=f"study warehouse file (default: {DEFAULT_WAREHOUSE})",
    )
    parser.add_argument("--apps", nargs="+", default=None, metavar="APP",
                        help="restrict to these applications")
    parser.add_argument("--runs", nargs="+", default=None, metavar="RUN",
                        help="restrict to these run ids")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of a table")


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``study`` subcommand (run + warehouse queries)."""
    p_st = sub.add_parser(
        "study",
        help="run the full characterization study / query the "
        "study warehouse",
    )
    p_st.add_argument("--seed", type=int, default=20100401)
    p_st.add_argument("--sessions", type=int, default=4)
    p_st.add_argument("--scale", type=float, default=1.0)
    add_output(p_st, "study-output")
    add_workers(p_st, help="processes to fan applications out across "
                "(0 = one per CPU)")
    add_cache_dir(p_st)
    p_st.add_argument("--no-cache", action="store_true",
                      help="recompute everything, bypassing the cache")
    p_st.add_argument("--apps", nargs="+", default=None, metavar="APP",
                      help="restrict the study to these applications "
                      "(default: all of Table II)")
    add_obs(p_st)
    p_st.add_argument("--profile", action="store_true",
                      help="profile analysis map calls with cProfile "
                      "and report the top hotspots")
    add_faults(p_st)
    p_st.add_argument("--warehouse", default=None, metavar="FILE",
                      help="compact this run's results into a study "
                      "warehouse file after the study")
    p_st.add_argument("--warehouse-run-id", default=None, metavar="RUN",
                      help="run id warehouse rows are filed under "
                      "(default: study-<seed>-<config-fp>)")
    p_st.set_defaults(func=_cmd_study_entry)

    # ``study query ...`` rides on an *optional* subparser level so the
    # bare ``study --apps ...`` invocation keeps working unchanged.
    study_sub = p_st.add_subparsers(dest="study_command", metavar="")

    p_q = study_sub.add_parser(
        "query", help="query a study warehouse built by --warehouse"
    )
    query_sub = p_q.add_subparsers(dest="query_command", required=True)

    p_runs = query_sub.add_parser("runs", help="list recorded runs")
    p_runs.add_argument(
        "--warehouse", default=DEFAULT_WAREHOUSE, metavar="FILE",
        help=f"study warehouse file (default: {DEFAULT_WAREHOUSE})",
    )
    p_runs.add_argument("--json", action="store_true",
                        help="emit JSON instead of a table")
    p_runs.set_defaults(query_func=_cmd_query_runs)

    p_agg = query_sub.add_parser(
        "aggregate", help="cross-session totals per application"
    )
    _add_query_common(p_agg)
    p_agg.add_argument("--since", type=float, default=None, metavar="TS",
                       help="only sessions ingested at/after this "
                       "unix timestamp")
    p_agg.set_defaults(query_func=_cmd_query_aggregate)

    p_top = query_sub.add_parser(
        "top", help="the N worst patterns fleet-wide"
    )
    _add_query_common(p_top)
    p_top.add_argument(
        "--analyses", default="perceptible_lag",
        choices=("perceptible_lag", "occurrences"),
        help="ranking metric (default: perceptible_lag)",
    )
    p_top.add_argument("-n", "--limit", type=int, default=10,
                       help="patterns to list (default: 10)")
    p_top.set_defaults(query_func=_cmd_query_top)

    p_ser = query_sub.add_parser(
        "series", help="per-app time series over ingest time"
    )
    _add_query_common(p_ser)
    p_ser.add_argument("--metric", default="perceptible_rate",
                       help="series metric (default: perceptible_rate)")
    p_ser.add_argument("--bucket", default="hour",
                       choices=("minute", "hour", "day"),
                       help="bucket width (default: hour)")
    p_ser.add_argument("--since", type=float, default=None, metavar="TS",
                       help="only sessions ingested at/after this "
                       "unix timestamp")
    p_ser.set_defaults(query_func=_cmd_query_series)

    p_reg = query_sub.add_parser(
        "regressions", help="before/after diff between two run sets"
    )
    _add_query_common(p_reg)
    p_reg.add_argument("--baseline", nargs="+", required=True,
                       metavar="RUN", help="baseline run id(s)")
    p_reg.add_argument("--candidate", nargs="+", required=True,
                       metavar="RUN", help="candidate run id(s)")
    p_reg.add_argument("--metric", default="perceptible_rate",
                       help="comparison metric (default: "
                       "perceptible_rate)")
    p_reg.add_argument("--min-delta", type=float, default=0.0,
                       help="regression threshold on the metric delta "
                       "(default: 0.0)")
    p_reg.set_defaults(query_func=_cmd_query_regressions)

    p_diff = study_sub.add_parser(
        "diff",
        help="attribute the latency delta between two runs to causes",
    )
    p_diff.add_argument("run_a", metavar="RUN_A", help="baseline run id")
    p_diff.add_argument("run_b", metavar="RUN_B", help="candidate run id")
    p_diff.add_argument(
        "--warehouse", default=DEFAULT_WAREHOUSE, metavar="FILE",
        help=f"study warehouse file (default: {DEFAULT_WAREHOUSE})",
    )
    p_diff.add_argument("--apps", nargs="+", default=None, metavar="APP",
                        help="restrict to these applications")
    p_diff.add_argument("--perceptible-only", action="store_true",
                        help="diff perceptible-episode self time only")
    p_diff.add_argument("-n", "--limit", type=int, default=15,
                        help="causes to list (default: 15)")
    p_diff.add_argument("--json", action="store_true",
                        help="emit JSON instead of a table")
    p_diff.set_defaults(query_func=_cmd_diff)
