"""The ``study`` command: the full characterization study."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cli._shared import (
    add_cache_dir,
    add_faults,
    add_obs,
    add_output,
    add_workers,
)


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.study.report import render_figures, write_experiments_md
    from repro.study.runner import (
        APPLICATION_NAMES,
        StudyConfig,
        run_study,
    )
    from repro.study.tables import format_table3

    applications = tuple(APPLICATION_NAMES)
    if args.apps:
        unknown = [name for name in args.apps if name not in APPLICATION_NAMES]
        if unknown:
            print(
                f"unknown application(s): {', '.join(unknown)} "
                f"(choose from {', '.join(APPLICATION_NAMES)})",
                file=sys.stderr,
            )
            return 1
        applications = tuple(args.apps)
    config = StudyConfig(
        seed=args.seed,
        sessions=args.sessions,
        scale=args.scale,
        applications=applications,
    )
    obs = None
    if args.obs is not None or args.profile:
        from repro.obs import Observer

        obs = Observer(profile=args.profile)
    injector = None
    if args.faults is not None:
        from repro.core.errors import LagAlyzerError
        from repro.faults import FaultInjector, FaultPlan

        try:
            plan = FaultPlan.load(args.faults)
        except (OSError, LagAlyzerError) as error:
            print(f"error: cannot load fault plan: {error}", file=sys.stderr)
            return 1
        injector = FaultInjector(plan)
        print(
            f"fault injection: {len(plan.rules)} rule(s), "
            f"seed {plan.seed} ({args.faults})"
        )
    print(
        f"running study: {len(config.applications)} applications x "
        f"{config.sessions} sessions (scale {config.scale}, "
        f"workers {args.workers}) ..."
    )
    result = run_study(
        config,
        progress=True,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        obs=obs,
        faults=injector,
    )
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    table3 = format_table3(
        [app.mean_stats for app in result.ordered()], result.mean_stats
    )
    (outdir / "table3.txt").write_text(table3 + "\n", encoding="utf-8")
    figure_paths = render_figures(result, outdir)
    report_path = write_experiments_md(result, outdir / "EXPERIMENTS.md")
    from repro.study.export import write_study_csvs
    from repro.study.html import write_html_report

    write_study_csvs(result, outdir / "csv")
    html_path = write_html_report(result, outdir / "report.html")
    print(table3)
    print(
        f"wrote {len(figure_paths)} figures, {report_path}, and "
        f"{html_path} to {outdir}/"
    )
    if injector is not None:
        quarantined = result.quarantined
        total = sum(len(entries) for entries in quarantined.values())
        print(
            f"fault injection: {len(injector.events)} fault(s) fired in "
            f"this process, {total} session(s) quarantined"
        )
        for entries in quarantined.values():
            for entry in entries:
                print(f"  quarantined {entry.describe()}")
    if obs is not None:
        if args.obs is not None:
            obs_dir = Path(args.obs)
            obs.save(obs_dir)
            print(f"wrote observability bundle to {obs_dir}/")
        if args.profile:
            report = obs.profiler.format_report(top=5)
            if report:
                print(report)
        print(obs.summary_line())
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``study`` subcommand."""
    p_st = sub.add_parser("study", help="run the full characterization study")
    p_st.add_argument("--seed", type=int, default=20100401)
    p_st.add_argument("--sessions", type=int, default=4)
    p_st.add_argument("--scale", type=float, default=1.0)
    add_output(p_st, "study-output")
    add_workers(p_st, help="processes to fan applications out across "
                "(0 = one per CPU)")
    add_cache_dir(p_st)
    p_st.add_argument("--no-cache", action="store_true",
                      help="recompute everything, bypassing the cache")
    p_st.add_argument("--apps", nargs="+", default=None, metavar="APP",
                      help="restrict the study to these applications "
                      "(default: all of Table II)")
    add_obs(p_st)
    p_st.add_argument("--profile", action="store_true",
                      help="profile analysis map calls with cProfile "
                      "and report the top hotspots")
    add_faults(p_st)
    p_st.set_defaults(func=_cmd_study)
