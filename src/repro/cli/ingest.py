"""The ``ingest`` command group: serve, replay, tail.

- ``ingest serve``  — run the collector daemon until interrupted;
- ``ingest replay`` — replay existing trace files through the framed
  protocol as concurrent client sessions (load generator and the
  easiest way to exercise a daemon end to end);
- ``ingest tail``   — incremental analysis of a (possibly still
  growing) spool file: rolling episode/pattern summaries without
  waiting for the session to end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.cli._shared import add_faults, add_obs, add_threshold, add_workers


def _load_injector(args: argparse.Namespace):
    """The ambient-installable injector for ``--faults``, or None."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.core.errors import LagAlyzerError
    from repro.faults import FaultInjector, FaultPlan

    try:
        plan = FaultPlan.load(args.faults)
    except (OSError, LagAlyzerError) as error:
        print(f"error: cannot load fault plan: {error}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"fault injection: {len(plan.rules)} rule(s), "
        f"seed {plan.seed} ({args.faults})"
    )
    return FaultInjector(plan)


def _make_observer(args: argparse.Namespace):
    if getattr(args, "obs", None) is None:
        return None
    from repro.obs import Observer

    return Observer()


def _finish_observer(obs, args: argparse.Namespace) -> None:
    if obs is None:
        return
    obs_dir = Path(args.obs)
    obs.save(obs_dir)
    print(f"wrote observability bundle to {obs_dir}/")
    print(obs.summary_line())


def _analysis_config(args: argparse.Namespace):
    from repro.core.analyzer import AnalysisConfig

    return AnalysisConfig(perceptible_threshold_ms=args.threshold)


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.faults import runtime as faults_runtime
    from repro.ingest.server import IngestServer
    from repro.obs import runtime as obs_runtime

    obs = _make_observer(args)
    injector = _load_injector(args)
    with obs_runtime.installed(obs), faults_runtime.installed(injector):
        server = IngestServer(
            spool_dir=args.spool_dir,
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            incremental=args.incremental,
            config=_analysis_config(args) if args.incremental else None,
        )
        server.start()
        host, port = server.address
        print(f"ingest daemon listening on {host}:{port} "
              f"(spools -> {args.spool_dir}/)")
        try:
            while True:
                time.sleep(args.summary_interval)
                if args.incremental:
                    for summary in server.rolling_summaries().values():
                        print(json.dumps(summary, sort_keys=True))
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
            stats = server.stats()
            print(json.dumps(stats, sort_keys=True))
    _finish_observer(obs, args)
    return 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


def _replay_one(args, address, index: int, path: Path) -> dict:
    from repro.ingest.client import TraceClient

    lines = path.read_text(encoding="utf-8").splitlines()
    session = f"{args.session_prefix}{index}"
    client = TraceClient(
        address,
        session=session,
        application=path.stem,
        batch_records=args.batch_records,
    )
    with client:
        client.extend(lines)
    return {
        "session": session,
        "trace": str(path),
        "records_sent": client.records_sent,
        "nacks": client.nacks_received,
        "retries": client.retries,
        "dropped_records": client.dropped_records,
    }


def _cmd_replay(args: argparse.Namespace) -> int:
    from concurrent.futures import ThreadPoolExecutor

    from repro.faults import runtime as faults_runtime
    from repro.lila.autodetect import expand_trace_paths
    from repro.obs import runtime as obs_runtime

    host, _, port = args.address.rpartition(":")
    if not host:
        print(f"error: --address must be HOST:PORT, got {args.address!r}",
              file=sys.stderr)
        return 1
    address = (host, int(port))
    paths = []
    for item in args.traces:
        paths.extend(expand_trace_paths(item))
    if not paths:
        print("error: no trace files matched", file=sys.stderr)
        return 1
    obs = _make_observer(args)
    injector = _load_injector(args)
    workers = args.workers if args.workers > 0 else len(paths)
    results = []
    with obs_runtime.installed(obs), faults_runtime.installed(injector):
        with ThreadPoolExecutor(max_workers=min(workers, len(paths))) as pool:
            futures = [
                pool.submit(_replay_one, args, address, index, Path(path))
                for index, path in enumerate(paths)
            ]
            for future in futures:
                results.append(future.result())
    for result in results:
        print(json.dumps(result, sort_keys=True))
    total = sum(r["records_sent"] for r in results)
    dropped = sum(r["dropped_records"] for r in results)
    print(f"replayed {len(results)} session(s): {total} records sent, "
          f"{dropped} dropped")
    _finish_observer(obs, args)
    return 0 if dropped == 0 else 1


# ----------------------------------------------------------------------
# tail
# ----------------------------------------------------------------------


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.core.errors import LagAlyzerError
    from repro.ingest.incremental import IncrementalSessionAnalyzer

    path = Path(args.spool)
    if not path.exists():
        print(f"error: no such spool: {path}", file=sys.stderr)
        return 1
    analyzer = IncrementalSessionAnalyzer(
        label=str(path), config=_analysis_config(args)
    )
    consumed = 0
    try:
        while True:
            text = path.read_text(encoding="utf-8")
            lines = text.splitlines()
            fresh = lines[consumed:]
            # A spool flush is line-atomic, but guard against reading
            # mid-write: an unterminated final line waits for the next
            # poll.
            if fresh and not text.endswith("\n"):
                fresh = fresh[:-1]
            if fresh:
                try:
                    analyzer.push_lines(fresh)
                except LagAlyzerError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                consumed += len(fresh)
                print(json.dumps(analyzer.rolling_summary(), sort_keys=True))
            if not args.follow:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if consumed == 0:
        print(json.dumps(analyzer.rolling_summary(), sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``ingest`` subcommand group."""
    p_in = sub.add_parser(
        "ingest", help="live trace ingestion (daemon, replay, tail)"
    )
    in_sub = p_in.add_subparsers(dest="ingest_command", required=True)

    p_sv = in_sub.add_parser("serve", help="run the collector daemon")
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=4271)
    p_sv.add_argument("--spool-dir", default="spools",
                      help="directory session spools are written to")
    p_sv.add_argument("--queue-limit", type=int, default=8,
                      help="unflushed batches per session before "
                      "backpressure nacks")
    p_sv.add_argument("--incremental", action="store_true",
                      help="run the rolling per-episode analysis and "
                      "print summaries")
    p_sv.add_argument("--summary-interval", type=float, default=5.0,
                      help="seconds between rolling-summary prints")
    add_threshold(p_sv)
    add_obs(p_sv)
    add_faults(p_sv)
    p_sv.set_defaults(func=_cmd_serve)

    p_rp = in_sub.add_parser(
        "replay", help="replay trace files as live client sessions"
    )
    p_rp.add_argument("traces", nargs="+",
                      help="trace files, directories, or glob patterns")
    p_rp.add_argument("--address", default="127.0.0.1:4271",
                      metavar="HOST:PORT", help="daemon to replay into")
    p_rp.add_argument("--session-prefix", default="replay-",
                      help="session ids become PREFIX0, PREFIX1, ...")
    p_rp.add_argument("--batch-records", type=int, default=256,
                      help="record lines per client batch")
    add_workers(p_rp, help="concurrent replay sessions "
                "(0 = all sessions at once)")
    add_obs(p_rp)
    add_faults(p_rp)
    p_rp.set_defaults(func=_cmd_replay)

    p_tl = in_sub.add_parser(
        "tail", help="rolling analysis of a (growing) spool file"
    )
    p_tl.add_argument("spool", help="spool .lila file to analyze")
    p_tl.add_argument("--follow", "-f", action="store_true",
                      help="keep polling for appended records")
    p_tl.add_argument("--interval", type=float, default=0.5,
                      help="poll interval with --follow (seconds)")
    add_threshold(p_tl)
    p_tl.set_defaults(func=_cmd_tail)
