"""The ``ingest`` command group: serve, replay, tail.

- ``ingest serve``  — run the collector daemon until interrupted;
- ``ingest replay`` — replay existing trace files through the framed
  protocol as concurrent client sessions (load generator and the
  easiest way to exercise a daemon end to end);
- ``ingest tail``   — incremental analysis of a (possibly still
  growing) spool file: rolling episode/pattern summaries without
  waiting for the session to end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.cli._shared import add_faults, add_obs, add_threshold, add_workers


def _load_injector(args: argparse.Namespace):
    """The ambient-installable injector for ``--faults``, or None."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.core.errors import LagAlyzerError
    from repro.faults import FaultInjector, FaultPlan

    try:
        plan = FaultPlan.load(args.faults)
    except (OSError, LagAlyzerError) as error:
        print(f"error: cannot load fault plan: {error}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"fault injection: {len(plan.rules)} rule(s), "
        f"seed {plan.seed} ({args.faults})"
    )
    return FaultInjector(plan)


def _make_observer(args: argparse.Namespace):
    if getattr(args, "obs", None) is None:
        return None
    from repro.obs import Observer

    return Observer()


def _finish_observer(obs, args: argparse.Namespace) -> None:
    if obs is None:
        return
    obs_dir = Path(args.obs)
    obs.save(obs_dir)
    print(f"wrote observability bundle to {obs_dir}/")
    print(obs.summary_line())


def _analysis_config(args: argparse.Namespace):
    from repro.core.analyzer import AnalysisConfig

    return AnalysisConfig(perceptible_threshold_ms=args.threshold)


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.errors import LagAlyzerError
    from repro.faults import runtime as faults_runtime
    from repro.ingest.server import IngestServer
    from repro.obs import runtime as obs_runtime

    obs = _make_observer(args)
    ambient = obs
    if ambient is None and (
        args.warehouse is not None or args.health_port is not None
    ):
        # Telemetry needs an observer even without --obs; this one is
        # never saved as a bundle.
        from repro.obs import Observer

        ambient = Observer()
    slo = None
    if args.slo is not None:
        from repro.obs.slo import SloPolicy

        try:
            slo = SloPolicy.load(args.slo)
        except LagAlyzerError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    injector = _load_injector(args)
    with obs_runtime.installed(ambient), faults_runtime.installed(injector):
        server = IngestServer(
            spool_dir=args.spool_dir,
            host=args.host,
            port=args.port,
            queue_limit=args.queue_limit,
            incremental=args.incremental,
            config=_analysis_config(args) if args.incremental else None,
            health_port=args.health_port,
            slo=slo,
            warehouse=args.warehouse,
            publish_interval_s=args.publish_interval,
            run_id=args.run_id,
            study_warehouse=args.study_warehouse,
        )
        server.start()
        host, port = server.address
        print(f"ingest daemon listening on {host}:{port} "
              f"(spools -> {args.spool_dir}/)")
        if server.health is not None:
            h_host, h_port = server.health.address
            print(f"health endpoints on http://{h_host}:{h_port} "
                  f"(/healthz /metrics /sessions)")
        if server.warehouse is not None:
            print(f"telemetry warehouse -> {server.warehouse.path} "
                  f"(run {server.run_id})")
        if server.study_warehouse is not None:
            print(f"study warehouse -> {server.study_warehouse.path} "
                  f"(run {server.run_id}, compacted on shutdown)")
        try:
            while True:
                time.sleep(args.summary_interval)
                if args.incremental:
                    for summary in server.rolling_summaries().values():
                        print(json.dumps(summary, sort_keys=True))
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
            stats = server.stats()
            print(json.dumps(stats, sort_keys=True))
    _finish_observer(obs, args)
    return 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


def _replay_one(args, address, index: int, path: Path) -> dict:
    from repro.ingest.client import TraceClient

    lines = path.read_text(encoding="utf-8").splitlines()
    session = f"{args.session_prefix}{index}"
    client = TraceClient(
        address,
        session=session,
        application=path.stem,
        batch_records=args.batch_records,
    )
    with client:
        client.extend(lines)
    return {
        "session": session,
        "trace": str(path),
        "records_sent": client.records_sent,
        "nacks": client.nacks_received,
        "retries": client.retries,
        "dropped_records": client.dropped_records,
    }


def _cmd_replay(args: argparse.Namespace) -> int:
    from concurrent.futures import ThreadPoolExecutor

    from repro.faults import runtime as faults_runtime
    from repro.lila.autodetect import expand_trace_paths
    from repro.obs import runtime as obs_runtime

    host, _, port = args.address.rpartition(":")
    if not host:
        print(f"error: --address must be HOST:PORT, got {args.address!r}",
              file=sys.stderr)
        return 1
    address = (host, int(port))
    paths = []
    for item in args.traces:
        paths.extend(expand_trace_paths(item))
    if not paths:
        print("error: no trace files matched", file=sys.stderr)
        return 1
    obs = _make_observer(args)
    ambient = obs
    if ambient is None and args.warehouse is not None:
        from repro.obs import Observer

        ambient = Observer()
    injector = _load_injector(args)
    workers = args.workers if args.workers > 0 else len(paths)
    results = []
    with obs_runtime.installed(ambient), faults_runtime.installed(injector):
        with ThreadPoolExecutor(max_workers=min(workers, len(paths))) as pool:
            futures = [
                pool.submit(_replay_one, args, address, index, Path(path))
                for index, path in enumerate(paths)
            ]
            for future in futures:
                results.append(future.result())
        if args.warehouse is not None:
            _publish_replay_telemetry(ambient, args)
    for result in results:
        print(json.dumps(result, sort_keys=True))
    total = sum(r["records_sent"] for r in results)
    dropped = sum(r["dropped_records"] for r in results)
    print(f"replayed {len(results)} session(s): {total} records sent, "
          f"{dropped} dropped")
    _finish_observer(obs, args)
    return 0 if dropped == 0 else 1


def _publish_replay_telemetry(obs, args: argparse.Namespace) -> None:
    """One-shot warehouse flush of a replay's client-side telemetry.

    This is where send-to-ack latency (``ingest.client.flush_ms``)
    enters the warehouse — it is measured by the sending side, so the
    daemon's own publisher never sees it.
    """
    import os

    from repro.obs.publisher import TelemetryPublisher
    from repro.obs.warehouse import Warehouse

    run_id = args.run_id or f"replay-{os.getpid()}"
    publisher = TelemetryPublisher(
        obs, Warehouse(args.warehouse), run_id, interval_s=3600.0
    )
    if publisher.publish_once():
        print(f"published replay telemetry -> {args.warehouse} "
              f"(run {run_id})")
    else:
        print(f"warning: could not publish telemetry to {args.warehouse}",
              file=sys.stderr)


# ----------------------------------------------------------------------
# tail
# ----------------------------------------------------------------------


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.core.errors import LagAlyzerError
    from repro.ingest.incremental import IncrementalSessionAnalyzer

    path = Path(args.spool)
    if not path.exists():
        print(f"error: no such spool: {path}", file=sys.stderr)
        return 1
    analyzer = IncrementalSessionAnalyzer(
        label=str(path), config=_analysis_config(args)
    )
    consumed = 0
    try:
        while True:
            text = path.read_text(encoding="utf-8")
            lines = text.splitlines()
            fresh = lines[consumed:]
            # A spool flush is line-atomic, but guard against reading
            # mid-write: an unterminated final line waits for the next
            # poll.
            if fresh and not text.endswith("\n"):
                fresh = fresh[:-1]
            if fresh:
                try:
                    analyzer.push_lines(fresh)
                except LagAlyzerError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                consumed += len(fresh)
                print(json.dumps(analyzer.rolling_summary(), sort_keys=True))
            if not args.follow:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if consumed == 0:
        print(json.dumps(analyzer.rolling_summary(), sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``ingest`` subcommand group."""
    p_in = sub.add_parser(
        "ingest", help="live trace ingestion (daemon, replay, tail)"
    )
    in_sub = p_in.add_subparsers(dest="ingest_command", required=True)

    p_sv = in_sub.add_parser("serve", help="run the collector daemon")
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=4271)
    p_sv.add_argument("--spool-dir", default="spools",
                      help="directory session spools are written to")
    p_sv.add_argument("--queue-limit", type=int, default=8,
                      help="unflushed batches per session before "
                      "backpressure nacks")
    p_sv.add_argument("--incremental", action="store_true",
                      help="run the rolling per-episode analysis and "
                      "print summaries")
    p_sv.add_argument("--summary-interval", type=float, default=5.0,
                      help="seconds between rolling-summary prints")
    p_sv.add_argument("--health-port", type=int, default=None,
                      metavar="PORT",
                      help="serve /healthz /metrics /sessions on this "
                      "port (0 = pick a free one)")
    p_sv.add_argument("--slo", default=None, metavar="FILE",
                      help="SLO policy JSON behind /healthz (default: "
                      "the built-in ingest policy)")
    p_sv.add_argument("--warehouse", default=None, metavar="FILE",
                      help="flush periodic telemetry into this metrics "
                      "warehouse (queried with 'obs query')")
    p_sv.add_argument("--publish-interval", type=float, default=2.0,
                      help="seconds between warehouse flushes")
    p_sv.add_argument("--run-id", default=None,
                      help="warehouse partition key for this daemon run "
                      "(default ingest-<pid>)")
    p_sv.add_argument("--study-warehouse", default=None, metavar="FILE",
                      help="compact flushed session spools into this "
                      "study warehouse on shutdown (queried with "
                      "'study query'); distinct from --warehouse, "
                      "which stores operational telemetry")
    add_threshold(p_sv)
    add_obs(p_sv)
    add_faults(p_sv)
    p_sv.set_defaults(func=_cmd_serve)

    p_rp = in_sub.add_parser(
        "replay", help="replay trace files as live client sessions"
    )
    p_rp.add_argument("traces", nargs="+",
                      help="trace files, directories, or glob patterns")
    p_rp.add_argument("--address", default="127.0.0.1:4271",
                      metavar="HOST:PORT", help="daemon to replay into")
    p_rp.add_argument("--session-prefix", default="replay-",
                      help="session ids become PREFIX0, PREFIX1, ...")
    p_rp.add_argument("--batch-records", type=int, default=256,
                      help="record lines per client batch")
    p_rp.add_argument("--warehouse", default=None, metavar="FILE",
                      help="publish the replay's client-side telemetry "
                      "(send-to-ack latency...) into this warehouse")
    p_rp.add_argument("--run-id", default=None,
                      help="warehouse partition key for this replay "
                      "(default replay-<pid>)")
    add_workers(p_rp, help="concurrent replay sessions "
                "(0 = all sessions at once)")
    add_obs(p_rp)
    add_faults(p_rp)
    p_rp.set_defaults(func=_cmd_replay)

    p_tl = in_sub.add_parser(
        "tail", help="rolling analysis of a (growing) spool file"
    )
    p_tl.add_argument("spool", help="spool .lila file to analyze")
    p_tl.add_argument("--follow", "-f", action="store_true",
                      help="keep polling for appended records")
    p_tl.add_argument("--interval", type=float, default=0.5,
                      help="poll interval with --follow (seconds)")
    add_threshold(p_tl)
    p_tl.set_defaults(func=_cmd_tail)
