"""Trace-level commands: simulate, analyze, sketch, browse, export,
compare, timeline, and lint."""

from __future__ import annotations

import argparse
import sys

from repro.cli._shared import (
    add_output,
    add_threshold,
    add_traces,
    add_workers,
)
from repro.core.analyzer import AnalysisConfig, LagAlyzer


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.apps.sessions import simulate_session
    from repro.lila.writer import write_trace

    trace = simulate_session(
        args.app, session_index=args.session, seed=args.seed, scale=args.scale
    )
    if args.format == "binary":
        from repro.lila.binary import write_trace_binary

        path = write_trace_binary(trace, args.output)
    else:
        path = write_trace(trace, args.output)
    print(
        f"wrote {path} ({len(trace.episodes)} episodes, "
        f"{len(trace.samples)} samples, "
        f"{trace.short_episode_count} filtered)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.viz.browser import render_pattern_browser

    config = AnalysisConfig(perceptible_threshold_ms=args.threshold)
    analyzer = LagAlyzer.load(args.traces, config=config, workers=args.workers)
    stats = analyzer.mean_session_stats()
    print(f"Application: {analyzer.application}")
    print(f"Sessions: {len(analyzer.traces)}")
    print(f"Episodes (>= filter): {stats.traced:.0f} per session")
    print(f"Perceptible (>= {args.threshold:.0f} ms): {stats.perceptible:.0f}")
    print(f"In-episode time: {stats.in_episode_pct:.0f}%")
    print(f"Distinct patterns: {analyzer.pattern_table().distinct_count}")
    from repro.core.lagstats import summarize_lags

    print(f"Lag distribution: {summarize_lags(analyzer.episodes).describe()}")
    print()
    print(
        render_pattern_browser(
            analyzer.pattern_table(),
            limit=args.limit,
            perceptible_only=args.perceptible_only,
            threshold_ms=args.threshold,
        )
    )
    if args.inspect is not None:
        from repro.core.drilldown import drill_down_pattern, format_drilldown

        table = analyzer.pattern_table()
        shown = (
            table.perceptible_only(args.threshold)
            if args.perceptible_only
            else table
        )
        rows = shown.rows()
        if not 1 <= args.inspect <= len(rows):
            print(f"--inspect out of range (1..{len(rows)})", file=sys.stderr)
            return 1
        pattern = rows[args.inspect - 1]
        print()
        print(f"drill-down into pattern #{args.inspect}:")
        print(format_drilldown(drill_down_pattern(pattern)))
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    from repro.viz.sketch import render_episode_sketch

    analyzer = LagAlyzer.load([args.trace])
    episodes = analyzer.episodes
    if args.episode is None:
        # Default to the worst episode: the one a developer looks at first.
        episode = max(episodes, key=lambda ep: ep.duration_ns)
    else:
        if not 0 <= args.episode < len(episodes):
            print(
                f"episode index out of range (0..{len(episodes) - 1})",
                file=sys.stderr,
            )
            return 1
        episode = episodes[args.episode]
    path = render_episode_sketch(episode).save(args.output)
    print(f"wrote {path} (episode #{episode.index}, {episode.duration_ms:.0f} ms)")
    return 0


def _cmd_browse(args: argparse.Namespace) -> int:
    from repro.viz.htmlbrowser import write_html_browser

    analyzer = LagAlyzer.load(
        args.traces,
        config=AnalysisConfig(perceptible_threshold_ms=args.threshold),
    )
    path = write_html_browser(
        analyzer,
        args.output,
        max_patterns=args.limit,
        perceptible_only=not args.all_patterns,
    )
    print(f"wrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import write_analysis_json, write_patterns_csv

    analyzer = LagAlyzer.load(
        args.traces,
        config=AnalysisConfig(perceptible_threshold_ms=args.threshold),
    )
    if args.format == "json":
        path = write_analysis_json(analyzer, args.output)
    else:
        path = write_patterns_csv(analyzer, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import compare_tables

    before = LagAlyzer.load(args.before)
    after = LagAlyzer.load(args.after)
    report = compare_tables(
        before.pattern_table(), after.pattern_table(),
        threshold_ms=args.threshold,
    )
    print(report.summary())
    regressions = report.regressions[: args.limit]
    if regressions:
        print()
        print("worst regressions:")
        for delta in regressions:
            print(f"  {delta.describe()}")
    improvements = report.improvements[: args.limit]
    if improvements:
        print()
        print("best improvements:")
        for delta in improvements:
            print(f"  {delta.describe()}")
    return 1 if report.regressions and args.fail_on_regression else 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.lila.autodetect import load_trace
    from repro.viz.timeline import render_session_timeline

    trace = load_trace(args.trace)
    doc = render_session_timeline(trace, threshold_ms=args.threshold)
    path = doc.save(args.output)
    print(
        f"wrote {path} ({len(trace.episodes)} episodes, "
        f"{len(trace.perceptible_episodes(args.threshold))} perceptible)"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.errors import TraceFormatError
    from repro.lila.autodetect import load_trace
    from repro.lila.validation import has_errors, lint_trace

    worst = 0
    for path in args.traces:
        print(f"{path}:")
        try:
            trace = load_trace(path)
        except (TraceFormatError, OSError) as error:
            print(f"  ERROR    FMT000: {error}")
            worst = 2
            continue
        diagnostics = lint_trace(trace)
        if not diagnostics:
            print("  clean")
            continue
        for diagnostic in diagnostics:
            print(f"  {diagnostic}")
        if has_errors(diagnostics):
            worst = max(worst, 2)
        else:
            worst = max(worst, 1 if args.strict else 0)
    return worst


_CONVERT_SUFFIXES = {"text": ".lila", "binary": ".lilb", "lilac": ".lilac"}


def _cmd_convert(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.errors import TraceFormatError

    source = Path(args.trace)
    target = (
        Path(args.output)
        if args.output is not None
        else source.with_suffix(_CONVERT_SUFFIXES[args.to])
    )
    if target.resolve() == source.resolve():
        print(
            f"{source}: refusing to overwrite the input "
            f"(pass --output for an explicit target)",
            file=sys.stderr,
        )
        return 1
    try:
        if args.to == "lilac":
            from repro.lila.colfile import write_column_file
            from repro.lila.source import build_store, open_source

            store = build_store(open_source(source))
            path = write_column_file(store, target)
            detail = f"{len(store.threads)} threads"
        else:
            from repro.lila.autodetect import load_trace

            trace = load_trace(source)
            if args.to == "binary":
                from repro.lila.binary import write_trace_binary

                path = write_trace_binary(trace, target)
            else:
                from repro.lila.writer import write_trace

                path = write_trace(trace, target)
            detail = f"{len(trace.episodes)} episodes"
    except (TraceFormatError, OSError) as error:
        print(f"{source}: unreadable trace: {error}", file=sys.stderr)
        return 2
    print(f"wrote {path} ({detail}, {path.stat().st_size} bytes)")
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Add the trace-level subcommands, in help-listing order."""
    p_sim = sub.add_parser("simulate", help="simulate a session, write a trace")
    p_sim.add_argument("--app", required=True, help="application name (Table II)")
    p_sim.add_argument("--session", type=int, default=0)
    p_sim.add_argument("--seed", type=int, default=20100401)
    p_sim.add_argument("--scale", type=float, default=1.0)
    p_sim.add_argument("--format", choices=("text", "binary"),
                       default="text")
    add_output(p_sim, "session.lila")
    p_sim.set_defaults(func=_cmd_simulate)

    p_an = sub.add_parser("analyze", help="analyze trace files")
    add_traces(p_an, help="trace files, directories, or glob patterns")
    add_threshold(p_an)
    add_workers(p_an, help="processes for parallel trace loading "
                "(0 = one per CPU)")
    p_an.add_argument("--limit", type=int, default=20)
    p_an.add_argument("--perceptible-only", action="store_true")
    p_an.add_argument("--inspect", type=int, default=None,
                      help="drill into the Nth pattern of the table")
    p_an.set_defaults(func=_cmd_analyze)

    p_sk = sub.add_parser("sketch", help="render an episode sketch SVG")
    p_sk.add_argument("trace")
    p_sk.add_argument("--episode", type=int, default=None,
                      help="episode index (default: worst episode)")
    add_output(p_sk, "sketch.svg")
    p_sk.set_defaults(func=_cmd_sketch)

    p_br = sub.add_parser(
        "browse", help="write an HTML pattern browser with sketches"
    )
    add_traces(p_br)
    add_threshold(p_br)
    p_br.add_argument("--limit", type=int, default=25)
    p_br.add_argument("--all-patterns", action="store_true",
                      help="include patterns without perceptible episodes")
    add_output(p_br, "browser.html")
    p_br.set_defaults(func=_cmd_browse)

    p_ex = sub.add_parser("export", help="export analysis results")
    add_traces(p_ex)
    p_ex.add_argument("--format", choices=("json", "csv"), default="json")
    add_threshold(p_ex)
    add_output(p_ex, "analysis.json")
    p_ex.set_defaults(func=_cmd_export)

    p_cp = sub.add_parser(
        "compare", help="diff pattern tables of two trace sets"
    )
    p_cp.add_argument("--before", nargs="+", required=True)
    p_cp.add_argument("--after", nargs="+", required=True)
    add_threshold(p_cp)
    p_cp.add_argument("--limit", type=int, default=10)
    p_cp.add_argument("--fail-on-regression", action="store_true")
    p_cp.set_defaults(func=_cmd_compare)

    p_tl = sub.add_parser("timeline", help="render a session-timeline SVG")
    p_tl.add_argument("trace")
    add_threshold(p_tl)
    add_output(p_tl, "timeline.svg")
    p_tl.set_defaults(func=_cmd_timeline)

    p_li = sub.add_parser("lint", help="check trace files for anomalies")
    add_traces(p_li)
    p_li.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings too")
    p_li.set_defaults(func=_cmd_lint)

    p_cv = sub.add_parser(
        "convert", help="re-encode a trace (text, binary, or column file)"
    )
    p_cv.add_argument("trace", help="input trace in any encoding")
    p_cv.add_argument("--to", required=True,
                      choices=("text", "binary", "lilac"),
                      help="target encoding (lilac = mmap column file)")
    p_cv.add_argument("-o", "--output", default=None,
                      help="output path (default: input with new suffix)")
    p_cv.set_defaults(func=_cmd_convert)
