"""The ``obs`` command group: bundles, the warehouse, and live health.

- ``obs report`` / ``export`` / ``timeline`` — one run's saved bundle;
- ``obs query``  — aggregates and time-series from a metrics warehouse;
- ``obs slo``    — evaluate SLO policies (against a live ``/healthz``
  or an offline stats file); exit code is the health verdict;
- ``obs top``    — a polling terminal view of a live daemon's health
  endpoints.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.cli._shared import add_output

#: Exit code for "the input you named does not exist / holds no data" —
#: distinct from 1 ("ran, but the answer is bad") for scripting.
EXIT_NO_INPUT = 2


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.observer import load_bundle

    try:
        bundle = load_bundle(args.directory)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_NO_INPUT
    spans = bundle["spans"]
    metrics = bundle["metrics"]

    if args.obs_command == "report":
        from repro.obs.spans import span_depth

        print(f"bundle:       {args.directory}")
        pids = sorted({span.pid for span in spans})
        print(f"spans:        {len(spans)} across {len(pids)} process(es)")
        print(f"span depth:   {span_depth(spans)}")
        counters = metrics.get("counters", {})
        if counters:
            print("counters:")
            for name in sorted(counters):
                print(f"  {name:<28} {counters[name]}")
        gauges = metrics.get("gauges", {})
        if gauges:
            print("gauges:")
            for name in sorted(gauges):
                print(f"  {name:<28} {gauges[name]}")
        histograms = metrics.get("histograms", {})
        if histograms:
            print("latencies (ms):")
            for name in sorted(histograms):
                hist = histograms[name]
                count = hist.get("count", 0)
                mean = hist.get("sum", 0.0) / count if count else 0.0
                print(f"  {name:<28} n={count} mean={mean:.2f}")
        slowest = sorted(
            spans, key=lambda span: span.duration_ns, reverse=True
        )[: args.limit]
        if slowest:
            print(f"slowest spans (top {len(slowest)}):")
            for span in slowest:
                print(
                    f"  {span.duration_ms:>10.2f} ms  {span.name}"
                    f"  (pid {span.pid})"
                )
        profile = bundle.get("profile")
        if profile:
            from repro.obs.profiling import ProfileAggregator

            aggregator = ProfileAggregator()
            aggregator.merge(profile)
            report = aggregator.format_report(top=args.limit)
            if report:
                print(report)
        return 0

    if args.obs_command == "timeline":
        from repro.viz.obstimeline import save_span_timeline

        path = save_span_timeline(spans, args.output)
        print(f"wrote {path} ({len(spans)} spans)")
        return 0

    # export
    if args.format == "chrome":
        from repro.obs.export import spans_to_chrome

        text = json.dumps(spans_to_chrome(spans), indent=2)
        default_name = "trace.chrome.json"
    elif args.format == "jsonl":
        from repro.obs.export import spans_to_jsonl

        text = spans_to_jsonl(spans)
        default_name = "spans.export.jsonl"
    else:
        from repro.obs.export import metrics_to_prometheus

        text = metrics_to_prometheus(metrics)
        default_name = "metrics.prom"
    if args.output == "-":
        print(text)
        return 0
    out = Path(args.output) if args.output else Path(default_name)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + ("\n" if not text.endswith("\n") else ""),
                   encoding="utf-8")
    print(f"wrote {out} ({args.format})")
    return 0


# ----------------------------------------------------------------------
# query — the metrics warehouse
# ----------------------------------------------------------------------


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.obs.warehouse import Warehouse, WarehouseError

    path = Path(args.warehouse)
    if not path.is_file():
        print(
            f"error: no metrics warehouse at {path} — point at the file "
            f"given to 'ingest serve --warehouse'",
            file=sys.stderr,
        )
        return EXIT_NO_INPUT
    warehouse = Warehouse(path)
    since = None
    if args.since_hours is not None:
        import time as _time

        since = _time.time() - args.since_hours * 3600.0
    try:
        if args.series:
            rows = warehouse.series(
                args.series, bucket=args.bucket,
                run_id=args.run, since_ts=since,
            )
            for bucket_ts, value in rows:
                print(json.dumps(
                    {"bucket_ts": bucket_ts, "name": args.series,
                     "value": value},
                    sort_keys=True,
                ))
            if not rows:
                print(f"error: no points for {args.series!r} — "
                      f"'obs query {path} --names' lists what published",
                      file=sys.stderr)
                return EXIT_NO_INPUT
            return 0
        if args.percentile:
            rows = warehouse.percentile_series(
                args.percentile, q=args.q, bucket=args.bucket,
                run_id=args.run, since_ts=since,
            )
            for bucket_ts, estimate, count in rows:
                print(json.dumps(
                    {"bucket_ts": bucket_ts, "name": args.percentile,
                     "q": args.q, "estimate_ms": estimate, "count": count},
                    sort_keys=True,
                ))
            if not rows:
                print(f"error: no histogram points for "
                      f"{args.percentile!r} — "
                      f"'obs query {path} --names' lists what published",
                      file=sys.stderr)
                return EXIT_NO_INPUT
            return 0
        if args.spans:
            for row in warehouse.span_summary(
                run_id=args.run, since_ts=since
            ):
                print(json.dumps(row, sort_keys=True))
            return 0
        if args.totals:
            print(json.dumps(
                warehouse.totals(run_id=args.run, since_ts=since),
                indent=2, sort_keys=True,
            ))
            return 0
        if args.names:
            print(json.dumps(
                warehouse.metric_names(), indent=2, sort_keys=True
            ))
            return 0
        # Default: the runs overview.
        runs = warehouse.runs()
        for run in runs:
            print(json.dumps(run, sort_keys=True))
        print(f"{len(runs)} run(s) in {path}")
        return 0
    except WarehouseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ----------------------------------------------------------------------
# slo / top — live health
# ----------------------------------------------------------------------


def _fetch_json(url: str, timeout_s: float) -> Tuple[int, Any]:
    import json
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _load_policy(path: Optional[str]):
    from repro.obs.slo import DEFAULT_INGEST_SLO, SloPolicy

    if path is None:
        return DEFAULT_INGEST_SLO
    return SloPolicy.load(path)


def _cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.core.errors import LagAlyzerError

    try:
        policy = _load_policy(args.policy)
    except LagAlyzerError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_NO_INPUT
    stats: Dict[str, Any]
    if args.stats is not None:
        stats_path = Path(args.stats)
        if not stats_path.is_file():
            print(f"error: no stats file at {stats_path}", file=sys.stderr)
            return EXIT_NO_INPUT
        stats = json.loads(stats_path.read_text(encoding="utf-8"))
    else:
        url = args.url.rstrip("/") + "/healthz"
        try:
            _, body = _fetch_json(url, args.timeout)
        except OSError as error:
            print(f"error: cannot reach {url}: {error}", file=sys.stderr)
            return EXIT_NO_INPUT
        stats = body.get("stats", {})
    report = policy.evaluate(stats)
    for line in report.lines():
        print(line)
    verdict = "healthy" if report.healthy else "UNHEALTHY"
    print(f"{report.policy}: {verdict} "
          f"({len(report.violations)} violation(s))")
    return 0 if report.healthy else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    base = args.url.rstrip("/")
    iterations = 1 if args.once else args.iterations

    def tick() -> bool:
        try:
            status, health = _fetch_json(base + "/healthz", args.timeout)
            _, sessions = _fetch_json(base + "/sessions", args.timeout)
        except OSError as error:
            print(f"error: cannot reach {base}: {error}", file=sys.stderr)
            return False
        stats = health.get("stats", {})
        verdict = "healthy" if status == 200 else "UNHEALTHY"
        print(
            f"[{verdict}] sessions={stats.get('sessions', 0):g} "
            f"accepted={stats.get('records_accepted', 0):g} "
            f"flushed={stats.get('records_flushed', 0):g} "
            f"pending={stats.get('pending_batches', 0):g} "
            f"nacks={stats.get('nacks_sent', 0):g} "
            f"lag={stats.get('spool_lag_records', 0):g}"
        )
        for result in health.get("results", []):
            if not result.get("ok", True):
                print(f"  SLO FAIL: {result['description']} "
                      f"(value={result['value']:g})")
        for row in sessions:
            print(
                f"  {row['session']:<24} app={row['application'] or '-':<12}"
                f" flushed={row['records_flushed']:>8}"
                f" pending={row['pending_batches']:>3}"
                f" nacks={row['nacks_sent']:>3}"
                f"{' ended' if row['ended'] else ''}"
            )
        return True

    import itertools

    ok = True
    try:
        sequence = range(iterations) if iterations else itertools.count()
        for index in sequence:
            if index:
                time.sleep(args.interval)
            ok = tick()
            if not ok:
                break
    except KeyboardInterrupt:
        pass
    return 0 if ok else EXIT_NO_INPUT


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``obs`` subcommand group."""
    p_ob = sub.add_parser(
        "obs", help="inspect and export pipeline observability bundles"
    )
    ob_sub = p_ob.add_subparsers(dest="obs_command", required=True)
    p_or = ob_sub.add_parser("report", help="summarize a bundle")
    p_or.add_argument("directory", help="bundle written by study --obs")
    p_or.add_argument("--limit", type=int, default=10,
                      help="rows in the slowest-spans / hotspot tables")
    p_or.set_defaults(func=_cmd_obs)
    p_oe = ob_sub.add_parser("export", help="convert a bundle for other tools")
    p_oe.add_argument("directory", help="bundle written by study --obs")
    p_oe.add_argument("--format", choices=("chrome", "jsonl", "prom"),
                      default="chrome",
                      help="chrome = trace-event JSON (chrome://tracing, "
                      "Perfetto); jsonl = raw spans; prom = Prometheus "
                      "text exposition of the metrics")
    p_oe.add_argument("--output", "-o", default=None,
                      help="output file ('-' for stdout; default depends "
                      "on the format)")
    p_oe.set_defaults(func=_cmd_obs)
    p_ot = ob_sub.add_parser(
        "timeline", help="render the spans as an SVG timeline"
    )
    p_ot.add_argument("directory", help="bundle written by study --obs")
    add_output(p_ot, "obs-timeline.svg")
    p_ot.set_defaults(func=_cmd_obs)

    p_oq = ob_sub.add_parser(
        "query", help="aggregates and time-series from a metrics warehouse"
    )
    p_oq.add_argument("warehouse",
                      help="warehouse file written by ingest serve "
                      "--warehouse (or a TelemetryPublisher)")
    what = p_oq.add_mutually_exclusive_group()
    what.add_argument("--series", metavar="NAME",
                      help="counter/gauge time-series as JSON lines")
    what.add_argument("--percentile", metavar="NAME",
                      help="histogram percentile time-series "
                      "(e.g. ingest.client.flush_ms)")
    what.add_argument("--spans", action="store_true",
                      help="span rollups by name (slowest mean first)")
    what.add_argument("--totals", action="store_true",
                      help="counter totals over the selection")
    what.add_argument("--names", action="store_true",
                      help="every published metric name by table")
    p_oq.add_argument("--q", type=float, default=0.99,
                      help="quantile for --percentile (default 0.99)")
    p_oq.add_argument("--bucket", default="minute",
                      help="display bucket: minute, hour, day, or "
                      "seconds (default minute)")
    p_oq.add_argument("--run", default=None,
                      help="restrict to one run id")
    p_oq.add_argument("--since-hours", type=float, default=None,
                      help="restrict to the trailing window")
    p_oq.set_defaults(func=_cmd_query)

    p_os = ob_sub.add_parser(
        "slo", help="evaluate SLO policies against live or saved stats"
    )
    os_sub = p_os.add_subparsers(dest="slo_command", required=True)
    p_oc = os_sub.add_parser(
        "check",
        help="evaluate a policy; exit 0 healthy, 1 violated, "
        "2 unreachable",
    )
    p_oc.add_argument("--url", default="http://127.0.0.1:4272",
                      help="daemon health endpoint base URL")
    p_oc.add_argument("--stats", default=None, metavar="FILE",
                      help="evaluate a saved stats JSON instead of "
                      "polling --url")
    p_oc.add_argument("--policy", default=None, metavar="FILE",
                      help="SLO policy JSON (default: the built-in "
                      "ingest policy)")
    p_oc.add_argument("--timeout", type=float, default=3.0,
                      help="HTTP timeout (seconds)")
    p_oc.set_defaults(func=_cmd_slo)

    p_op = ob_sub.add_parser(
        "top", help="polling terminal view of a live daemon's health"
    )
    p_op.add_argument("--url", default="http://127.0.0.1:4272",
                      help="daemon health endpoint base URL")
    p_op.add_argument("--interval", type=float, default=2.0,
                      help="poll interval (seconds)")
    p_op.add_argument("--iterations", type=int, default=0,
                      help="stop after N polls (0 = until interrupted)")
    p_op.add_argument("--once", action="store_true",
                      help="one poll, then exit")
    p_op.add_argument("--timeout", type=float, default=3.0,
                      help="HTTP timeout (seconds)")
    p_op.set_defaults(func=_cmd_top)
