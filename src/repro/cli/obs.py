"""The ``obs`` command group: inspect and export observability bundles."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cli._shared import add_output


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.observer import load_bundle

    try:
        bundle = load_bundle(args.directory)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    spans = bundle["spans"]
    metrics = bundle["metrics"]

    if args.obs_command == "report":
        from repro.obs.spans import span_depth

        print(f"bundle:       {args.directory}")
        pids = sorted({span.pid for span in spans})
        print(f"spans:        {len(spans)} across {len(pids)} process(es)")
        print(f"span depth:   {span_depth(spans)}")
        counters = metrics.get("counters", {})
        if counters:
            print("counters:")
            for name in sorted(counters):
                print(f"  {name:<28} {counters[name]}")
        gauges = metrics.get("gauges", {})
        if gauges:
            print("gauges:")
            for name in sorted(gauges):
                print(f"  {name:<28} {gauges[name]}")
        histograms = metrics.get("histograms", {})
        if histograms:
            print("latencies (ms):")
            for name in sorted(histograms):
                hist = histograms[name]
                count = hist.get("count", 0)
                mean = hist.get("sum", 0.0) / count if count else 0.0
                print(f"  {name:<28} n={count} mean={mean:.2f}")
        slowest = sorted(
            spans, key=lambda span: span.duration_ns, reverse=True
        )[: args.limit]
        if slowest:
            print(f"slowest spans (top {len(slowest)}):")
            for span in slowest:
                print(
                    f"  {span.duration_ms:>10.2f} ms  {span.name}"
                    f"  (pid {span.pid})"
                )
        profile = bundle.get("profile")
        if profile:
            from repro.obs.profiling import ProfileAggregator

            aggregator = ProfileAggregator()
            aggregator.merge(profile)
            report = aggregator.format_report(top=args.limit)
            if report:
                print(report)
        return 0

    if args.obs_command == "timeline":
        from repro.viz.obstimeline import save_span_timeline

        path = save_span_timeline(spans, args.output)
        print(f"wrote {path} ({len(spans)} spans)")
        return 0

    # export
    if args.format == "chrome":
        from repro.obs.export import spans_to_chrome

        text = json.dumps(spans_to_chrome(spans), indent=2)
        default_name = "trace.chrome.json"
    elif args.format == "jsonl":
        from repro.obs.export import spans_to_jsonl

        text = spans_to_jsonl(spans)
        default_name = "spans.export.jsonl"
    else:
        from repro.obs.export import metrics_to_prometheus

        text = metrics_to_prometheus(metrics)
        default_name = "metrics.prom"
    if args.output == "-":
        print(text)
        return 0
    out = Path(args.output) if args.output else Path(default_name)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + ("\n" if not text.endswith("\n") else ""),
                   encoding="utf-8")
    print(f"wrote {out} ({args.format})")
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``obs`` subcommand group."""
    p_ob = sub.add_parser(
        "obs", help="inspect and export pipeline observability bundles"
    )
    ob_sub = p_ob.add_subparsers(dest="obs_command", required=True)
    p_or = ob_sub.add_parser("report", help="summarize a bundle")
    p_or.add_argument("directory", help="bundle written by study --obs")
    p_or.add_argument("--limit", type=int, default=10,
                      help="rows in the slowest-spans / hotspot tables")
    p_or.set_defaults(func=_cmd_obs)
    p_oe = ob_sub.add_parser("export", help="convert a bundle for other tools")
    p_oe.add_argument("directory", help="bundle written by study --obs")
    p_oe.add_argument("--format", choices=("chrome", "jsonl", "prom"),
                      default="chrome",
                      help="chrome = trace-event JSON (chrome://tracing, "
                      "Perfetto); jsonl = raw spans; prom = Prometheus "
                      "text exposition of the metrics")
    p_oe.add_argument("--output", "-o", default=None,
                      help="output file ('-' for stdout; default depends "
                      "on the format)")
    p_oe.set_defaults(func=_cmd_obs)
    p_ot = ob_sub.add_parser(
        "timeline", help="render the spans as an SVG timeline"
    )
    p_ot.add_argument("directory", help="bundle written by study --obs")
    add_output(p_ot, "obs-timeline.svg")
    p_ot.set_defaults(func=_cmd_obs)
