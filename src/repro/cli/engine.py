"""The ``engine`` command group: cache maintenance and fault tooling."""

from __future__ import annotations

import argparse
import sys

from repro.cli._shared import add_cache_dir


def _cmd_engine_cache(args: argparse.Namespace) -> int:
    from repro.engine.cache import CODE_VERSION, ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached entries from {cache.root}")
        return 0
    stats, status = cache.persisted_stats_status()
    if status == "missing":
        print(f"cache dir:    {cache.root}")
        if not cache.root.is_dir():
            print("no cache yet (directory does not exist; run a study "
                  "with caching enabled to create it)")
        else:
            print("no recorded statistics yet (cache directory exists but "
                  "no run has persisted stats.json)")
            entries = cache.entry_count()
            if entries:
                print(f"entries:      {entries} ({cache.total_bytes()} bytes)")
        return 0
    if status == "corrupt":
        print(
            f"error: cache statistics at {cache.root / 'stats.json'} are "
            f"unreadable (corrupt or wrong format); run "
            f"'engine cache clear' to reset",
            file=sys.stderr,
        )
        return 2
    entries = cache.entry_count()
    bundles = cache.bundle_count()
    total = stats.hits + stats.misses
    hit_pct = 100.0 * stats.hits / total if total else 0.0
    bundle_total = stats.bundle_hits + stats.bundle_misses
    bundle_hit_pct = (
        100.0 * stats.bundle_hits / bundle_total if bundle_total else 0.0
    )
    print(f"cache dir:    {cache.root}")
    print(f"code version: {CODE_VERSION}")
    # Fused bundles and legacy per-analysis entries are different
    # granularities (one bundle holds a whole plan's partials for one
    # trace), so they are reported separately, never lumped.
    print(f"entries:      {entries} per-analysis ({cache.total_bytes()} bytes)"
          f" + {bundles} fused bundles ({cache.bundle_bytes()} bytes)")
    print("per-analysis entries:")
    print(f"  hits:         {stats.hits}")
    print(f"  misses:       {stats.misses}")
    print(f"  stores:       {stats.stores}")
    print(f"  hit rate:     {hit_pct:.1f}%")
    print("fused bundles:")
    print(f"  hits:         {stats.bundle_hits}")
    print(f"  misses:       {stats.bundle_misses}")
    print(f"  stores:       {stats.bundle_stores}")
    print(f"  hit rate:     {bundle_hit_pct:.1f}%")
    print(f"discarded:    {stats.discarded} (failed integrity check)")
    print(f"write errors: {stats.write_errors}")
    print(f"read errors:  {stats.read_errors}")
    return 0


def _cmd_engine_plan(args: argparse.Namespace) -> int:
    """``engine plan explain``: print the fused plan for an analysis set.

    Shows the operators in execution order, which shared stages each
    one requests (stages marked ``*`` are requested by two or more
    operators and therefore computed once per trace instead of once
    per analysis), and the plan fingerprint that keys the fused-bundle
    cache entries.
    """
    from repro.core.analyses import REGISTRY
    from repro.core.errors import AnalysisError
    from repro.core.plan import build_plan

    if args.analyses:
        names = []
        for chunk in args.analyses:
            names.extend(
                part.strip() for part in chunk.split(",") if part.strip()
            )
    else:
        names = list(REGISTRY)
    try:
        plan = build_plan(names)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for line in plan.describe():
        print(line)
    print(f"plan fingerprint: {plan.fingerprint()}")
    print(
        "bundle cache key: sha256(bundle, trace digest, config "
        "fingerprint, plan fingerprint, code version)"
    )
    return 0


def _cmd_engine_faults(args: argparse.Namespace) -> int:
    """``engine faults demo``: a self-contained chaos run, twice.

    Builds a small deterministic fault plan (one injected worker crash,
    universal cache corruption, one truncated trace), runs a miniature
    study cold and then warm against a throwaway cache, and shows that
    the pipeline completes, quarantines exactly the damaged session,
    and fires the same fault schedule both times.
    """
    import tempfile
    from collections import Counter

    from repro.faults import FaultInjector, FaultPlan, FaultRule
    from repro.obs import Observer
    from repro.study.runner import StudyConfig, run_study

    apps = ("CrosswordSage", "FreeMind")
    plan = FaultPlan(
        seed=args.seed,
        rules=(
            FaultRule(kind="worker_crash", at=("1",), mode="raise"),
            FaultRule(kind="cache_corrupt", probability=1.0),
            FaultRule(
                kind="trace_truncated",
                site="trace.map",
                at=(f"{apps[1]}/session-1",),
            ),
        ),
    )
    if args.plan_out:
        path = plan.save(args.plan_out)
        print(f"wrote demo plan to {path}")
    config = StudyConfig(sessions=2, scale=0.05, applications=apps)
    print(
        f"demo plan: {len(plan.rules)} rules, seed {plan.seed}; "
        f"running {len(apps)} applications x {config.sessions} sessions "
        f"twice (cold, then warm cache) ..."
    )
    schedules = []
    with tempfile.TemporaryDirectory() as cache_dir:
        for label in ("cold", "warm", "warm again"):
            injector = FaultInjector(plan)
            obs = Observer()
            result = run_study(
                config,
                workers=1,
                cache_dir=cache_dir,
                use_cache=True,
                obs=obs,
                faults=injector,
            )
            schedules.append(injector.schedule())
            fired = Counter(event.kind for event in injector.events)
            fired_text = (
                ", ".join(
                    f"{kind} x{count}" for kind, count in sorted(fired.items())
                )
                or "none"
            )
            print(f"{label} run: completed; faults fired: {fired_text}")
            counters = obs.metrics.as_dict().get("counters", {})
            for name in (
                "engine.retries",
                "engine.quarantined",
                "cache.read_errors",
                "faults.injected",
            ):
                if name in counters:
                    print(f"  {name:<20} {counters[name]}")
            for entries in result.quarantined.values():
                for entry in entries:
                    print(f"  quarantined {entry.describe()}")
    crash_keys = [
        event["key"]
        for event in schedules[0]
        if event["kind"] == "worker_crash"
    ]
    # Cold and warm runs fire different cache faults (reads only exist
    # warm); reproducibility means identical state -> identical schedule.
    reproducible = schedules[1] == schedules[2]
    print(
        "schedule reproducible across identical runs: "
        f"{'yes' if reproducible else 'NO'} "
        f"(crash at task index {', '.join(sorted(set(crash_keys)))})"
    )
    return 0 if reproducible else 1


def register(sub: argparse._SubParsersAction) -> None:
    """Add the ``engine`` subcommand group."""
    p_en = sub.add_parser(
        "engine", help="inspect and manage the analysis engine"
    )
    en_sub = p_en.add_subparsers(dest="engine_command", required=True)
    p_ec = en_sub.add_parser("cache", help="result-cache maintenance")
    p_ec.add_argument("action", choices=("stats", "clear"))
    add_cache_dir(p_ec)
    p_ec.set_defaults(func=_cmd_engine_cache)
    p_ep = en_sub.add_parser(
        "plan", help="inspect fused analysis plans"
    )
    p_ep.add_argument("action", choices=("explain",))
    p_ep.add_argument(
        "--analyses",
        nargs="+",
        default=None,
        metavar="NAME",
        help="analysis names (space- or comma-separated); default: all "
             "registered analyses",
    )
    p_ep.set_defaults(func=_cmd_engine_plan)
    p_ef = en_sub.add_parser(
        "faults", help="fault-injection tooling (see docs/fault_injection.md)"
    )
    p_ef.add_argument("action", choices=("demo",))
    p_ef.add_argument("--seed", type=int, default=7,
                      help="fault-plan seed for the demo run")
    p_ef.add_argument("--plan-out", default=None, metavar="PLAN.json",
                      help="also write the demo plan to this file")
    p_ef.set_defaults(func=_cmd_engine_faults)
