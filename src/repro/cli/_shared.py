"""Argument helpers shared by the CLI command modules.

Each helper adds one recurring option with its canonical spelling,
type, and default, so every subcommand that takes e.g. ``--threshold``
means exactly the same thing by it.
"""

from __future__ import annotations

import argparse
from typing import Optional

#: The default perceptibility cut (ms), mirrored from the analyses.
DEFAULT_THRESHOLD_MS = 100.0


def add_traces(
    parser: argparse.ArgumentParser, help: Optional[str] = None
) -> None:
    """The positional trace-file list (files, dirs, or glob patterns)."""
    if help is not None:
        parser.add_argument("traces", nargs="+", help=help)
    else:
        parser.add_argument("traces", nargs="+")


def add_threshold(
    parser: argparse.ArgumentParser, default: float = DEFAULT_THRESHOLD_MS
) -> None:
    """The perceptibility threshold in milliseconds."""
    parser.add_argument("--threshold", type=float, default=default)


def add_output(parser: argparse.ArgumentParser, default: str) -> None:
    """The ``--output``/``-o`` destination with a command-specific default."""
    parser.add_argument("--output", "-o", default=default)


def add_workers(parser: argparse.ArgumentParser, help: str) -> None:
    """The process-pool size knob (0 = one worker per CPU)."""
    parser.add_argument("--workers", type=int, default=1, help=help)


def add_cache_dir(parser: argparse.ArgumentParser) -> None:
    """The engine result-cache root."""
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache root (default ~/.cache/lagalyzer)")


def add_obs(parser: argparse.ArgumentParser) -> None:
    """The observability-bundle destination (enables observation)."""
    parser.add_argument("--obs", default=None, metavar="DIR",
                        help="trace the pipeline itself; write the "
                        "spans/metrics bundle to DIR")


def add_faults(parser: argparse.ArgumentParser) -> None:
    """The deterministic fault-injection plan file."""
    parser.add_argument("--faults", default=None, metavar="PLAN.json",
                        help="run under this deterministic fault-injection "
                        "plan (see docs/fault_injection.md)")
