"""Result row types returned by :class:`repro.warehouse.StudyWarehouse` queries.

Each query returns a list of frozen dataclasses rather than raw sqlite
rows so callers (the ``repro study query`` CLI, tests, notebooks) get a
stable, documented shape that survives schema migrations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RunRecord:
    """One recorded study run (a named set of ingested sessions)."""

    run_id: str
    label: str
    source: str
    """Where the sessions came from: ``"bundles"``, ``"spool"``,
    ``"trace"``, or a caller-supplied tag."""
    config_fingerprint: str
    threshold_ms: Optional[float]
    created_ts: float
    sessions: int

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class AppAggregate:
    """Cross-session aggregate for one application."""

    application: str
    sessions: int
    traced_episodes: int
    perceptible_episodes: int
    total_e2e_s: float
    mean_long_per_min: float

    @property
    def perceptible_rate(self) -> float:
        """Perceptible episodes per traced episode, 0.0 when untraced."""
        if self.traced_episodes <= 0:
            return 0.0
        return self.perceptible_episodes / self.traced_episodes

    def as_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["perceptible_rate"] = self.perceptible_rate
        return data


@dataclass(frozen=True)
class PatternAggregate:
    """Cross-session totals for one (application, pattern) pair."""

    application: str
    pattern_key: str
    occurrences: int
    perceptible: int
    sessions: int
    """Distinct sessions the pattern appeared in."""

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class SeriesPoint:
    """One time bucket of a per-app metric series."""

    application: str
    bucket_ts: float
    sessions: int
    value: float

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class RegressionEntry:
    """One application's before/after comparison."""

    application: str
    baseline_value: float
    candidate_value: float
    delta: float
    regressed: bool
    baseline_sessions: int
    candidate_sessions: int

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class RegressionReport:
    """A before/after diff between two run sets.

    ``entries`` is ordered by application name; ``regressions`` lists
    only the apps whose metric moved past ``min_delta`` in the bad
    direction.
    """

    metric: str
    min_delta: float
    baseline_runs: Tuple[str, ...]
    candidate_runs: Tuple[str, ...]
    entries: List[RegressionEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[RegressionEntry]:
        return [entry for entry in self.entries if entry.regressed]

    @property
    def regressed(self) -> bool:
        return any(entry.regressed for entry in self.entries)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "min_delta": self.min_delta,
            "baseline_runs": list(self.baseline_runs),
            "candidate_runs": list(self.candidate_runs),
            "entries": [entry.as_dict() for entry in self.entries],
            "regressed": self.regressed,
        }
