"""The study warehouse: a cross-session queryable store of analysis results.

Engine cache bundles and ingest spools answer "what did *this* trace
do?"; the study warehouse answers "which app regressed across the last
500 sessions?" (ROADMAP item 1). It is one SQLite file (stdlib
:mod:`sqlite3`, WAL mode) holding per-session Table III statistics and
per-session pattern occurrence counts, partitioned by run / application
/ session / config fingerprint, with query methods for cross-session
aggregates, top-N worst patterns, per-app time series, and before/after
regression diffs between two run sets.

Design rules (shared with :mod:`repro.obs.warehouse`):

- **Repository pattern, short-lived connections.** Every operation
  opens its own connection, walks the migration chain, commits, and
  closes. Delete the file mid-run and the next write recreates it.
- **Parameterized SQL everywhere.** Application and session identifiers
  come straight off the ingest wire; they are always bound values,
  never spliced into statements.
- **Degrade, never kill.** A failed session write warns, counts
  ``warehouse.write_errors``, and lets the study run continue; corrupt
  rows are swept into a quarantine table, not served and not fatal.
- **Parity by construction.** :meth:`StudyWarehouse.ingest_trace` runs
  the same fused plan (``statistics`` + ``occurrence``) that
  :meth:`LagAlyzer.summaries` runs, and :meth:`ingest_bundles` compacts
  partials the engine already computed — so warehouse queries agree
  exactly with recomputing, which the parity tests pin.
"""

from __future__ import annotations

import sqlite3
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.statistics import SessionStats
from repro.faults import runtime as faults_runtime
from repro.obs import runtime as obs_runtime
from repro.warehouse.schema import (
    SCHEMA_VERSION,
    StudyWarehouseError,
    ensure_schema,
)
from repro.warehouse.types import (
    AppAggregate,
    PatternAggregate,
    RegressionEntry,
    RegressionReport,
    RunRecord,
    SeriesPoint,
)

#: The fused plan a direct trace ingest runs — the same operators whose
#: partials :meth:`LagAlyzer.summaries` reduces for Table III rows,
#: pattern occurrence counts, and cause vectors.
INGEST_ANALYSES: Tuple[str, ...] = ("statistics", "occurrence", "causes")

#: Metrics the series / regression queries understand, mapped to the
#: SQL aggregate over ``sessions`` rows that computes them. Every one is
#: "higher is worse" for regression purposes.
METRICS: Dict[str, str] = {
    "perceptible_rate": "SUM(perceptible) * 1.0 / MAX(SUM(traced), 1)",
    "perceptible": "SUM(perceptible)",
    "traced": "SUM(traced)",
    "long_per_min": "AVG(long_per_min)",
    "e2e_s": "SUM(e2e_s)",
}

#: Display bucket widths accepted by :meth:`StudyWarehouse.series`.
BUCKET_WIDTHS: Dict[str, int] = {
    "minute": 60,
    "hour": 3600,
    "day": 86400,
}

#: SQL guard keeping corrupt (non-numeric) session rows out of every
#: aggregate — quarantine sweeps remove them, queries never trust them.
_NUMERIC_GUARD = (
    "typeof(traced) IN ('integer', 'real')"
    " AND typeof(perceptible) IN ('integer', 'real')"
    " AND typeof(e2e_s) IN ('integer', 'real')"
    " AND typeof(long_per_min) IN ('integer', 'real')"
)

#: ``sessions`` columns filled from :class:`SessionStats` fields.
_STAT_COLUMNS: Tuple[str, ...] = SessionStats._NUMERIC_FIELDS


def _cause_rows(partial: Any) -> Optional[Dict[str, Tuple[int, int, int, int]]]:
    """Flatten a ``causes`` partial into per-label warehouse rows.

    The partial is the analysis's dual tally (``all`` + ``perceptible``
    populations, each ``label -> (ns, episodes)``); the warehouse row is
    the four-column flattening. ``None`` (an old bundle without the
    causes analysis) stays ``None``.
    """
    if partial is None:
        return None
    all_tally = getattr(partial, "all", None)
    perceptible = getattr(partial, "perceptible", None) or {}
    if not isinstance(all_tally, dict):
        return None
    rows: Dict[str, Tuple[int, int, int, int]] = {}
    for label, (total_ns, episodes) in all_tally.items():
        p_ns, p_eps = perceptible.get(label, (0, 0))
        rows[label] = (int(total_ns), int(episodes), int(p_ns), int(p_eps))
    return rows


def _metric_sql(metric: str) -> str:
    sql = METRICS.get(metric)
    if sql is None:
        known = ", ".join(sorted(METRICS))
        raise StudyWarehouseError(
            f"unknown metric {metric!r}; choose from {known}"
        )
    return sql


class StudyWarehouse:
    """One SQLite-backed study warehouse.

    Args:
        path: the database file (created, with parents, on first write).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Connection / schema management
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """A fresh connection, schema migrated to the current version."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self.path), timeout=10.0)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            ensure_schema(connection)
        except sqlite3.Error:
            connection.close()
            raise
        return connection

    def schema_version(self) -> int:
        """The schema version of the file (migrating it if behind)."""
        connection = self._connect()
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'study_schema_version'"
            ).fetchone()
            return int(row[0]) if row else SCHEMA_VERSION
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def record_run(
        self,
        run_id: str,
        label: str = "",
        source: str = "",
        config_fingerprint: str = "",
        threshold_ms: Optional[float] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Upsert one run row (idempotent; later calls refresh metadata)."""
        now = time.time() if ts is None else float(ts)
        connection = self._connect()
        try:
            with connection:
                connection.execute(
                    "INSERT INTO runs (run_id, label, source,"
                    " config_fingerprint, threshold_ms, created_ts)"
                    " VALUES (?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT(run_id) DO UPDATE SET"
                    " label = CASE WHEN excluded.label != ''"
                    "   THEN excluded.label ELSE label END,"
                    " source = CASE WHEN excluded.source != ''"
                    "   THEN excluded.source ELSE source END,"
                    " config_fingerprint ="
                    "   CASE WHEN excluded.config_fingerprint != ''"
                    "   THEN excluded.config_fingerprint"
                    "   ELSE config_fingerprint END,"
                    " threshold_ms = COALESCE(excluded.threshold_ms,"
                    "   threshold_ms)",
                    (
                        run_id, label, source, config_fingerprint,
                        threshold_ms, now,
                    ),
                )
        finally:
            connection.close()

    def ingest_session(
        self,
        run_id: str,
        app: str,
        session_id: str,
        stats: SessionStats,
        pattern_counts: Optional[Dict[str, Tuple[int, int]]] = None,
        excluded: int = 0,
        trace_digest: str = "",
        config_fingerprint: str = "",
        records: int = 0,
        ts: Optional[float] = None,
        family: str = "gui",
        causes: Optional[Dict[str, Tuple[int, int, int, int]]] = None,
    ) -> bool:
        """Store one session's summary + pattern + cause rows.

        ``family`` is the workload family the session's trace declared;
        ``causes`` maps cause labels to ``(total_ns, episodes,
        perceptible_ns, perceptible_episodes)`` — the session's
        self-time attribution, the substrate of :meth:`diff`.

        Dedup contract: re-ingesting a ``(run, app, session)`` whose
        stored ``trace_digest`` matches is a no-op returning ``False``;
        a *different* digest (the session was re-traced) replaces the
        row and its pattern/cause rows. Returns ``True`` when rows
        changed.

        Raises:
            OSError, sqlite3.Error: the write failed — callers that sit
                inside a study run catch these, warn, and continue (the
                warehouse is a byproduct, never a point of failure).
        """
        faults_runtime.check("warehouse.write", key=f"{app}/{session_id}")
        now = time.time() if ts is None else float(ts)
        counts = pattern_counts or {}
        connection = self._connect()
        try:
            existing = connection.execute(
                "SELECT trace_digest FROM sessions"
                " WHERE run_id = ? AND app = ? AND session_id = ?",
                (run_id, app, session_id),
            ).fetchone()
            if existing is not None and existing[0] == trace_digest:
                return False
            stat_values = [float(getattr(stats, name)) for name in _STAT_COLUMNS]
            with connection:
                connection.execute(
                    "INSERT OR IGNORE INTO runs (run_id, created_ts)"
                    " VALUES (?, ?)",
                    (run_id, now),
                )
                connection.execute(
                    "DELETE FROM patterns WHERE run_id = ? AND app = ?"
                    " AND session_id = ?",
                    (run_id, app, session_id),
                )
                connection.execute(
                    "DELETE FROM causes WHERE run_id = ? AND app = ?"
                    " AND session_id = ?",
                    (run_id, app, session_id),
                )
                connection.execute(
                    "INSERT INTO sessions (run_id, app, session_id,"
                    " trace_digest, config_fingerprint, ingested_ts,"
                    " records, excluded_episodes, family, "
                    + ", ".join(_STAT_COLUMNS)
                    + ") VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, "
                    + ", ".join("?" for _ in _STAT_COLUMNS)
                    + ") ON CONFLICT(run_id, app, session_id) DO UPDATE SET"
                    " trace_digest = excluded.trace_digest,"
                    " config_fingerprint = excluded.config_fingerprint,"
                    " ingested_ts = excluded.ingested_ts,"
                    " records = excluded.records,"
                    " excluded_episodes = excluded.excluded_episodes,"
                    " family = excluded.family, "
                    + ", ".join(
                        f"{name} = excluded.{name}" for name in _STAT_COLUMNS
                    ),
                    [
                        run_id, app, session_id, trace_digest,
                        config_fingerprint, now, int(records), int(excluded),
                        str(family),
                    ]
                    + stat_values,
                )
                connection.executemany(
                    "INSERT INTO patterns (run_id, app, session_id,"
                    " pattern_key, count, perceptible)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (
                            run_id, app, session_id, str(key),
                            int(pair[0]), int(pair[1]),
                        )
                        for key, pair in sorted(counts.items())
                    ],
                )
                if causes:
                    connection.executemany(
                        "INSERT INTO causes (run_id, app, session_id,"
                        " label, total_ns, episodes, perceptible_ns,"
                        " perceptible_episodes)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        [
                            (
                                run_id, app, session_id, str(label),
                                int(row[0]), int(row[1]),
                                int(row[2]), int(row[3]),
                            )
                            for label, row in sorted(causes.items())
                        ],
                    )
        finally:
            connection.close()
        obs_runtime.count("warehouse.sessions_ingested")
        return True

    def ingest_trace(
        self,
        trace: Any,
        run_id: str,
        config: Any,
        records: int = 0,
        ts: Optional[float] = None,
        session_id: Optional[str] = None,
    ) -> bool:
        """Analyze one trace with the ingest plan and store the session.

        Runs the same fused ``statistics`` + ``occurrence`` pass the
        engine runs, so the stored row is value-identical to what
        :meth:`LagAlyzer.summaries` would reduce for this trace.

        ``session_id`` overrides the trace's own metadata session id —
        ingest daemons use their wire session id, which is unique per
        connection where trace metadata may not be.
        """
        from repro.core.family import family_name_of
        from repro.core.plan import build_plan
        from repro.engine.cache import config_fingerprint
        from repro.lila.digest import trace_digest

        partials = build_plan(INGEST_ANALYSES).execute(trace, config)
        stats = partials["statistics"]
        occurrence = partials["occurrence"]
        return self.ingest_session(
            run_id=run_id,
            app=trace.application,
            session_id=(
                session_id if session_id is not None
                else trace.metadata.session_id
            ),
            stats=stats,
            pattern_counts=occurrence.counts,
            excluded=occurrence.excluded,
            trace_digest=trace_digest(trace),
            config_fingerprint=config_fingerprint(config),
            records=records,
            ts=ts,
            family=family_name_of(trace.metadata),
            causes=_cause_rows(partials.get("causes")),
        )

    def ingest_spool(
        self,
        spool_path: Union[str, Path],
        run_id: str,
        config: Any,
        ts: Optional[float] = None,
        session_id: Optional[str] = None,
        column_file: Optional[Union[str, Path]] = None,
    ) -> bool:
        """Analyze one ingest spool file and store its session.

        ``records`` is the spool's record-line count, matching the
        daemon's zero-loss ``records_flushed`` accounting.

        ``column_file`` converts the spool to a ``.lilac`` column file
        at that path first and analyzes the mmap-backed store instead of
        the parsed object graph — the spool is parsed exactly once and
        every later read of the session maps the column file.
        """
        from repro.lila.source import build_store, build_trace, open_source

        spool_path = Path(spool_path)
        # Every flushed line lands in the spool verbatim, so the line
        # count is exactly the daemon's ``records_flushed`` for the
        # session — the zero-loss contract, queryable after the fact.
        with open(spool_path, "r", encoding="utf-8") as handle:
            records = sum(1 for _ in handle)
        if column_file is not None:
            from repro.lila.colfile import (
                open_column_trace,
                write_column_file,
            )

            store = build_store(open_source(spool_path))
            write_column_file(store, Path(column_file))
            trace = open_column_trace(Path(column_file))
        else:
            trace = build_trace(open_source(spool_path))
        return self.ingest_trace(
            trace, run_id, config,
            records=records, ts=ts, session_id=session_id,
        )

    def ingest_bundles(
        self,
        cache: Any,
        run_id: str,
        config_fingerprint: str = "",
        applications: Optional[Iterable[str]] = None,
        ts: Optional[float] = None,
    ) -> Dict[str, int]:
        """Compact a result cache's fused bundles into warehouse rows.

        Consumes :meth:`repro.engine.cache.ResultCache.iter_bundles`
        (the supported iteration surface — no globbing of cache
        internals). Only bundles that carry provenance meta *and* both
        ingest analyses are eligible; ``config_fingerprint`` /
        ``applications`` narrow the sweep to one study's bundles.

        Returns counters: ``{"ingested", "skipped", "ineligible"}`` —
        ``skipped`` are eligible bundles already present (dedup),
        ``ineligible`` lack meta, lack the ingest analyses, or fail the
        filters.
        """
        wanted = set(applications) if applications is not None else None
        ingested = skipped = ineligible = 0
        for record in cache.iter_bundles():
            meta = record.meta or {}
            app = meta.get("application")
            session_id = meta.get("session_id")
            stats = record.partials.get("statistics")
            occurrence = record.partials.get("occurrence")
            if (
                not app
                or not session_id
                or not isinstance(stats, SessionStats)
                or occurrence is None
                or not hasattr(occurrence, "counts")
            ):
                ineligible += 1
                continue
            if config_fingerprint and (
                meta.get("config_fingerprint") != config_fingerprint
            ):
                ineligible += 1
                continue
            if wanted is not None and app not in wanted:
                ineligible += 1
                continue
            changed = self.ingest_session(
                run_id=run_id,
                app=str(app),
                session_id=str(session_id),
                stats=stats,
                pattern_counts=occurrence.counts,
                excluded=int(getattr(occurrence, "excluded", 0)),
                trace_digest=str(meta.get("trace_digest", "")),
                config_fingerprint=str(meta.get("config_fingerprint", "")),
                ts=ts,
                family=str(meta.get("family", "gui")),
                causes=_cause_rows(record.partials.get("causes")),
            )
            if changed:
                ingested += 1
                obs_runtime.count("warehouse.bundles_compacted")
            else:
                skipped += 1
        return {
            "ingested": ingested,
            "skipped": skipped,
            "ineligible": ineligible,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @staticmethod
    def _filters(
        apps: Optional[Sequence[str]] = None,
        run_ids: Optional[Sequence[str]] = None,
        since_ts: Optional[float] = None,
        families: Optional[Sequence[str]] = None,
    ) -> Tuple[str, List[Any]]:
        """A parameterized WHERE tail from the common query filters."""
        clauses: List[str] = [_NUMERIC_GUARD]
        params: List[Any] = []
        if apps:
            clauses.append(
                "app IN (" + ", ".join("?" for _ in apps) + ")"
            )
            params.extend(apps)
        if run_ids:
            clauses.append(
                "run_id IN (" + ", ".join("?" for _ in run_ids) + ")"
            )
            params.extend(run_ids)
        if since_ts is not None:
            clauses.append("ingested_ts >= ?")
            params.append(float(since_ts))
        if families:
            clauses.append(
                "family IN (" + ", ".join("?" for _ in families) + ")"
            )
            params.extend(families)
        return " AND ".join(clauses), params

    def runs(self) -> List[RunRecord]:
        """Every recorded run, oldest first, with its session count."""
        if not self.path.exists():
            return []
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT r.run_id, r.label, r.source, r.config_fingerprint,"
                " r.threshold_ms, r.created_ts,"
                " (SELECT COUNT(*) FROM sessions s WHERE s.run_id = r.run_id)"
                " FROM runs r ORDER BY r.created_ts, r.run_id"
            ).fetchall()
        finally:
            connection.close()
        return [
            RunRecord(
                run_id=row[0],
                label=row[1],
                source=row[2],
                config_fingerprint=row[3],
                threshold_ms=row[4],
                created_ts=float(row[5]),
                sessions=int(row[6]),
            )
            for row in rows
        ]

    def aggregate(
        self,
        apps: Optional[Sequence[str]] = None,
        run_ids: Optional[Sequence[str]] = None,
        since_ts: Optional[float] = None,
        families: Optional[Sequence[str]] = None,
    ) -> List[AppAggregate]:
        """Cross-session totals per application, app-name order."""
        if not self.path.exists():
            return []
        where, params = self._filters(apps, run_ids, since_ts, families)
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT app, COUNT(*), SUM(traced), SUM(perceptible),"
                " SUM(e2e_s), AVG(long_per_min)"
                f" FROM sessions WHERE {where}"
                " GROUP BY app ORDER BY app",
                params,
            ).fetchall()
        finally:
            connection.close()
        return [
            AppAggregate(
                application=row[0],
                sessions=int(row[1]),
                traced_episodes=int(row[2] or 0),
                perceptible_episodes=int(row[3] or 0),
                total_e2e_s=float(row[4] or 0.0),
                mean_long_per_min=float(row[5] or 0.0),
            )
            for row in rows
        ]

    def top_patterns(
        self,
        n: int = 10,
        metric: str = "perceptible_lag",
        apps: Optional[Sequence[str]] = None,
        run_ids: Optional[Sequence[str]] = None,
    ) -> List[PatternAggregate]:
        """The N worst patterns fleet-wide.

        ``metric="perceptible_lag"`` ranks by perceptible episode count
        (then total occurrences); ``metric="occurrences"`` ranks by
        total occurrences (then perceptible count). Ties break on
        (application, pattern key) ascending, so the ordering is fully
        deterministic.
        """
        if metric == "perceptible_lag":
            order = "total_perceptible DESC, total_count DESC"
        elif metric == "occurrences":
            order = "total_count DESC, total_perceptible DESC"
        else:
            raise StudyWarehouseError(
                f"unknown pattern metric {metric!r};"
                " choose from occurrences, perceptible_lag"
            )
        if not self.path.exists():
            return []
        clauses: List[str] = [
            "typeof(count) IN ('integer', 'real')",
            "typeof(perceptible) IN ('integer', 'real')",
        ]
        params: List[Any] = []
        if apps:
            clauses.append("app IN (" + ", ".join("?" for _ in apps) + ")")
            params.extend(apps)
        if run_ids:
            clauses.append(
                "run_id IN (" + ", ".join("?" for _ in run_ids) + ")"
            )
            params.extend(run_ids)
        where = " AND ".join(clauses)
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT app, pattern_key, SUM(count) AS total_count,"
                " SUM(perceptible) AS total_perceptible,"
                " COUNT(DISTINCT run_id || '/' || session_id)"
                f" FROM patterns WHERE {where}"
                " GROUP BY app, pattern_key"
                f" ORDER BY {order}, app, pattern_key"
                " LIMIT ?",
                params + [int(n)],
            ).fetchall()
        finally:
            connection.close()
        return [
            PatternAggregate(
                application=row[0],
                pattern_key=row[1],
                occurrences=int(row[2] or 0),
                perceptible=int(row[3] or 0),
                sessions=int(row[4] or 0),
            )
            for row in rows
        ]

    def series(
        self,
        metric: str = "perceptible_rate",
        bucket: str = "hour",
        apps: Optional[Sequence[str]] = None,
        run_ids: Optional[Sequence[str]] = None,
        since_ts: Optional[float] = None,
        families: Optional[Sequence[str]] = None,
    ) -> List[SeriesPoint]:
        """A per-app time series of ``metric`` over ingest time.

        Sessions are bucketed by their ``ingested_ts`` into ``minute`` /
        ``hour`` / ``day`` buckets; each point aggregates the sessions
        in one (app, bucket).
        """
        width = BUCKET_WIDTHS.get(bucket)
        if width is None:
            known = ", ".join(sorted(BUCKET_WIDTHS))
            raise StudyWarehouseError(
                f"unknown bucket {bucket!r}; choose from {known}"
            )
        value_sql = _metric_sql(metric)
        if not self.path.exists():
            return []
        where, params = self._filters(apps, run_ids, since_ts, families)
        connection = self._connect()
        try:
            rows = connection.execute(
                "SELECT app,"
                " CAST(ingested_ts AS INTEGER) / ? * ? AS bucket_ts,"
                f" COUNT(*), {value_sql}"
                f" FROM sessions WHERE {where}"
                " GROUP BY app, bucket_ts ORDER BY app, bucket_ts",
                [width, width] + params,
            ).fetchall()
        finally:
            connection.close()
        return [
            SeriesPoint(
                application=row[0],
                bucket_ts=float(row[1]),
                sessions=int(row[2]),
                value=float(row[3] or 0.0),
            )
            for row in rows
        ]

    def regression(
        self,
        baseline_runs: Sequence[str],
        candidate_runs: Sequence[str],
        metric: str = "perceptible_rate",
        min_delta: float = 0.0,
    ) -> RegressionReport:
        """A before/after diff of ``metric`` between two run sets.

        Every metric is higher-is-worse, so an app regressed when
        ``candidate - baseline > min_delta``. Apps present in only one
        set still appear (the missing side reads 0.0 with 0 sessions).
        Entries are ordered by application name — deterministic across
        worker counts because the underlying rows are value-identical.
        """
        value_sql = _metric_sql(metric)

        def side(runs: Sequence[str]) -> Dict[str, Tuple[float, int]]:
            if not self.path.exists() or not runs:
                return {}
            where, params = self._filters(run_ids=runs)
            connection = self._connect()
            try:
                rows = connection.execute(
                    f"SELECT app, {value_sql}, COUNT(*)"
                    f" FROM sessions WHERE {where} GROUP BY app",
                    params,
                ).fetchall()
            finally:
                connection.close()
            return {
                row[0]: (float(row[1] or 0.0), int(row[2])) for row in rows
            }

        base = side(baseline_runs)
        cand = side(candidate_runs)
        entries: List[RegressionEntry] = []
        for app in sorted(set(base) | set(cand)):
            base_value, base_sessions = base.get(app, (0.0, 0))
            cand_value, cand_sessions = cand.get(app, (0.0, 0))
            delta = cand_value - base_value
            entries.append(
                RegressionEntry(
                    application=app,
                    baseline_value=base_value,
                    candidate_value=cand_value,
                    delta=delta,
                    regressed=delta > min_delta,
                    baseline_sessions=base_sessions,
                    candidate_sessions=cand_sessions,
                )
            )
        return RegressionReport(
            metric=metric,
            min_delta=min_delta,
            baseline_runs=tuple(baseline_runs),
            candidate_runs=tuple(candidate_runs),
            entries=entries,
        )

    def cause_totals(
        self,
        run_id: str,
        apps: Optional[Sequence[str]] = None,
        perceptible_only: bool = False,
    ) -> Dict[str, Tuple[int, int]]:
        """Aggregated cause tally of one run: ``label -> (ns, episodes)``.

        Sums the run's per-session cause rows; ``perceptible_only``
        reads the perceptible columns instead. Labels come back in
        label order (deterministic regardless of ingest order).
        """
        if not self.path.exists():
            return {}
        if perceptible_only:
            value_cols = "SUM(perceptible_ns), SUM(perceptible_episodes)"
        else:
            value_cols = "SUM(total_ns), SUM(episodes)"
        clauses = [
            "run_id = ?",
            "typeof(total_ns) IN ('integer', 'real')",
            "typeof(episodes) IN ('integer', 'real')",
        ]
        params: List[Any] = [run_id]
        if apps:
            clauses.append("app IN (" + ", ".join("?" for _ in apps) + ")")
            params.extend(apps)
        where = " AND ".join(clauses)
        connection = self._connect()
        try:
            rows = connection.execute(
                f"SELECT label, {value_cols} FROM causes"
                f" WHERE {where} GROUP BY label ORDER BY label",
                params,
            ).fetchall()
        finally:
            connection.close()
        return {
            row[0]: (int(row[1] or 0), int(row[2] or 0)) for row in rows
        }

    def diff(
        self,
        run_a: str,
        run_b: str,
        apps: Optional[Sequence[str]] = None,
        perceptible_only: bool = False,
    ) -> Any:
        """Attribute the latency delta between two runs to ranked causes.

        Aggregates each run's ``causes`` rows and hands the two tallies
        to :func:`repro.core.causegraph.diff_cause_totals`; the report
        ranks per-label self-time deltas regressions-first, so the
        injected (or real) cause of a slowdown surfaces at the top. The
        ranking is deterministic across worker counts because the
        underlying rows are value-identical however they were computed.
        """
        from repro.core.causegraph import diff_cause_totals

        return diff_cause_totals(
            self.cause_totals(run_a, apps, perceptible_only),
            self.cause_totals(run_b, apps, perceptible_only),
            run_a,
            run_b,
        )

    # ------------------------------------------------------------------
    # Retention and hygiene
    # ------------------------------------------------------------------

    def prune(
        self,
        max_age_s: Optional[float] = None,
        keep_runs: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Drop whole runs past the retention horizon.

        ``max_age_s`` drops runs created earlier than ``now -
        max_age_s``; ``keep_runs`` keeps only the newest N runs. Either
        filter alone or both together; sessions and pattern rows of a
        dropped run go with it. Returns runs removed.
        """
        if max_age_s is None and keep_runs is None:
            return 0
        if not self.path.exists():
            return 0
        now = time.time() if now is None else float(now)
        connection = self._connect()
        try:
            doomed: List[str] = []
            if max_age_s is not None:
                cutoff = now - float(max_age_s)
                doomed.extend(
                    row[0]
                    for row in connection.execute(
                        "SELECT run_id FROM runs WHERE created_ts < ?",
                        (cutoff,),
                    )
                )
            if keep_runs is not None:
                doomed.extend(
                    row[0]
                    for row in connection.execute(
                        "SELECT run_id FROM runs"
                        " ORDER BY created_ts DESC, run_id DESC"
                        " LIMIT -1 OFFSET ?",
                        (max(0, int(keep_runs)),),
                    )
                )
            doomed = sorted(set(doomed))
            if doomed:
                marks = ", ".join("?" for _ in doomed)
                with connection:
                    connection.execute(
                        f"DELETE FROM patterns WHERE run_id IN ({marks})",
                        doomed,
                    )
                    connection.execute(
                        f"DELETE FROM causes WHERE run_id IN ({marks})",
                        doomed,
                    )
                    connection.execute(
                        f"DELETE FROM sessions WHERE run_id IN ({marks})",
                        doomed,
                    )
                    connection.execute(
                        f"DELETE FROM runs WHERE run_id IN ({marks})",
                        doomed,
                    )
        finally:
            connection.close()
        return len(doomed)

    def compact(
        self, older_than_s: float, now: Optional[float] = None
    ) -> int:
        """Fold old runs' per-session pattern rows into per-run rows.

        Pattern rows dominate warehouse size; for runs older than the
        horizon, per-session detail matters less than totals. Rows of
        each old (run, app, pattern) collapse into one row with the
        ``''`` sentinel session id, preserving every sum the top-N
        query reads. Returns rows reclaimed; the file is VACUUMed when
        any were.
        """
        if not self.path.exists():
            return 0
        now = time.time() if now is None else float(now)
        cutoff = now - float(older_than_s)
        connection = self._connect()
        try:
            old_runs = [
                row[0]
                for row in connection.execute(
                    "SELECT run_id FROM runs WHERE created_ts < ?", (cutoff,)
                )
            ]
            if not old_runs:
                return 0
            marks = ", ".join("?" for _ in old_runs)
            before = connection.execute(
                f"SELECT COUNT(*) FROM patterns WHERE run_id IN ({marks})",
                old_runs,
            ).fetchone()[0]
            with connection:
                connection.execute(
                    "CREATE TEMP TABLE folded AS"
                    " SELECT run_id, app, '' AS session_id, pattern_key,"
                    " SUM(count) AS count, SUM(perceptible) AS perceptible"
                    f" FROM patterns WHERE run_id IN ({marks})"
                    " GROUP BY run_id, app, pattern_key",
                    old_runs,
                )
                connection.execute(
                    f"DELETE FROM patterns WHERE run_id IN ({marks})",
                    old_runs,
                )
                connection.execute(
                    "INSERT INTO patterns (run_id, app, session_id,"
                    " pattern_key, count, perceptible)"
                    " SELECT run_id, app, session_id, pattern_key,"
                    " count, perceptible FROM folded"
                )
                connection.execute("DROP TABLE folded")
            after = connection.execute(
                f"SELECT COUNT(*) FROM patterns WHERE run_id IN ({marks})",
                old_runs,
            ).fetchone()[0]
            reclaimed = int(before) - int(after)
            if reclaimed > 0:
                connection.execute("VACUUM")
        finally:
            connection.close()
        return reclaimed

    def quarantine_corrupt(self, now: Optional[float] = None) -> int:
        """Sweep structurally corrupt rows into the quarantine table.

        A session row whose numeric columns are not numbers (external
        tampering, partial writes through a crash) is moved — payload
        preserved as JSON — so aggregates stay trustworthy and the
        damage stays inspectable. Returns rows quarantined.
        """
        import json

        if not self.path.exists():
            return 0
        now = time.time() if now is None else float(now)
        connection = self._connect()
        try:
            bad = connection.execute(
                "SELECT rowid, * FROM sessions WHERE NOT (" + _NUMERIC_GUARD + ")"
            ).fetchall()
            bad_patterns = connection.execute(
                "SELECT rowid, * FROM patterns WHERE NOT ("
                "typeof(count) IN ('integer', 'real')"
                " AND typeof(perceptible) IN ('integer', 'real'))"
            ).fetchall()
            with connection:
                for row in bad:
                    connection.execute(
                        "INSERT INTO quarantine (rowid_src, src_table,"
                        " reason, payload, swept_ts) VALUES (?, ?, ?, ?, ?)",
                        (
                            row[0], "sessions", "non-numeric stats",
                            json.dumps(row[1:], default=str), now,
                        ),
                    )
                    connection.execute(
                        "DELETE FROM sessions WHERE rowid = ?", (row[0],)
                    )
                for row in bad_patterns:
                    connection.execute(
                        "INSERT INTO quarantine (rowid_src, src_table,"
                        " reason, payload, swept_ts) VALUES (?, ?, ?, ?, ?)",
                        (
                            row[0], "patterns", "non-numeric counts",
                            json.dumps(row[1:], default=str), now,
                        ),
                    )
                    connection.execute(
                        "DELETE FROM patterns WHERE rowid = ?", (row[0],)
                    )
        finally:
            connection.close()
        swept = len(bad) + len(bad_patterns)
        if swept:
            obs_runtime.count("warehouse.quarantined_rows", swept)
        return swept

    def quarantined(self) -> List[Tuple[str, str]]:
        """``(table, reason)`` of every quarantined row, sweep order."""
        if not self.path.exists():
            return []
        connection = self._connect()
        try:
            return [
                (row[0], row[1])
                for row in connection.execute(
                    "SELECT src_table, reason FROM quarantine"
                    " ORDER BY swept_ts, rowid"
                )
            ]
        finally:
            connection.close()

    def __repr__(self) -> str:
        return f"StudyWarehouse({str(self.path)!r})"
