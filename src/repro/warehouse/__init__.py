"""Persistent cross-session study warehouse (see :mod:`repro.warehouse.store`)."""

from repro.warehouse.schema import (
    MIGRATIONS,
    SCHEMA_VERSION,
    StudyWarehouseError,
)
from repro.warehouse.store import (
    BUCKET_WIDTHS,
    INGEST_ANALYSES,
    METRICS,
    StudyWarehouse,
)
from repro.warehouse.types import (
    AppAggregate,
    PatternAggregate,
    RegressionEntry,
    RegressionReport,
    RunRecord,
    SeriesPoint,
)

__all__ = [
    "AppAggregate",
    "BUCKET_WIDTHS",
    "INGEST_ANALYSES",
    "METRICS",
    "MIGRATIONS",
    "PatternAggregate",
    "RegressionEntry",
    "RegressionReport",
    "RunRecord",
    "SCHEMA_VERSION",
    "SeriesPoint",
    "StudyWarehouse",
    "StudyWarehouseError",
]
