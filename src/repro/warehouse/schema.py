"""Versioned schema and migrations for the study warehouse.

Unlike the telemetry warehouse (whose single-version schema is applied
with ``CREATE TABLE IF NOT EXISTS``), the study warehouse is a durable
cross-run dataset: its file outlives code upgrades, so the schema is
expressed as an ordered migration chain. ``MIGRATIONS[n]`` upgrades a
version-``n`` file to version ``n + 1``; opening a file always walks
the chain from its recorded version to :data:`SCHEMA_VERSION`, inside
one transaction per step, preserving existing rows.

A file written by a *newer* code version (recorded version above
:data:`SCHEMA_VERSION`) is refused rather than guessed at.
"""

from __future__ import annotations

import sqlite3

from repro.core.errors import LagAlyzerError

#: Version this code writes; files at lower versions migrate up on open.
SCHEMA_VERSION = 3

# Version 1: the core study tables — runs, per-session summaries, and
# per-session pattern occurrence rows.
_V1 = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id             TEXT PRIMARY KEY,
    label              TEXT NOT NULL DEFAULT '',
    source             TEXT NOT NULL DEFAULT '',
    config_fingerprint TEXT NOT NULL DEFAULT '',
    threshold_ms       REAL,
    created_ts         REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS sessions (
    run_id             TEXT NOT NULL,
    app                TEXT NOT NULL,
    session_id         TEXT NOT NULL,
    trace_digest       TEXT NOT NULL DEFAULT '',
    config_fingerprint TEXT NOT NULL DEFAULT '',
    ingested_ts        REAL NOT NULL,
    e2e_s              REAL NOT NULL DEFAULT 0,
    in_episode_pct     REAL NOT NULL DEFAULT 0,
    below_filter       REAL NOT NULL DEFAULT 0,
    traced             REAL NOT NULL DEFAULT 0,
    perceptible        REAL NOT NULL DEFAULT 0,
    long_per_min       REAL NOT NULL DEFAULT 0,
    distinct_patterns  REAL NOT NULL DEFAULT 0,
    covered_episodes   REAL NOT NULL DEFAULT 0,
    singleton_pct      REAL NOT NULL DEFAULT 0,
    mean_descendants   REAL NOT NULL DEFAULT 0,
    mean_depth         REAL NOT NULL DEFAULT 0,
    excluded_episodes  INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, app, session_id)
);
CREATE INDEX IF NOT EXISTS idx_sessions_app
    ON sessions (app, ingested_ts);
CREATE TABLE IF NOT EXISTS patterns (
    run_id      TEXT NOT NULL,
    app         TEXT NOT NULL,
    session_id  TEXT NOT NULL,
    pattern_key TEXT NOT NULL,
    count       INTEGER NOT NULL DEFAULT 0,
    perceptible INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, app, session_id, pattern_key)
);
"""

# Version 2: a records column on sessions (the spool zero-loss count),
# a quarantine table for rows swept aside as corrupt, and a pattern
# index serving the top-N query.
_V2 = """
ALTER TABLE sessions ADD COLUMN records INTEGER NOT NULL DEFAULT 0;
CREATE TABLE IF NOT EXISTS quarantine (
    rowid_src  INTEGER,
    src_table  TEXT NOT NULL,
    reason     TEXT NOT NULL,
    payload    TEXT NOT NULL,
    swept_ts   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_patterns_app_key
    ON patterns (app, pattern_key);
"""

# Version 3: workload families and cause vectors. Sessions carry the
# family that produced them (pre-v3 rows are gui by definition — the
# default backfills them), and the causes table stores each session's
# self-time attribution by cause label, the substrate of `study diff`.
_V3 = """
ALTER TABLE sessions ADD COLUMN family TEXT NOT NULL DEFAULT 'gui';
CREATE TABLE IF NOT EXISTS causes (
    run_id              TEXT NOT NULL,
    app                 TEXT NOT NULL,
    session_id          TEXT NOT NULL,
    label               TEXT NOT NULL,
    total_ns            INTEGER NOT NULL DEFAULT 0,
    episodes            INTEGER NOT NULL DEFAULT 0,
    perceptible_ns      INTEGER NOT NULL DEFAULT 0,
    perceptible_episodes INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (run_id, app, session_id, label)
);
CREATE INDEX IF NOT EXISTS idx_causes_run_label
    ON causes (run_id, label);
"""

#: ``MIGRATIONS[n]`` migrates a version-``n`` database to ``n + 1``.
MIGRATIONS = (_V1, _V2, _V3)


class StudyWarehouseError(LagAlyzerError):
    """The study warehouse file is unusable or a query is malformed."""


def stored_version(connection: sqlite3.Connection) -> int:
    """The schema version recorded in the file, 0 for a fresh file."""
    row = connection.execute(
        "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
    ).fetchone()
    if row is None:
        return 0
    row = connection.execute(
        "SELECT value FROM meta WHERE key = 'study_schema_version'"
    ).fetchone()
    return int(row[0]) if row else 0


def _statements(script: str) -> list:
    """The individual statements of a migration script.

    Scripts are executed statement by statement inside an explicit
    transaction (``executescript`` would commit around itself and break
    the write-lock serialization below), so they must not contain
    string literals with semicolons.
    """
    return [part.strip() for part in script.split(";") if part.strip()]


def ensure_schema(connection: sqlite3.Connection) -> int:
    """Walk ``connection`` up the migration chain to the current version.

    Returns the version the file started at. Each step runs inside a
    ``BEGIN IMMEDIATE`` transaction: the write lock serializes
    concurrent first-opens (the version is re-read under the lock, so
    the loser sees the winner's work instead of re-running a
    non-idempotent ``ALTER TABLE``), and a crash mid-chain leaves a
    valid lower-version file that the next open resumes upgrading.

    Raises:
        StudyWarehouseError: the file reports a version newer than this
            code understands.
    """
    start = stored_version(connection)
    if start > SCHEMA_VERSION:
        raise StudyWarehouseError(
            f"study warehouse is schema v{start}, newer than this code's "
            f"v{SCHEMA_VERSION} — upgrade repro or use a fresh file"
        )
    while stored_version(connection) < SCHEMA_VERSION:
        connection.execute("BEGIN IMMEDIATE")
        try:
            version = stored_version(connection)
            if version >= SCHEMA_VERSION:
                connection.execute("COMMIT")
                break
            for statement in _statements(MIGRATIONS[version]):
                connection.execute(statement)
            connection.execute(
                "INSERT INTO meta (key, value)"
                " VALUES ('study_schema_version', ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (str(version + 1),),
            )
            connection.execute("COMMIT")
        except BaseException:
            if connection.in_transaction:
                connection.execute("ROLLBACK")
            raise
    return start
