"""Registry of the 14 benchmark applications (Table II)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps.base import AppSpec


def _load_specs() -> Dict[str, AppSpec]:
    from repro.apps import (
        arabeske,
        argouml,
        crosswordsage,
        euclide,
        findbugs,
        freemind,
        ganttproject,
        jedit,
        jfreechart,
        jhotdraw,
        jmol,
        laoe,
        netbeans,
        swingset,
    )

    specs = (
        arabeske.SPEC,
        argouml.SPEC,
        crosswordsage.SPEC,
        euclide.SPEC,
        findbugs.SPEC,
        freemind.SPEC,
        ganttproject.SPEC,
        jedit.SPEC,
        jfreechart.SPEC,
        jhotdraw.SPEC,
        jmol.SPEC,
        laoe.SPEC,
        netbeans.SPEC,
        swingset.SPEC,
    )
    return {spec.name: spec for spec in specs}


_SPECS: Dict[str, AppSpec] = {}


def _specs() -> Dict[str, AppSpec]:
    if not _SPECS:
        _SPECS.update(_load_specs())
    return _SPECS


#: Application names in Table II (and paper figure) order.
APPLICATION_NAMES: Tuple[str, ...] = (
    "Arabeske",
    "ArgoUML",
    "CrosswordSage",
    "Euclide",
    "FindBugs",
    "FreeMind",
    "GanttProject",
    "JEdit",
    "JFreeChart",
    "JHotDraw",
    "JMol",
    "Laoe",
    "NetBeans",
    "SwingSet",
)


def get_spec(name: str) -> AppSpec:
    """The spec of application ``name`` (case-insensitive).

    Raises:
        KeyError: for a name not in Table II.
    """
    specs = _specs()
    for candidate, spec in specs.items():
        if candidate.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown application {name!r}; known: {sorted(specs)}"
    )


def all_specs() -> List[AppSpec]:
    """All 14 specs in Table II order."""
    return [get_spec(name) for name in APPLICATION_NAMES]


def table2_rows() -> List[Tuple[str, str, int, str]]:
    """Table II: (application, version, classes, description)."""
    return [
        (spec.name, spec.version, spec.classes, spec.description)
        for spec in all_specs()
    ]
