"""JHotDraw (Draw) — vector editor whose lag is its own code.

Paper findings: 96% of JHotDraw's perceptible lag is application code —
the call-stack samples concentrate in the code drawing handles and
outlines of bezier curves, which does not scale with curve complexity.
Input-triggered episodes dominate (drawing gestures).
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="JHotDraw",
    version="7.1",
    classes=1146,
    description="Vector graphics editor",
    package="org.jhotdraw",
    content_classes=(
        "DrawingView",
        "BezierOutline",
        "HandleLayer",
        "ToolPalette",
    ),
    listener_vocab=(
        "BezierToolListener",
        "SelectionToolListener",
        "HandleDragListener",
        "FigureListener",
    ),
    e2e_s=421.0,
    traced_per_min=852.0,
    micro_per_min=35160.0,
    n_common_templates=230,
    rare_per_session=330,
    zipf_exponent=1.05,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=1.1,
    input_weight=0.58,
    output_weight=0.26,
    async_weight=0.03,
    unspec_weight=0.13,
    median_fast_ms=11.0,
    slow_share_target=0.052,
    slow_trigger_bias="input",
    median_slow_ms=260.0,
    app_code_fraction=0.95,
    native_call_fraction=0.05,
    alloc_bytes_per_ms=26 * 1024,
    sleep_fraction=0.08,
    wait_fraction=0.02,
    block_fraction=0.03,
    misc_runnable_fraction=0.08,
    heap=HeapConfig(young_capacity_bytes=72 * 1024 * 1024),
)
