"""JMol — molecule viewer with a timer-driven 3D animation.

Paper findings: JMol has the worst perceptible performance of the suite
(180 perceptible episodes per in-episode minute). 98% of its perceptible
episodes are output episodes, most conforming to a single pattern: the
rendering of the complex three-dimensional molecule visualization. A
timer-based animation triggers a repaint roughly every 40 ms, so output
episodes stream in even without user input.
"""

from repro.apps.base import AnimationSpec, AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="JMol",
    version="11.6.21",
    classes=1422,
    description="Chemical structure viewer",
    package="org.jmol",
    content_classes=(
        "MoleculeCanvas",
        "SurfaceRenderer",
        "ScriptConsole",
        "MeasurementPanel",
    ),
    listener_vocab=(
        "RotationListener",
        "ScriptListener",
        "PickingListener",
    ),
    e2e_s=449.0,
    traced_per_min=134.0,
    micro_per_min=14830.0,
    n_common_templates=160,
    rare_per_session=95,
    zipf_exponent=1.0,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=4.5,
    input_weight=0.45,
    output_weight=0.30,
    async_weight=0.04,
    unspec_weight=0.21,
    median_fast_ms=14.0,
    slow_share_target=0.012,
    median_slow_ms=260.0,
    app_code_fraction=0.70,
    native_call_fraction=0.15,
    native_median_ms=7.0,
    alloc_bytes_per_ms=30 * 1024,
    sleep_fraction=0.08,
    wait_fraction=0.05,
    block_fraction=0.03,
    animations=(
        AnimationSpec(
            thread_name="jmol-animation-timer",
            period_ms=40.0,
            active_fraction=0.22,
            window_count=4,
            render_median_ms=76.0,
            alloc_bytes_per_event=96 * 1024,
        ),
    ),
    misc_runnable_fraction=0.08,
    heap=HeapConfig(young_capacity_bytes=72 * 1024 * 1024),
)
