"""LAoE — audio sample editor with torrents of tiny episodes.

Paper findings: Laoe produced by far the most sub-3 ms episodes of the
suite (over 1.2 million per session — waveform scrubbing and level
meters generate streams of micro-events), yet the lowest rate of
perceptible episodes per in-episode minute (18): its episodes are
plentiful and moderately long, but rarely cross the 100 ms threshold.
The paper's sessions edited a complete MP3 song.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="Laoe",
    version="0.6.03",
    classes=688,
    description="Audio sample editor",
    package="ch.laoe",
    content_classes=(
        "WaveformView",
        "ChannelPanel",
        "LevelMeter",
        "EffectRack",
    ),
    listener_vocab=(
        "WaveSelectionListener",
        "EffectListener",
        "TransportListener",
    ),
    e2e_s=460.0,
    traced_per_min=414.0,
    micro_per_min=161900.0,
    n_common_templates=133,
    rare_per_session=180,
    zipf_exponent=1.1,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=3.2,
    input_weight=0.48,
    output_weight=0.32,
    async_weight=0.04,
    unspec_weight=0.16,
    median_fast_ms=57.0,
    duration_sigma=0.22,
    slow_share_target=0.007,
    median_slow_ms=300.0,
    app_code_fraction=0.55,
    native_call_fraction=0.12,
    alloc_bytes_per_ms=22 * 1024,
    sleep_fraction=0.10,
    wait_fraction=0.03,
    block_fraction=0.03,
    misc_runnable_fraction=0.09,
    heap=HeapConfig(young_capacity_bytes=96 * 1024 * 1024),
)
