"""CrosswordSage — small, focused crossword puzzle editor.

The smallest application of the suite (34 classes). Its sessions show
the lowest in-episode fraction (8%): a user filling in a crossword
leaves the system idle most of the time. Few patterns, few perceptible
episodes, no notable pathologies — the paper's baseline for a simple
well-behaved application.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="CrosswordSage",
    version="0.3.5",
    classes=34,
    description="Crossword puzzle editor",
    package="crosswordsage",
    content_classes=("CrosswordGrid", "CluePanel", "WordSuggester"),
    listener_vocab=(
        "GridKeyListener",
        "ClueSelectionListener",
        "MenuListener",
    ),
    e2e_s=367.0,
    traced_per_min=192.0,
    micro_per_min=17900.0,
    n_common_templates=120,
    rare_per_session=55,
    zipf_exponent=0.9,
    paint_depth=1,
    paint_fanout=2,
    paint_self_ms=1.0,
    input_weight=0.55,
    output_weight=0.25,
    async_weight=0.03,
    unspec_weight=0.17,
    median_fast_ms=12.0,
    slow_share_target=0.022,
    slow_trigger_bias="input",
    median_slow_ms=260.0,
    app_code_fraction=0.55,
    native_call_fraction=0.06,
    alloc_bytes_per_ms=16 * 1024,
    sleep_fraction=0.12,
    wait_fraction=0.05,
    block_fraction=0.03,
    misc_runnable_fraction=0.06,
    heap=HeapConfig(young_capacity_bytes=96 * 1024 * 1024),
)
