"""Euclide — geometry construction kit dominated by toolkit sleeps.

Paper findings: over 60% of Euclide's perceptible lag is the GUI thread
*sleeping* — every such stack trace pointed into Apple's combo-box
blinking animation (``Thread.sleep`` inside the Aqua toolkit). About
73% of its perceptible lag is runtime-library time, consistent with the
combo-box controls being slow to react.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="Euclide",
    version="0.5.2",
    classes=398,
    description="Geometry construction kit",
    package="org.euclide",
    content_classes=(
        "GeometryCanvas",
        "ConstructionTree",
        "ToolSelector",
        "CoordinatePanel",
    ),
    listener_vocab=(
        "CanvasMouseListener",
        "ToolComboListener",
        "ConstructionListener",
        "MacroListener",
    ),
    e2e_s=614.0,
    traced_per_min=940.0,
    micro_per_min=10700.0,
    n_common_templates=215,
    rare_per_session=75,
    zipf_exponent=0.9,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=0.9,
    input_weight=0.52,
    output_weight=0.28,
    async_weight=0.04,
    unspec_weight=0.16,
    median_fast_ms=12.5,
    slow_share_target=0.0085,
    slow_trigger_bias="input",
    median_slow_ms=340.0,
    app_code_fraction=0.27,
    native_call_fraction=0.07,
    alloc_bytes_per_ms=18 * 1024,
    sleep_fraction=0.95,
    sleep_median_ms=320.0,
    wait_fraction=0.05,
    block_fraction=0.03,
    misc_runnable_fraction=0.07,
    heap=HeapConfig(young_capacity_bytes=96 * 1024 * 1024),
)
