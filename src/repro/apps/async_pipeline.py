"""The ``async_pipeline`` workload family: thread-pool stage chains.

A batch pipeline (think an indexing or media-processing job) whose work
items flow through a chain of stages executed on a thread pool. Episodes
are rooted at STAGE intervals — one per stage execution on the observed
pool worker — and begin with an ASYNC handoff interval covering the
dequeue of the item posted by the upstream stage. The family's trigger
vocabulary therefore classifies most episodes as asynchronous (the
handoff is the first child), with no repaint-manager reclassification.

As with ``io_service``, the traces come out of the same simulated VM as
the gui sessions: only the episode vocabulary differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.intervals import IntervalKind, NS_PER_MS, NS_PER_S
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace
from repro.vm.behavior import (
    Behavior,
    Compute,
    Enclose,
    NativeCall,
    Wait,
    edt_stack,
)
from repro.vm.jvm import PostedEvent, SessionConfig, SessionEvent, SimulatedJVM
from repro.vm.rng import RngStream
from repro.vm.threads import ThreadTimeline

#: The pool worker whose stage executions the trace observes.
WORKER_THREAD = "pipeline-worker-0"

#: Episode-root symbol of the family.
ROOT_SYMBOL = "StageRunner.runStage"


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: its work shape and throughput share."""

    name: str
    weight: float
    handoff_ms: float
    compute_ms: float
    alloc_bytes_per_ms: int
    native_ms: float = 0.0
    native_symbol: str = ""


#: The pipeline's stages. ``compress`` leans on a native codec and
#: ``merge`` allocates heavily enough to provoke collections.
STAGES: Tuple[StageSpec, ...] = (
    StageSpec(
        name="parse",
        weight=0.35,
        handoff_ms=0.8,
        compute_ms=5.0,
        alloc_bytes_per_ms=8192,
    ),
    StageSpec(
        name="transform",
        weight=0.30,
        handoff_ms=1.0,
        compute_ms=11.0,
        alloc_bytes_per_ms=12288,
    ),
    StageSpec(
        name="compress",
        weight=0.20,
        handoff_ms=0.7,
        compute_ms=3.0,
        alloc_bytes_per_ms=2048,
        native_ms=40.0,
        native_symbol="java.util.zip.Deflater.deflateBytes",
    ),
    StageSpec(
        name="merge",
        weight=0.15,
        handoff_ms=1.4,
        compute_ms=110.0,
        alloc_bytes_per_ms=16384,
    ),
)

#: Stage executions per minute on the observed worker at scale 1.0.
ITEMS_PER_MIN = 130.0

#: Full-scale session length in seconds.
SESSION_S = 240.0


def _stage_behavior(spec: StageSpec) -> Behavior:
    """The stage execution: dequeue handoff, compute, optional native."""
    handoff_stack = edt_stack(
        StackFrame("java.util.concurrent.LinkedBlockingQueue", "take"),
        StackFrame("com.acme.pipeline.StageRunner", "runStage"),
    )
    compute_stack = edt_stack(
        StackFrame(f"com.acme.pipeline.{spec.name.capitalize()}Stage", "process"),
        StackFrame("com.acme.pipeline.StageRunner", "runStage"),
    )
    steps = [
        Enclose(
            IntervalKind.ASYNC,
            "java.util.concurrent.LinkedBlockingQueue.take",
            [Wait(spec.handoff_ms, handoff_stack, sigma=0.3)],
        ),
        Compute(
            spec.compute_ms,
            compute_stack,
            sigma=0.45,
            alloc_bytes_per_ms=spec.alloc_bytes_per_ms,
        ),
    ]
    if spec.native_ms > 0:
        native_stack = StackTrace(
            (
                StackFrame(*spec.native_symbol.rsplit(".", 1), is_native=True),
                StackFrame("java.util.zip.DeflaterOutputStream", "write"),
                StackFrame("com.acme.pipeline.CompressStage", "process"),
            )
        )
        steps.append(
            NativeCall(
                spec.native_symbol,
                spec.native_ms,
                native_stack,
                sigma=0.35,
                alloc_bytes_per_ms=512,
            )
        )
    return Behavior(steps)


def _item_events(rng: RngStream, duration_s: float) -> List[SessionEvent]:
    """Stage executions landing on the observed worker."""
    weights = [spec.weight for spec in STAGES]
    behaviors = {spec.name: _stage_behavior(spec) for spec in STAGES}
    mean_gap_s = 60.0 / ITEMS_PER_MIN
    events: List[SessionEvent] = []
    t_s = rng.exponential_ms(mean_gap_s * 1000.0) / 1000.0
    while t_s < duration_s:
        spec = rng.weighted_choice(STAGES, weights)
        events.append(PostedEvent(round(t_s * NS_PER_S), behaviors[spec.name]))
        t_s += rng.exponential_ms(mean_gap_s * 1000.0) / 1000.0
    return events


def _sibling_worker_timeline(
    name: str, rng: RngStream, duration_s: float
) -> ThreadTimeline:
    """Another pool worker: busy in bursts while the pipeline flows."""
    timeline = ThreadTimeline(name)
    stack = StackTrace(
        (
            StackFrame("com.acme.pipeline.StageRunner", "runStage"),
            StackFrame("java.util.concurrent.ThreadPoolExecutor$Worker", "run"),
        )
    )
    t_ns = 0
    end_ns = round(duration_s * NS_PER_S)
    while t_ns < end_ns:
        burst_ns = round(rng.exponential_ms(90.0) * NS_PER_MS)
        burst_end = min(t_ns + max(burst_ns, NS_PER_MS), end_ns)
        timeline.record(t_ns, burst_end, ThreadState.RUNNABLE, stack)
        gap_ns = round(rng.exponential_ms(60.0) * NS_PER_MS)
        t_ns = burst_end + max(gap_ns, NS_PER_MS)
    return timeline


def simulate_pipeline_session(
    pipeline: str = "IndexBuilder",
    session_index: int = 0,
    seed: int = 20100401,
    scale: float = 1.0,
) -> Trace:
    """Run one ``async_pipeline``-family session and return its trace.

    Args:
        pipeline: pipeline name (the trace's application).
        session_index: which session to run.
        seed: root seed of the study.
        scale: session-length multiplier in (0, 1].
    """
    if scale <= 0 or scale > 1:
        raise ValueError("scale must be in (0, 1]")
    duration_s = SESSION_S * scale
    rng = RngStream(seed).fork(pipeline).fork(f"session{session_index}")
    session_seed = RngStream(seed).fork(pipeline).fork(
        f"jvm{session_index}"
    ).seed
    config = SessionConfig(
        application=pipeline,
        session_id=f"session-{session_index}",
        seed=session_seed,
        duration_s=duration_s,
        gui_thread=WORKER_THREAD,
        family="async_pipeline",
        root_kind=IntervalKind.STAGE,
        root_symbol=ROOT_SYMBOL,
    )
    jvm = SimulatedJVM(config)
    for index in (1, 2):
        jvm.add_background_timeline(
            _sibling_worker_timeline(
                f"pipeline-worker-{index}", rng.fork(f"worker{index}"), duration_s
            )
        )
    return jvm.run(_item_events(rng.fork("items"), duration_s))


def simulate_pipeline_sessions(
    pipeline: str = "IndexBuilder",
    count: int = 4,
    seed: int = 20100401,
    scale: float = 1.0,
) -> List[Trace]:
    """Run ``count`` sessions of the pipeline."""
    return [
        simulate_pipeline_session(pipeline, index, seed=seed, scale=scale)
        for index in range(count)
    ]
