"""JFreeChart (Time) — chart rendering with many short native calls.

Paper findings: 24% of JFreeChart's perceptible lag is native code — a
large fraction of its lag is output, and the episodes contain many calls
to native rendering methods that individually complete quickly but add
up. Its sessions are the shortest of the suite (the demo's limited
functionality does not support longer realistic sessions).
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="JFreeChart",
    version="1.0.13",
    classes=1667,
    description="Chart library (time data)",
    package="org.jfree.chart",
    content_classes=(
        "ChartPanel",
        "PlotArea",
        "AxisPanel",
        "LegendBlock",
    ),
    listener_vocab=(
        "ChartMouseListener",
        "ZoomListener",
        "DatasetChangeListener",
    ),
    e2e_s=250.0,
    traced_per_min=398.0,
    micro_per_min=18640.0,
    n_common_templates=105,
    rare_per_session=50,
    zipf_exponent=1.0,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=2.2,
    input_weight=0.30,
    output_weight=0.50,
    async_weight=0.04,
    unspec_weight=0.16,
    median_fast_ms=8.0,
    slow_share_target=0.11,
    slow_trigger_bias="output",
    median_slow_ms=230.0,
    app_code_fraction=0.45,
    native_call_fraction=0.85,
    native_median_ms=14.0,
    alloc_bytes_per_ms=24 * 1024,
    sleep_fraction=0.08,
    wait_fraction=0.05,
    block_fraction=0.04,
    misc_runnable_fraction=0.08,
    heap=HeapConfig(young_capacity_bytes=80 * 1024 * 1024),
)
