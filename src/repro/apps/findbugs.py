"""FindBugs — bug browser with a long-running background loader.

Paper findings: FindBugs shows the largest fraction of asynchronously
triggered perceptible episodes (42%), mostly progress-bar updates posted
by a background thread. One recurring pattern spends significant time in
the toolkit's progress-bar animation code with a garbage collection
triggered inside each such episode — pointing at the allocation
behaviour of the animation. Loading a >1600-class project takes about
three minutes in a background thread that competes with the GUI thread,
making FindBugs one of the three applications with a mean
runnable-thread count above one during perceptible episodes.
"""

from repro.apps.base import AppSpec, BackgroundSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="FindBugs",
    version="1.3.8",
    classes=3698,
    description="Bug browser",
    package="edu.umd.cs.findbugs",
    content_classes=(
        "BugTree",
        "SourceCodePanel",
        "SummaryPane",
        "FilterPanel",
    ),
    listener_vocab=(
        "BugSelectionListener",
        "FilterListener",
        "TreeExpansionHandler",
        "AnalysisMenuListener",
    ),
    e2e_s=599.0,
    traced_per_min=590.0,
    micro_per_min=3930.0,
    n_common_templates=185,
    rare_per_session=135,
    zipf_exponent=1.1,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=1.1,
    input_weight=0.48,
    output_weight=0.30,
    async_weight=0.10,
    unspec_weight=0.12,
    median_fast_ms=13.5,
    slow_share_target=0.016,
    median_slow_ms=250.0,
    app_code_fraction=0.5,
    native_call_fraction=0.08,
    alloc_bytes_per_ms=8 * 1024,
    sleep_fraction=0.05,
    wait_fraction=0.08,
    block_fraction=0.04,
    background_threads=(
        BackgroundSpec(
            thread_name="findbugs-analysis",
            windows=((40.0, 180.0),),
            work_class="edu.umd.cs.findbugs.ProjectLoader",
            post_period_ms=400.0,
            post_alloc_bytes=4 * 1024 * 1024,
            duty_cycle=0.95,
        ),
    ),
    misc_runnable_fraction=0.12,
    heap=HeapConfig(
        young_capacity_bytes=48 * 1024 * 1024,
        minor_pause_ms=110.0,
        major_pause_ms=380.0,
    ),
)
