"""Behaviour models of the paper's 14 benchmark applications.

Each module in this package describes one Table II application as an
:class:`~repro.apps.base.AppSpec`; :mod:`repro.apps.catalog` is the
registry. :func:`simulate_session` runs one interactive session of an
application and returns its trace.
"""

from repro.apps.base import (
    AnimationSpec,
    AppSpec,
    BackgroundSpec,
    EpisodeTemplate,
    TemplateCatalog,
)
from repro.apps.catalog import (
    APPLICATION_NAMES,
    all_specs,
    get_spec,
    table2_rows,
)
from repro.apps.sessions import (
    SessionScript,
    build_catalog,
    simulate_session,
    simulate_sessions,
)

__all__ = [
    "APPLICATION_NAMES",
    "AnimationSpec",
    "AppSpec",
    "BackgroundSpec",
    "EpisodeTemplate",
    "SessionScript",
    "TemplateCatalog",
    "all_specs",
    "build_catalog",
    "get_spec",
    "simulate_session",
    "simulate_sessions",
    "table2_rows",
]
