"""jEdit — programmer's text editor with modal-dialog waits.

Paper findings: jEdit is the synchronization outlier of Figure 8 — over
25% of its perceptible lag is the GUI thread waiting, and the stack
traces tie the waits to event processing inside jEdit's modal dialogs.
Otherwise a quiet application: only 24 perceptible episodes per session.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="JEdit",
    version="4.3pre16",
    classes=1150,
    description="Programmer's text editor",
    package="org.gjt.sp.jedit",
    content_classes=(
        "TextArea",
        "Gutter",
        "StatusBar",
        "DockableWindow",
    ),
    listener_vocab=(
        "BufferKeyListener",
        "CaretListener",
        "MacroListener",
        "SearchDialogListener",
    ),
    e2e_s=502.0,
    traced_per_min=271.0,
    micro_per_min=14050.0,
    n_common_templates=105,
    rare_per_session=85,
    zipf_exponent=1.05,
    paint_depth=1,
    paint_fanout=2,
    paint_self_ms=0.9,
    input_weight=0.55,
    output_weight=0.22,
    async_weight=0.04,
    unspec_weight=0.19,
    median_fast_ms=11.5,
    slow_share_target=0.005,
    median_slow_ms=300.0,
    app_code_fraction=0.48,
    native_call_fraction=0.07,
    alloc_bytes_per_ms=18 * 1024,
    sleep_fraction=0.10,
    wait_fraction=0.75,
    wait_median_ms=260.0,
    block_fraction=0.04,
    misc_runnable_fraction=0.07,
    heap=HeapConfig(young_capacity_bytes=96 * 1024 * 1024),
)
