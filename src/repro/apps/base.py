"""Application behaviour models.

Each of the paper's 14 Swing applications (Table II) is described here by
an :class:`AppSpec`: identity, session shape (event rates, think time),
the structure of its episode templates (which become LagAlyzer patterns),
where its code spends time (application vs library vs native), its
allocation behaviour (which drives GC), its synchronization/sleep quirks,
and its background activity (animation timers, loader threads).

A :class:`TemplateCatalog` expands the spec into concrete episode
templates — each template is a fixed interval-tree *structure* with
randomized durations, so repeated uses of one template fall into the
same LagAlyzer pattern while their lags vary, exactly the property the
paper's pattern mining exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.core.samples import StackFrame, StackTrace
from repro.vm.behavior import (
    Behavior,
    Block,
    Compute,
    NativeCall,
    Paint,
    Sleep,
    Step,
    Wait,
    async_dispatch,
    edt_stack,
    java_stack,
    listener,
    native_stack,
)
from repro.vm.components import Component, component_tree
from repro.vm.heap import HeapConfig
from repro.vm.rng import RngStream

#: Runtime-library classes sampled when an app works inside the toolkit.
LIBRARY_WORK_CLASSES = (
    "javax.swing.plaf.basic.BasicListUI",
    "javax.swing.text.PlainDocument",
    "javax.swing.JComponent",
    "java.awt.Container",
    "java.util.HashMap",
    "java.lang.String",
    "sun.font.GlyphLayout",
    "javax.swing.RepaintManager",
)

#: The Apple toolkit method responsible for combo-box blink sleeps; the
#: paper traced *all* Thread.sleep lag across benchmarks to this code.
APPLE_BLINK_STACK = StackTrace(
    (
        StackFrame("java.lang.Thread", "sleep", is_native=True),
        StackFrame("com.apple.laf.AquaComboBoxUI$1", "actionPerformed"),
        StackFrame("javax.swing.Timer", "fireActionPerformed"),
    )
    + tuple(edt_stack().frames)
)


@dataclass(frozen=True)
class AnimationSpec:
    """A background timer that periodically posts repaint events.

    JMol's molecule animation is the canonical case: a timer posts a
    repaint roughly every 40 ms, producing a stream of output episodes
    even without user input.
    """

    thread_name: str
    period_ms: float
    active_fraction: float
    """Fraction of the session during which the animation runs."""
    window_count: int = 3
    """The active time is split over this many windows."""
    render_median_ms: float = 30.0
    """Median total cost of the repaint cascade the timer triggers."""
    alloc_bytes_per_event: int = 64 * 1024


@dataclass(frozen=True)
class BackgroundSpec:
    """A background worker thread (loader, checker, indexer).

    FindBugs's project loader is the canonical case: loading runs for
    minutes in a background thread, competing with the GUI thread, and
    periodically posts progress-bar updates to the EDT.
    """

    thread_name: str
    windows: Tuple[Tuple[float, float], ...]
    """(start_s, duration_s) windows during which the worker is runnable."""
    work_class: str = ""
    """Class name sampled while the worker runs (defaults to app package)."""
    post_period_ms: Optional[float] = None
    """If set, the worker posts an async progress event at this period."""
    post_alloc_bytes: int = 256 * 1024
    """Allocation per posted progress event (progress bars allocate!)."""
    duty_cycle: float = 1.0
    """Fraction of each window the worker is actually runnable."""


@dataclass(frozen=True)
class AppSpec:
    """Complete behaviour description of one benchmark application."""

    # --- identity (Table II) -----------------------------------------
    name: str
    version: str
    classes: int
    description: str
    package: str
    content_classes: Tuple[str, ...]
    listener_vocab: Tuple[str, ...]

    # --- session shape ------------------------------------------------
    e2e_s: float
    """Target end-to-end session duration in seconds."""
    traced_per_min: float
    """Traced (>= 3 ms) episodes per minute of session time."""
    micro_per_min: float
    """Sub-filter episodes per minute of session time."""
    mean_micro_ms: float = 0.5

    # --- pattern structure ---------------------------------------------
    n_common_templates: int = 60
    rare_per_session: int = 40
    zipf_exponent: float = 1.1

    # --- component tree -------------------------------------------------
    paint_depth: int = 2
    paint_fanout: int = 2
    paint_self_ms: float = 1.0
    paint_alloc_bytes: int = 24 * 1024
    full_window_paint_chance: float = 0.3
    """Probability an output template repaints the whole window (deep
    cascade) rather than a dirty region — GanttProject-style apps set
    this high, which is what drives their Descs/Depth columns up."""
    paint_fanout_levels: Optional[int] = None
    """Content-tree levels that use the full fanout (see
    :func:`repro.vm.components.component_tree`)."""
    max_nested_listeners: int = 5
    """Upper bound on nested observer notifications per input template
    (model updates notifying further listeners)."""
    input_paint_chance: float = 0.6
    """Probability an input template repaints a dirty region."""

    # --- trigger mix (relative template weights) -------------------------
    input_weight: float = 0.45
    output_weight: float = 0.35
    async_weight: float = 0.05
    unspec_weight: float = 0.15

    # --- durations --------------------------------------------------------
    median_fast_ms: float = 12.0
    slow_share_target: float = 0.03
    """Target fraction of (catalog-driven) episodes that come from slow
    templates — calibrates each app's perceptible-episode rate."""
    protect_top_ranks: int = 2
    """The most frequent templates stay fast unless this is 0 (apps like
    GanttProject whose *dominant* patterns are the slow ones)."""
    rare_slow_chance: float = 0.1
    """Probability a one-off template is slow (drives 'always'
    occurrence classes via perceptible singletons, Figure 4)."""
    slow_trigger_bias: Optional[str] = None
    """When set ("input"/"output"/"async"/"unspec"), slow templates are
    preferentially drawn from this trigger class — e.g. ArgoUML's
    perceptible episodes are predominantly input episodes."""
    median_slow_ms: float = 180.0
    duration_sigma: float = 0.55

    # --- location -----------------------------------------------------------
    app_code_fraction: float = 0.5
    """Probability a compute step executes application (vs library) code."""
    native_call_fraction: float = 0.10
    """Probability a template includes a JNI call."""
    native_median_ms: float = 6.0
    alloc_bytes_per_ms: int = 24 * 1024
    explicit_gc_per_min: float = 0.0
    """Rate of System.gc()-only episodes (Arabeske's performance bug)."""

    # --- causes (synchronization and sleep) -----------------------------------
    sleep_fraction: float = 0.0
    sleep_median_ms: float = 140.0
    wait_fraction: float = 0.0
    wait_median_ms: float = 160.0
    block_fraction: float = 0.0
    block_median_ms: float = 90.0

    # --- environment ------------------------------------------------------------
    animations: Tuple[AnimationSpec, ...] = ()
    background_threads: Tuple[BackgroundSpec, ...] = ()
    misc_runnable_fraction: float = 0.08
    """Duty cycle of the app's miscellaneous worker thread (image
    fetchers, file watchers) — the source of the >1 mean runnable-thread
    counts seen over all episodes in Figure 7."""
    heap: HeapConfig = field(default_factory=HeapConfig)

    def validate(self) -> None:
        if self.e2e_s <= 0:
            raise SimulationError(f"{self.name}: e2e_s must be positive")
        if self.traced_per_min < 0 or self.micro_per_min < 0:
            raise SimulationError(f"{self.name}: rates cannot be negative")
        weights = (
            self.input_weight,
            self.output_weight,
            self.async_weight,
            self.unspec_weight,
        )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise SimulationError(f"{self.name}: bad trigger weights")
        if not self.content_classes or not self.listener_vocab:
            raise SimulationError(f"{self.name}: empty symbol vocabulary")


@dataclass
class EpisodeTemplate:
    """A fixed episode structure with randomized durations."""

    name: str
    trigger: str
    behavior: Behavior
    weight: float


class TemplateCatalog:
    """The expanded set of episode templates for one application."""

    def __init__(
        self, spec: AppSpec, rng: RngStream, window: Component
    ) -> None:
        spec.validate()
        self.spec = spec
        self.window = window
        self._rng = rng
        self.common: List[EpisodeTemplate] = []
        self._rare_counter = 0
        weights = rng.zipf_weights(
            spec.n_common_templates, spec.zipf_exponent
        )
        triggers = self._assign_triggers(weights)
        slow_ranks = self._choose_slow_ranks(weights, triggers)
        for index in range(spec.n_common_templates):
            template = self._make_template(
                f"{spec.name}.t{index}",
                weights[index],
                trigger=triggers[index],
                slow=index in slow_ranks,
                rare=False,
            )
            self.common.append(template)

    def _assign_triggers(self, weights: Sequence[float]) -> List[str]:
        """Assign a trigger class to each template rank.

        Greedy deficit balancing: ranks are processed heaviest first and
        each takes the trigger class furthest below its target *episode*
        share — so the spec's trigger weights come out as fractions of
        episodes, not merely fractions of templates (a Zipf head template
        covers orders of magnitude more episodes than a tail one).
        """
        spec = self.spec
        total_weight = sum(weights)
        target_total = (
            spec.input_weight
            + spec.output_weight
            + spec.async_weight
            + spec.unspec_weight
        )
        targets = {
            "input": spec.input_weight / target_total,
            "output": spec.output_weight / target_total,
            "async": spec.async_weight / target_total,
            "unspec": spec.unspec_weight / target_total,
        }
        realized = {trigger: 0.0 for trigger in targets}
        triggers: List[str] = []
        for weight in weights:
            trigger = max(
                targets, key=lambda t: targets[t] - realized[t]
            )
            triggers.append(trigger)
            realized[trigger] += weight / total_weight
        return triggers

    def _choose_slow_ranks(
        self, weights: Sequence[float], triggers: Sequence[str]
    ) -> set:
        """Pick which templates are slow so their episode share hits the
        spec's ``slow_share_target``.

        Candidates are drawn in shuffled order from outside the
        protected top ranks; marking stops once the cumulative weight
        share reaches the target. This keeps the perceptible-episode
        rate calibrated while leaving *which* operations are slow to
        chance, as in a real application.
        """
        spec = self.spec
        if spec.slow_share_target <= 0:
            return set()
        total = sum(weights)
        # Structureless ("unspec") templates never carry the slow role:
        # in the paper, unspecified *perceptible* episodes arise from
        # garbage collections (Arabeske), not from slow empty handlers.
        # Remaining candidates are grouped by trigger, heaviest first,
        # and slow slots are dealt to triggers by deficit against their
        # target mix, so the perceptible trigger mix of Figure 5 tracks
        # the spec instead of the luck of the draw.
        by_trigger: dict = {"input": [], "output": [], "async": []}
        for index in range(spec.protect_top_ranks, len(weights)):
            if triggers[index] in by_trigger:
                by_trigger[triggers[index]].append(index)
        for group in by_trigger.values():
            group.sort(key=lambda i: -weights[i])
        targets = self._slow_trigger_targets()
        realized = {trigger: 0.0 for trigger in targets}
        chosen: set = set()
        remaining = spec.slow_share_target
        while remaining > spec.slow_share_target * 0.05:
            open_triggers = [t for t in targets if by_trigger[t]]
            if not open_triggers:
                break
            trigger = max(
                open_triggers, key=lambda t: targets[t] - realized[t]
            )
            group = by_trigger[trigger]
            # Take the heaviest candidate that does not overshoot the
            # calibrated share; drop candidates that are too heavy.
            while group and weights[group[0]] / total > remaining * 1.2:
                group.pop(0)
            if not group:
                targets = {t: v for t, v in targets.items() if t != trigger}
                if not targets:
                    break
                continue
            index = group.pop(0)
            share = weights[index] / total
            chosen.add(index)
            remaining -= share
            realized[trigger] += share / max(spec.slow_share_target, 1e-12)
        return chosen

    def _slow_trigger_targets(self) -> dict:
        """Desired trigger mix among slow templates (normalized)."""
        spec = self.spec
        if spec.slow_trigger_bias in ("input", "output", "async"):
            targets = {"input": 0.1, "output": 0.1, "async": 0.02}
            targets[spec.slow_trigger_bias] = 0.9
        else:
            # Unbiased apps still skew perceptible episodes toward
            # output: rendering is where interactive applications lose
            # most of their perceptible time (the paper's mean is 47%
            # output vs 40% input).
            targets = {
                "input": spec.input_weight * 0.7,
                "output": spec.output_weight * 2.5,
                "async": spec.async_weight * 2.0,
            }
        total = sum(targets.values())
        return {trigger: value / total for trigger, value in targets.items()}

    # ------------------------------------------------------------------
    # Template construction
    # ------------------------------------------------------------------

    def pick_common(self, rng: RngStream) -> EpisodeTemplate:
        """Draw a common template by Zipf weight."""
        return rng.weighted_choice(
            self.common, [t.weight for t in self.common]
        )

    def make_rare(self) -> EpisodeTemplate:
        """A one-off template (a singleton pattern when used once)."""
        self._rare_counter += 1
        rng = self._rng
        trigger = rng.weighted_choice(
            ("input", "output", "async", "unspec"),
            (
                self.spec.input_weight,
                self.spec.output_weight,
                self.spec.async_weight,
                self.spec.unspec_weight,
            ),
        )
        return self._make_template(
            f"{self.spec.name}.rare{self._rare_counter}",
            1.0,
            trigger=trigger,
            slow=rng.chance(self.spec.rare_slow_chance),
            rare=True,
        )

    def _make_template(
        self, name: str, weight: float, trigger: str, slow: bool, rare: bool
    ) -> EpisodeTemplate:
        builder = {
            "input": self._input_template,
            "output": self._output_template,
            "async": self._async_template,
            "unspec": self._unspec_template,
        }[trigger]
        behavior = builder(name, slow, rare)
        return EpisodeTemplate(name, trigger, behavior, weight)

    # -- shared pieces ---------------------------------------------------

    def _app_stack(self) -> StackTrace:
        """A compute stack executing application code."""
        rng = self._rng
        class_name = (
            f"{self.spec.package}."
            f"{rng.choice(self.spec.content_classes)}"
        )
        method = rng.choice(("update", "compute", "layout", "apply"))
        return java_stack(class_name, method)

    def _library_stack(self) -> StackTrace:
        """A compute stack executing runtime-library code."""
        rng = self._rng
        class_name = rng.choice(LIBRARY_WORK_CLASSES)
        method = rng.choice(("process", "getText", "validate", "lookup"))
        return java_stack(class_name, method)

    def _compute(self, median_ms: float) -> List[Step]:
        """Computation steps whose app/library time split matches the
        spec's ``app_code_fraction``.

        The split is deterministic per step pair (not a per-template
        coin flip): with only a handful of slow templates per app, a
        random draw would make the perceptible location mix of Figure 6
        an accident of which templates happened to be slow.
        """
        spec = self.spec
        app_ms = median_ms * spec.app_code_fraction
        lib_ms = median_ms - app_ms
        steps: List[Step] = []
        if app_ms > 0:
            steps.append(
                Compute(
                    app_ms,
                    self._app_stack(),
                    sigma=spec.duration_sigma,
                    alloc_bytes_per_ms=spec.alloc_bytes_per_ms,
                )
            )
        if lib_ms > 0:
            steps.append(
                Compute(
                    lib_ms,
                    self._library_stack(),
                    sigma=spec.duration_sigma,
                    alloc_bytes_per_ms=spec.alloc_bytes_per_ms,
                )
            )
        return steps

    def _cause_steps(self, slow: bool) -> List[Step]:
        """Optional sleep/wait/block steps per the spec's cause mix.

        Slow templates carry the causes: the paper finds sleeps, waits,
        and blocking concentrated in *perceptible* episodes while being
        nearly invisible over all episodes (Figure 8).
        """
        if not slow:
            return []
        spec = self.spec
        rng = self._rng
        steps: List[Step] = []
        if rng.chance(spec.sleep_fraction):
            steps.append(
                Sleep(spec.sleep_median_ms, APPLE_BLINK_STACK, sigma=0.3)
            )
        if rng.chance(spec.wait_fraction):
            stack = edt_stack(
                StackFrame("java.lang.Object", "wait", is_native=True),
                StackFrame(f"{spec.package}.ModalDialog", "show"),
            )
            steps.append(Wait(spec.wait_median_ms, stack, sigma=0.4))
        if rng.chance(spec.block_fraction):
            stack = edt_stack(
                StackFrame("sun.awt.SunToolkit", "awtLock"),
                StackFrame("java.awt.GraphicsEnvironment", "getConfiguration"),
            )
            steps.append(Block(spec.block_median_ms, stack, sigma=0.4))
        return steps

    def _maybe_native(self, slow: bool) -> List[Step]:
        spec = self.spec
        rng = self._rng
        if not rng.chance(spec.native_call_fraction):
            return []
        median = spec.native_median_ms * (4.0 if slow else 1.0)
        symbol_class = rng.choice(
            (
                "sun.java2d.loops.DrawLine",
                "sun.java2d.loops.DrawGlyphList",
                "sun.java2d.loops.Blit",
                "sun.awt.image.ImagingLib",
            )
        )
        method = "DrawLine" if "DrawLine" in symbol_class else "nativeRender"
        return [
            NativeCall(
                f"{symbol_class}.{method}",
                median,
                native_stack(symbol_class, method),
                sigma=self.spec.duration_sigma,
                alloc_bytes_per_ms=512,
            )
        ]

    def _paint_subtree(self, name: str, rare: bool) -> Component:
        """Choose what gets repainted: the window, an interior subtree,
        or a region specific to this template.

        Rare templates paint a one-off dialog whose component classes
        exist nowhere else, so their episodes form singleton patterns.
        Half the common templates paint a template-specific dirty
        region (distinct structure, hence a distinct pattern); the rest
        share the main window or one of its interior subtrees, which is
        what makes full-window repaints the high-count patterns.
        """
        rng = self._rng
        suffix = name.rsplit(".", 1)[-1]
        if rare:
            return component_tree(
                self.spec.package,
                (f"Dialog_{suffix}",)
                + tuple(rng.choice(self.spec.content_classes) for _ in range(2)),
                depth=rng.randint(2, 3),
                fanout=rng.randint(1, 2),
                self_paint_ms=self.spec.paint_self_ms,
                alloc_bytes_per_paint=self.spec.paint_alloc_bytes,
            )
        if rng.chance(self.spec.full_window_paint_chance):
            return self.window
        if rng.chance(0.7):
            # A template-specific dirty region of the UI. Wide fanout is
            # only allowed for shallow regions so sizes stay realistic.
            region_depth = rng.randint(2, max(3, self.spec.paint_depth))
            region_fanout = rng.randint(1, 2) if region_depth <= 3 else 1
            return component_tree(
                self.spec.package,
                (f"Region_{suffix}",)
                + tuple(rng.choice(self.spec.content_classes) for _ in range(2)),
                depth=region_depth,
                fanout=region_fanout,
                self_paint_ms=self.spec.paint_self_ms,
                alloc_bytes_per_paint=self.spec.paint_alloc_bytes,
            )
        interior = [c for c in self.window.walk() if c.children]
        return rng.choice(interior) if interior else self.window

    # -- per-trigger template shapes -----------------------------------------

    def _input_template(self, name: str, slow: bool, rare: bool) -> Behavior:
        spec = self.spec
        rng = self._rng
        suffix = name.rsplit(".", 1)[-1]
        listener_class = (
            f"{spec.package}."
            f"{rng.choice(spec.listener_vocab)}_{suffix}"
        )
        median = spec.median_slow_ms if slow else spec.median_fast_ms
        # Input handlers fan out through the app's own observer chains:
        # model updates notify further listeners, nested inside the
        # top-level notification. The handler's time budget is split
        # between its own work and the nested notifications.
        nested_count = rng.randint(0, spec.max_nested_listeners)
        own_share = 1.0 / (1.0 + 0.3 * nested_count)
        body: List[Step] = list(self._compute(median * own_share))
        for nested_index in range(nested_count):
            nested_symbol = (
                f"{spec.package}."
                f"{rng.choice(spec.listener_vocab)}_{suffix}n{nested_index}"
                f".propertyChange"
            )
            body.append(
                listener(
                    nested_symbol,
                    self._compute(median * own_share * 0.3),
                )
            )
        body.extend(self._maybe_native(slow))
        body.extend(self._cause_steps(slow))
        if rng.chance(spec.input_paint_chance):
            # Input that dirties the view repaints a small subtree.
            subtree = self._paint_subtree(name, rare)
            body.append(
                Paint(
                    subtree,
                    scale=self._paint_scale(subtree, spec.median_fast_ms * 0.5),
                    sigma=spec.duration_sigma,
                    max_depth=4,
                    library_split=1.0 - spec.app_code_fraction,
                )
            )
        return Behavior([listener(f"{listener_class}.actionPerformed", body)])

    @staticmethod
    def _paint_scale(subtree: Component, target_total_ms: float) -> float:
        """Scale factor so a cascade over ``subtree`` costs the target.

        Without this, small component trees would produce cascades that
        fall under the tracer's 3 ms filter and vanish from the trace.
        """
        return target_total_ms / max(subtree.total_paint_ms(), 0.1)

    def _output_template(self, name: str, slow: bool, rare: bool) -> Behavior:
        spec = self.spec
        target_ms = spec.median_slow_ms if slow else spec.median_fast_ms
        subtree = self._paint_subtree(name, rare)
        steps: List[Step] = [
            Paint(
                subtree,
                scale=self._paint_scale(subtree, target_ms),
                sigma=spec.duration_sigma,
                library_split=1.0 - spec.app_code_fraction,
            )
        ]
        steps.extend(self._maybe_native(slow))
        steps.extend(self._cause_steps(slow))
        return Behavior(steps)

    def _async_template(self, name: str, slow: bool, rare: bool) -> Behavior:
        spec = self.spec
        suffix = name.rsplit(".", 1)[-1]
        median = spec.median_slow_ms if slow else spec.median_fast_ms
        body: List[Step] = list(self._compute(median * 0.8))
        body.extend(self._cause_steps(slow))
        symbol = f"{spec.package}.ModelUpdate_{suffix}.run"
        return Behavior([async_dispatch(symbol, body)])

    def _unspec_template(self, name: str, slow: bool, rare: bool) -> Behavior:
        """An episode whose dispatch has no (trigger) children.

        The handler does its work directly in the dispatch — nothing
        long enough to pass the 3 ms sub-interval filter — so LagAlyzer
        sees an episode without internal structure.
        """
        spec = self.spec
        median = spec.median_slow_ms if slow else spec.median_fast_ms
        return Behavior(self._compute(median * 0.6))
