"""NetBeans (Java SE) — the largest application of the suite.

Paper findings: with over 45000 classes NetBeans is the heavyweight
bound of the study. It is one of only three applications whose mean
runnable-thread count exceeds one during perceptible episodes — its
background scanners and indexers compete with the GUI thread. Its
framework architecture produces a large, diverse pattern population.
"""

from repro.apps.base import AppSpec, BackgroundSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="NetBeans",
    version="6.7",
    classes=45367,
    description="Development environment",
    package="org.netbeans",
    content_classes=(
        "EditorPane",
        "ProjectTree",
        "NavigatorPanel",
        "OutputWindow",
        "PalettePanel",
        "TaskListView",
    ),
    listener_vocab=(
        "EditorKeyListener",
        "ProjectActionListener",
        "CodeCompletionListener",
        "RefactoringListener",
        "DebuggerListener",
    ),
    e2e_s=398.0,
    traced_per_min=470.0,
    micro_per_min=46000.0,
    n_common_templates=520,
    rare_per_session=400,
    zipf_exponent=0.85,
    paint_depth=3,
    max_nested_listeners=8,
    paint_fanout=2,
    paint_self_ms=1.4,
    input_weight=0.50,
    output_weight=0.28,
    async_weight=0.07,
    unspec_weight=0.15,
    median_fast_ms=16.0,
    slow_share_target=0.036,
    median_slow_ms=300.0,
    app_code_fraction=0.40,
    native_call_fraction=0.08,
    alloc_bytes_per_ms=40 * 1024,
    sleep_fraction=0.10,
    wait_fraction=0.08,
    block_fraction=0.05,
    background_threads=(
        BackgroundSpec(
            thread_name="netbeans-scanner",
            windows=((20.0, 90.0), (220.0, 70.0)),
            work_class="org.netbeans.modules.parsing.RepositoryUpdater",
            duty_cycle=0.9,
        ),
    ),
    misc_runnable_fraction=0.18,
    heap=HeapConfig(
        young_capacity_bytes=48 * 1024 * 1024,
        minor_pause_ms=26.0,
    ),
)
