"""GanttProject — deeply nested paint cascades, often slow.

Paper findings: GanttProject has the richest interval trees of the suite
(mean 18 descendants, depth 12) because a paint request to its main
window recurses through a complex, deeply nested component hierarchy
(Figure 2). It also has the most perceptible episodes (706 per session,
168 per in-episode minute) and the highest fraction of always-slow
patterns (57%), inflated by its many slow singleton patterns.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="GanttProject",
    version="2.0.9",
    classes=5288,
    description="Gantt chart editor",
    package="net.sourceforge.ganttproject",
    content_classes=(
        "GanttTree",
        "ChartArea",
        "TaskGrid",
        "TimelinePanel",
        "ResourcePanel",
        "ScrollingBar",
        "TaskCell",
        "DependencyLayer",
    ),
    listener_vocab=(
        "TaskSelectionListener",
        "ChartMouseListener",
        "CalendarListener",
        "ResourceListener",
        "ZoomListener",
    ),
    e2e_s=523.0,
    traced_per_min=294.0,
    micro_per_min=14560.0,
    n_common_templates=337,
    rare_per_session=520,
    zipf_exponent=1.0,
    paint_depth=8,
    paint_fanout=2,
    paint_fanout_levels=3,
    paint_self_ms=3.0,
    full_window_paint_chance=0.4,
    max_nested_listeners=8,
    input_paint_chance=0.8,
    input_weight=0.32,
    output_weight=0.52,
    async_weight=0.04,
    unspec_weight=0.12,
    median_fast_ms=26.0,
    slow_share_target=0.22,
    protect_top_ranks=0,
    rare_slow_chance=0.62,
    slow_trigger_bias="output",
    median_slow_ms=240.0,
    app_code_fraction=0.55,
    native_call_fraction=0.10,
    alloc_bytes_per_ms=30 * 1024,
    sleep_fraction=0.08,
    wait_fraction=0.06,
    block_fraction=0.05,
    misc_runnable_fraction=0.08,
    heap=HeapConfig(
        young_capacity_bytes=56 * 1024 * 1024,
        minor_pause_ms=20.0,
    ),
)
