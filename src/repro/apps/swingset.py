"""SwingSet — Sun's Swing component demo.

A tour across every Swing component: tabs, tables, trees, sliders,
internal frames. Episodes are short and diverse (the demo switches
component panels constantly, giving a broad pattern population), with
few perceptible outliers.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="SwingSet",
    version="2",
    classes=131,
    description="Swing component demo",
    package="swingset",
    content_classes=(
        "DemoPanel",
        "TabbedPane",
        "TableDemo",
        "TreeDemo",
        "SliderDemo",
    ),
    listener_vocab=(
        "TabChangeListener",
        "TableSelectionListener",
        "SliderListener",
        "ThemeListener",
    ),
    e2e_s=384.0,
    traced_per_min=673.0,
    micro_per_min=34300.0,
    n_common_templates=380,
    rare_per_session=230,
    zipf_exponent=0.95,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=1.0,
    input_weight=0.45,
    output_weight=0.33,
    async_weight=0.05,
    unspec_weight=0.17,
    median_fast_ms=12.0,
    slow_share_target=0.010,
    median_slow_ms=220.0,
    app_code_fraction=0.35,
    native_call_fraction=0.08,
    alloc_bytes_per_ms=22 * 1024,
    sleep_fraction=0.12,
    wait_fraction=0.03,
    block_fraction=0.04,
    misc_runnable_fraction=0.09,
    heap=HeapConfig(young_capacity_bytes=80 * 1024 * 1024),
)
