"""FreeMind — mind-mapping editor that is almost never slow.

Paper findings: FreeMind is the well-behaved extreme of Figure 4 — 92%
of its patterns never contain a perceptible episode (only 26 of 3462
traced episodes are perceptible). Of the lag it does have, 12% is
monitor contention whose stack traces point into the runtime library's
display-configuration code.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="FreeMind",
    version="0.8.1",
    classes=1909,
    description="Mind mapping editor",
    package="freemind",
    content_classes=(
        "MapView",
        "NodeView",
        "IconToolbar",
        "NoteEditor",
    ),
    listener_vocab=(
        "NodeMouseListener",
        "MapScrollListener",
        "NodeEditListener",
        "IconListener",
    ),
    e2e_s=524.0,
    traced_per_min=396.0,
    micro_per_min=37200.0,
    n_common_templates=160,
    rare_per_session=135,
    zipf_exponent=1.1,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=0.9,
    input_weight=0.48,
    output_weight=0.32,
    async_weight=0.04,
    unspec_weight=0.16,
    median_fast_ms=12.0,
    slow_share_target=0.005,
    slow_trigger_bias="input",
    median_slow_ms=220.0,
    app_code_fraction=0.5,
    native_call_fraction=0.07,
    alloc_bytes_per_ms=18 * 1024,
    sleep_fraction=0.10,
    wait_fraction=0.06,
    block_fraction=0.50,
    block_median_ms=120.0,
    misc_runnable_fraction=0.08,
    heap=HeapConfig(young_capacity_bytes=96 * 1024 * 1024),
)
