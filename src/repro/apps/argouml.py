"""ArgoUML — UML CASE tool with a high allocation rate.

Paper findings: 78% of ArgoUML's perceptible episodes are input episodes
spread over many patterns — updates to the UML model trigger expensive
computations and checks. Roughly 26% of its perceptible lag is due to
garbage collection, but GC is not concentrated in long episodes: over
*all* episodes ArgoUML still spends 16% of time in GC, indicating a
generally high allocation rate with frequent minor collections.
"""

from repro.apps.base import AppSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="ArgoUML",
    version="0.28",
    classes=5349,
    description="UML CASE tool",
    package="org.argouml",
    content_classes=(
        "DiagramCanvas",
        "ExplorerTree",
        "PropertyPanel",
        "CritiqueList",
        "ToolPalette",
        "StyleSheet",
    ),
    listener_vocab=(
        "ModelElementListener",
        "DiagramMouseListener",
        "ExplorerSelectionListener",
        "CritiqueListener",
        "PropertyChangeHandler",
        "WizardListener",
    ),
    e2e_s=630.0,
    traced_per_min=860.0,
    micro_per_min=18700.0,
    n_common_templates=1100,
    rare_per_session=550,
    zipf_exponent=0.95,
    paint_depth=3,
    max_nested_listeners=8,
    paint_fanout=2,
    paint_self_ms=1.2,
    input_weight=0.55,
    output_weight=0.28,
    async_weight=0.05,
    unspec_weight=0.12,
    median_fast_ms=10.0,
    slow_share_target=0.023,
    slow_trigger_bias="input",
    median_slow_ms=300.0,
    app_code_fraction=0.52,
    native_call_fraction=0.08,
    alloc_bytes_per_ms=110 * 1024,
    sleep_fraction=0.10,
    wait_fraction=0.08,
    block_fraction=0.05,
    misc_runnable_fraction=0.10,
    heap=HeapConfig(
        young_capacity_bytes=24 * 1024 * 1024,
        minor_pause_ms=42.0,
        major_pause_ms=320.0,
        old_capacity_bytes=384 * 1024 * 1024,
    ),
)
