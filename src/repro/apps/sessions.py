"""Interactive-session scripting: from an AppSpec to a session trace.

The paper's methodology performs four similar interactive sessions per
application, each around eight minutes of realistic use. This module
reproduces that: it expands an :class:`~repro.apps.base.AppSpec` into a
time-ordered stream of GUI events (user actions with think time, timer
animations, background-thread posts, micro-event bursts) plus the
background threads' timelines, and runs them on a
:class:`~repro.vm.jvm.SimulatedJVM`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.intervals import NS_PER_MS, NS_PER_S
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace
from repro.vm.behavior import (
    Behavior,
    Compute,
    ExplicitGc,
    Paint,
    async_dispatch,
    java_stack,
)
from repro.vm.jvm import (
    MicroBurst,
    PostedEvent,
    SessionConfig,
    SessionEvent,
    SimulatedJVM,
)
from repro.vm.rng import RngStream
from repro.vm.threads import ThreadTimeline
from repro.apps.base import AppSpec, EpisodeTemplate, TemplateCatalog
from repro.vm.components import Component, component_tree

#: Bucket width for aggregating sub-filter micro-episodes.
_MICRO_BUCKET_S = 5.0


def build_window(spec: AppSpec) -> Component:
    """The application's main window component tree."""
    return component_tree(
        spec.package,
        spec.content_classes,
        depth=spec.paint_depth,
        fanout=spec.paint_fanout,
        self_paint_ms=spec.paint_self_ms,
        alloc_bytes_per_paint=spec.paint_alloc_bytes,
        fanout_levels=spec.paint_fanout_levels,
    )


def build_catalog(spec: AppSpec, seed: int) -> TemplateCatalog:
    """The app's template catalog.

    Derived from the app-level seed only (not the session index), so the
    same patterns recur across an application's four sessions — the
    property LagAlyzer's multi-trace pattern integration relies on.
    """
    app_rng = RngStream(seed).fork(spec.name).fork("catalog")
    window = build_window(spec)
    return TemplateCatalog(spec, app_rng, window)


class SessionScript:
    """Generates the event stream and background timelines of a session."""

    def __init__(
        self,
        spec: AppSpec,
        catalog: TemplateCatalog,
        session_index: int,
        seed: int,
        scale: float = 1.0,
    ) -> None:
        if scale <= 0 or scale > 1:
            raise ValueError("scale must be in (0, 1]")
        self.spec = spec
        self.catalog = catalog
        self.session_index = session_index
        self.scale = scale
        self.duration_s = spec.e2e_s * scale
        self._rng = (
            RngStream(seed).fork(spec.name).fork(f"session{session_index}")
        )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def events(self) -> List[SessionEvent]:
        """All session events, unsorted (the JVM sorts by time)."""
        result: List[SessionEvent] = []
        result.extend(self._user_events())
        result.extend(self._animation_events())
        result.extend(self._background_posts())
        result.extend(self._explicit_gc_events())
        result.extend(self._micro_bursts())
        return result

    def _user_events(self) -> List[SessionEvent]:
        """Traced user actions: think-time arrivals over the session."""
        spec = self.spec
        rng = self._rng.fork("user")
        mean_gap_s = 60.0 / max(spec.traced_per_min, 1e-9)
        rare_budget = max(0, round(spec.rare_per_session * self.scale))
        expected_events = max(self.duration_s / mean_gap_s, 1.0)
        # Spread the rare (one-off) actions across the session: the
        # chance is sized so the budget is roughly used up by the end.
        rare_chance = min(0.5, 1.15 * rare_budget / expected_events)
        events: List[SessionEvent] = []
        first_uses: Dict[str, bool] = {}
        t_s = rng.exponential_ms(mean_gap_s * 1000.0) / 1000.0
        while t_s < self.duration_s:
            if rare_budget > 0 and rng.chance(rare_chance):
                template = self.catalog.make_rare()
                rare_budget -= 1
            else:
                template = self.catalog.pick_common(rng)
            behavior = self._with_init_cost(template, first_uses, rng)
            events.append(
                PostedEvent(round(t_s * NS_PER_S), behavior)
            )
            t_s += rng.exponential_ms(mean_gap_s * 1000.0) / 1000.0
        return events

    def _with_init_cost(
        self,
        template: EpisodeTemplate,
        first_uses: Dict[str, bool],
        rng: RngStream,
    ) -> Behavior:
        """First use of a template may pay a class-loading surcharge.

        This is the mechanism behind "once" patterns (Figure 4): some
        initialization activity slows down only a pattern's first
        episode.
        """
        spec = self.spec
        if template.name in first_uses:
            return template.behavior
        first_uses[template.name] = True
        if not rng.chance(0.02):
            return template.behavior
        loader_stack = java_stack("java.lang.ClassLoader", "loadClass")
        init = Compute(
            130.0,
            loader_stack,
            sigma=0.4,
            alloc_bytes_per_ms=spec.alloc_bytes_per_ms,
        )
        return Behavior([init] + list(template.behavior.steps))

    def _animation_events(self) -> List[SessionEvent]:
        """Timer-driven repaints posted through the repaint manager.

        The async-wrapping-paint structure is deliberate: it reproduces
        the Swing repaint-manager quirk of footnote 3, and LagAlyzer's
        trigger analysis must reclassify these episodes as output.
        """
        events: List[SessionEvent] = []
        for animation in self.spec.animations:
            rng = self._rng.fork(f"anim/{animation.thread_name}")
            window_cost_ms = max(self.catalog.window.total_paint_ms(), 0.1)
            behavior = Behavior(
                [
                    async_dispatch(
                        "javax.swing.RepaintManager.paintDirtyRegions",
                        [
                            Paint(
                                self.catalog.window,
                                scale=animation.render_median_ms / window_cost_ms,
                                sigma=self.spec.duration_sigma,
                                library_split=1.0 - self.spec.app_code_fraction,
                            )
                        ],
                    )
                ]
            )
            for start_s, end_s in self._animation_windows(animation, rng):
                t_s = start_s
                while t_s < end_s:
                    events.append(
                        PostedEvent(round(t_s * NS_PER_S), behavior)
                    )
                    t_s += animation.period_ms / 1000.0
        return events

    def _animation_windows(
        self, animation, rng: RngStream
    ) -> List[Tuple[float, float]]:
        """Split the animation's active time over its windows."""
        total_active = self.duration_s * animation.active_fraction
        count = max(1, animation.window_count)
        window_len = total_active / count
        starts = sorted(
            rng.uniform(0, max(self.duration_s - window_len, 0.0))
            for _ in range(count)
        )
        windows: List[Tuple[float, float]] = []
        for start in starts:
            end = min(start + window_len, self.duration_s)
            if windows and start < windows[-1][1]:
                start = windows[-1][1]
            if end > start:
                windows.append((start, end))
        return windows

    def _background_posts(self) -> List[SessionEvent]:
        """Progress updates posted by background workers."""
        events: List[SessionEvent] = []
        for worker in self.spec.background_threads:
            if worker.post_period_ms is None:
                continue
            duration_ms = 4.0
            alloc_rate = int(worker.post_alloc_bytes / duration_ms)
            stack = java_stack(
                "javax.swing.plaf.basic.BasicProgressBarUI", "paintDeterminate"
            )
            behavior = Behavior(
                [
                    async_dispatch(
                        f"{self.spec.package}.ProgressUpdate.run",
                        [
                            Compute(
                                duration_ms,
                                stack,
                                sigma=0.3,
                                alloc_bytes_per_ms=alloc_rate,
                            )
                        ],
                    )
                ]
            )
            for start_s, window_s in worker.windows:
                start_s *= self.scale
                window_s *= self.scale
                t_s = start_s
                while t_s < min(start_s + window_s, self.duration_s):
                    events.append(
                        PostedEvent(round(t_s * NS_PER_S), behavior)
                    )
                    t_s += worker.post_period_ms / 1000.0
        return events

    def _explicit_gc_events(self) -> List[SessionEvent]:
        """System.gc()-only episodes (the Arabeske performance bug)."""
        spec = self.spec
        if spec.explicit_gc_per_min <= 0:
            return []
        rng = self._rng.fork("explicitgc")
        behavior = Behavior(
            [
                Compute(
                    0.8,
                    java_stack(f"{spec.package}.TextureCache", "flush"),
                    sigma=0.2,
                    alloc_bytes_per_ms=1024,
                ),
                ExplicitGc(),
            ]
        )
        events: List[SessionEvent] = []
        mean_gap_s = 60.0 / spec.explicit_gc_per_min
        t_s = rng.exponential_ms(mean_gap_s * 1000.0) / 1000.0
        while t_s < self.duration_s:
            events.append(PostedEvent(round(t_s * NS_PER_S), behavior))
            t_s += rng.exponential_ms(mean_gap_s * 1000.0) / 1000.0
        return events

    def _micro_bursts(self) -> List[SessionEvent]:
        """Sub-filter episodes (typing, mouse moves) in aggregate."""
        spec = self.spec
        if spec.micro_per_min <= 0:
            return []
        rng = self._rng.fork("micro")
        per_bucket_mean = spec.micro_per_min * _MICRO_BUCKET_S / 60.0
        events: List[SessionEvent] = []
        t_s = 0.0
        while t_s < self.duration_s:
            count = rng.poisson(per_bucket_mean)
            if count > 0:
                busy_ms = count * spec.mean_micro_ms
                alloc = int(busy_ms * spec.alloc_bytes_per_ms * 0.25)
                burst_time_s = t_s + rng.uniform(0, _MICRO_BUCKET_S)
                events.append(
                    MicroBurst(round(burst_time_s * NS_PER_S), count, alloc)
                )
            t_s += _MICRO_BUCKET_S
        return events

    # ------------------------------------------------------------------
    # Background timelines
    # ------------------------------------------------------------------

    def background_timelines(self) -> List[ThreadTimeline]:
        """Timelines of every background thread of this session."""
        timelines: List[ThreadTimeline] = []
        timelines.extend(self._worker_timelines())
        timelines.extend(self._animation_timelines())
        misc = self._misc_worker_timeline()
        if misc is not None:
            timelines.append(misc)
        return timelines

    def _worker_timelines(self) -> List[ThreadTimeline]:
        spec = self.spec
        timelines = []
        for worker in spec.background_threads:
            timeline = ThreadTimeline(worker.thread_name)
            work_class = worker.work_class or f"{spec.package}.Worker"
            stack = StackTrace(
                (
                    StackFrame(work_class, "run"),
                    StackFrame("java.lang.Thread", "run"),
                )
            )
            rng = self._rng.fork(f"worker/{worker.thread_name}")
            for start_s, window_s in worker.windows:
                start_ns = round(start_s * self.scale * NS_PER_S)
                end_ns = round(
                    min((start_s + window_s) * self.scale, self.duration_s)
                    * NS_PER_S
                )
                self._fill_duty_cycle(
                    timeline, start_ns, end_ns, worker.duty_cycle, stack, rng
                )
            timelines.append(timeline)
        return timelines

    def _animation_timelines(self) -> List[ThreadTimeline]:
        """Timer threads: almost always waiting, brief runnable blips."""
        timelines = []
        for animation in self.spec.animations:
            timeline = ThreadTimeline(animation.thread_name)
            timelines.append(timeline)
        return timelines

    def _misc_worker_timeline(self) -> ThreadTimeline:
        """The app's miscellaneous worker (image fetcher, file watcher)."""
        spec = self.spec
        if spec.misc_runnable_fraction <= 0:
            return None
        timeline = ThreadTimeline(f"{spec.name}-misc-worker")
        stack = StackTrace(
            (
                StackFrame(f"{spec.package}.AsyncTasks", "poll"),
                StackFrame("java.lang.Thread", "run"),
            )
        )
        rng = self._rng.fork("misc")
        self._fill_duty_cycle(
            timeline,
            0,
            round(self.duration_s * NS_PER_S),
            spec.misc_runnable_fraction,
            stack,
            rng,
        )
        return timeline

    @staticmethod
    def _fill_duty_cycle(
        timeline: ThreadTimeline,
        start_ns: int,
        end_ns: int,
        duty_cycle: float,
        stack: StackTrace,
        rng: RngStream,
    ) -> None:
        """Alternate runnable bursts and waits to hit ``duty_cycle``."""
        duty_cycle = min(max(duty_cycle, 0.0), 1.0)
        if duty_cycle == 0.0 or end_ns <= start_ns:
            return
        t = start_ns
        burst_mean_ms = 120.0
        while t < end_ns:
            burst_ns = round(rng.exponential_ms(burst_mean_ms) * NS_PER_MS)
            burst_end = min(t + max(burst_ns, NS_PER_MS), end_ns)
            timeline.record(t, burst_end, ThreadState.RUNNABLE, stack)
            if duty_cycle >= 1.0:
                t = burst_end
                continue
            gap_mean_ms = burst_mean_ms * (1.0 - duty_cycle) / duty_cycle
            gap_ns = round(rng.exponential_ms(gap_mean_ms) * NS_PER_MS)
            t = burst_end + max(gap_ns, NS_PER_MS)


def simulate_session(
    app: str,
    session_index: int = 0,
    seed: int = 20100401,
    scale: float = 1.0,
) -> Trace:
    """Run one interactive session of ``app`` and return its trace.

    Args:
        app: application name as in Table II (e.g. ``"JMol"``).
        session_index: which of the (four) sessions to run; sessions
            share the app's pattern catalog but differ in user timing.
        seed: root seed of the whole study.
        scale: session-length multiplier in (0, 1]; tests use small
            scales to run the identical code path quickly.
    """
    from repro.apps.catalog import get_spec

    spec = get_spec(app)
    catalog = build_catalog(spec, seed)
    return _run_script(spec, catalog, session_index, seed, scale)


def simulate_sessions(
    app: str,
    count: int = 4,
    seed: int = 20100401,
    scale: float = 1.0,
) -> List[Trace]:
    """Run ``count`` sessions of ``app`` (the paper performs four)."""
    from repro.apps.catalog import get_spec

    spec = get_spec(app)
    catalog = build_catalog(spec, seed)
    return [
        _run_script(spec, catalog, index, seed, scale)
        for index in range(count)
    ]


def _run_script(
    spec: AppSpec,
    catalog: TemplateCatalog,
    session_index: int,
    seed: int,
    scale: float,
) -> Trace:
    script = SessionScript(spec, catalog, session_index, seed, scale=scale)
    session_seed = RngStream(seed).fork(spec.name).fork(
        f"jvm{session_index}"
    ).seed
    config = SessionConfig(
        application=spec.name,
        session_id=f"session-{session_index}",
        seed=session_seed,
        duration_s=script.duration_s,
        heap=spec.heap,
    )
    jvm = SimulatedJVM(config)
    for timeline in script.background_timelines():
        jvm.add_background_timeline(timeline)
    return jvm.run(script.events())
