"""Arabeske — texture editor that calls ``System.gc()`` explicitly.

The paper's findings for Arabeske (Sections IV-C and IV-D): 57% of its
perceptible episodes have no specific trigger — they are "empty"
episodes consisting of a long garbage collection, because the program
explicitly calls ``System.gc()`` during interactive episodes. Those
explicit major collections account for roughly 60% of Arabeske's
perceptible lag. Arabeske is also one of only three applications whose
perceptible episodes show a mean runnable-thread count above one, due
to background worker activity.
"""

from repro.apps.base import AppSpec, BackgroundSpec
from repro.vm.heap import HeapConfig

SPEC = AppSpec(
    name="Arabeske",
    version="2.0.1",
    classes=222,
    description="Arabeske texture editor",
    package="org.arabeske",
    content_classes=(
        "TexturePanel",
        "PatternCanvas",
        "PaletteBar",
        "PreviewPane",
        "SymmetryControl",
    ),
    listener_vocab=(
        "TextureMouseListener",
        "PatternSelectListener",
        "PaletteListener",
        "SymmetryListener",
        "ZoomListener",
    ),
    e2e_s=461.0,
    traced_per_min=800.0,
    micro_per_min=42000.0,
    n_common_templates=230,
    rare_per_session=330,
    zipf_exponent=1.15,
    paint_depth=2,
    paint_fanout=2,
    paint_self_ms=1.0,
    input_weight=0.42,
    output_weight=0.30,
    async_weight=0.05,
    unspec_weight=0.23,
    median_fast_ms=8.5,
    slow_share_target=0.006,
    median_slow_ms=280.0,
    app_code_fraction=0.45,
    native_call_fraction=0.08,
    alloc_bytes_per_ms=20 * 1024,
    explicit_gc_per_min=12.5,
    slow_trigger_bias="input",
    sleep_fraction=0.08,
    wait_fraction=0.05,
    block_fraction=0.05,
    background_threads=(
        BackgroundSpec(
            thread_name="arabeske-renderer",
            windows=((30.0, 120.0), (250.0, 100.0)),
            work_class="org.arabeske.TextureRenderer",
            duty_cycle=0.8,
        ),
    ),
    misc_runnable_fraction=0.18,
    heap=HeapConfig(
        young_capacity_bytes=64 * 1024 * 1024,
        major_pause_ms=340.0,
    ),
)
