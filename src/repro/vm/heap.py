"""An allocation-driven stop-the-world garbage collector model.

GC in the simulator is a *mechanism*, not a scripted outcome: mutator
steps report their allocations to the heap; when the young generation
fills, a minor collection is due; when promotion fills the old
generation, a major collection is due. An explicit ``System.gc()`` call
forces a major collection regardless of occupancy (the Arabeske
behaviour the paper diagnoses in Section IV-C). Collections stop the
world: the JVM inserts the pause into whatever every thread was doing
and the sampler goes dark for the pause plus safepoint margins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import SimulationError


@dataclass(frozen=True)
class HeapConfig:
    """Sizing and cost parameters of the collector.

    Attributes:
        young_capacity_bytes: allocation budget between minor GCs.
        old_capacity_bytes: promotion budget between major GCs.
        promotion_fraction: fraction of collected young bytes promoted.
        minor_pause_ms: base pause of a minor collection.
        major_pause_ms: base pause of a major collection.
        pause_jitter: relative spread applied to pause durations.
    """

    young_capacity_bytes: int = 64 * 1024 * 1024
    old_capacity_bytes: int = 512 * 1024 * 1024
    promotion_fraction: float = 0.1
    minor_pause_ms: float = 18.0
    major_pause_ms: float = 350.0
    pause_jitter: float = 0.25

    def validate(self) -> None:
        if self.young_capacity_bytes <= 0 or self.old_capacity_bytes <= 0:
            raise SimulationError("heap capacities must be positive")
        if not 0.0 <= self.promotion_fraction <= 1.0:
            raise SimulationError("promotion_fraction must be in [0, 1]")


@dataclass(frozen=True)
class GcRequest:
    """A collection the heap wants to run right now."""

    major: bool
    pause_ms: float

    @property
    def symbol(self) -> str:
        """Symbol recorded on the GC interval."""
        return "GC.major" if self.major else "GC.minor"


class Heap:
    """Tracks allocation and decides when collections happen."""

    def __init__(self, config: HeapConfig, rng) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self._young_used = 0
        self._old_used = 0
        self.minor_count = 0
        self.major_count = 0

    @property
    def young_used(self) -> int:
        return self._young_used

    @property
    def old_used(self) -> int:
        return self._old_used

    def allocate(self, nbytes: int) -> Optional[GcRequest]:
        """Record an allocation; returns a GC request if one is now due.

        Only one collection is requested at a time: a due *major* wins
        over a due minor (it subsumes it).
        """
        if nbytes < 0:
            raise SimulationError(f"negative allocation ({nbytes})")
        self._young_used += nbytes
        if self._old_used >= self.config.old_capacity_bytes:
            return self._request(major=True)
        if self._young_used >= self.config.young_capacity_bytes:
            return self._request(major=False)
        return None

    def explicit_gc(self) -> GcRequest:
        """A forced major collection (``System.gc()``)."""
        return self._request(major=True)

    def _request(self, major: bool) -> GcRequest:
        base = (
            self.config.major_pause_ms if major else self.config.minor_pause_ms
        )
        jitter = self.config.pause_jitter
        pause = base * self._rng.uniform(1.0 - jitter, 1.0 + jitter)
        return GcRequest(major=major, pause_ms=pause)

    def collected(self, request: GcRequest) -> None:
        """Apply the effect of a completed collection to occupancy."""
        if request.major:
            self.major_count += 1
            self._young_used = 0
            self._old_used = 0
        else:
            self.minor_count += 1
            promoted = int(self._young_used * self.config.promotion_fraction)
            self._old_used += promoted
            self._young_used = 0

    def __repr__(self) -> str:
        return (
            f"Heap(young={self._young_used}B, old={self._old_used}B, "
            f"{self.minor_count} minor / {self.major_count} major GCs)"
        )
