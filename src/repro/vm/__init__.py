"""A discrete-event JVM/Swing session simulator.

The paper gathers traces by running 14 real Swing applications under the
LiLa profiler on real hardware. Neither is available offline, so this
package provides the substitute: a deterministic simulator of a Java
virtual machine running an interactive application — an event dispatch
thread draining a GUI event queue, background threads posting events, a
Swing-like component tree answering paint requests, an allocation-driven
stop-the-world garbage collector, and a JVMTI-like sampler that captures
all threads periodically (and goes dark during collections, reproducing
the sampling blackout the paper analyzes around Figure 1).

The simulator emits :class:`repro.core.trace.Trace` objects with exactly
the record vocabulary LiLa gives LagAlyzer, so the analysis code path is
identical to the paper's.
"""

from repro.vm.clock import VirtualClock
from repro.vm.rng import RngStream
from repro.vm.heap import Heap, HeapConfig
from repro.vm.components import Component, component_tree
from repro.vm.jvm import SessionConfig, SimulatedJVM

__all__ = [
    "Component",
    "Heap",
    "HeapConfig",
    "RngStream",
    "SessionConfig",
    "SimulatedJVM",
    "VirtualClock",
    "component_tree",
]
