"""Virtual time for the simulator.

All simulated activity advances a single monotonic nanosecond clock; no
wall-clock time ever enters a trace, which is what makes sessions
reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.intervals import NS_PER_MS


class VirtualClock:
    """A monotonic nanosecond clock."""

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        self._now_ns = start_ns

    @property
    def now_ns(self) -> int:
        """The current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_ms(self) -> float:
        return self._now_ns / NS_PER_MS

    def advance_ns(self, delta_ns: int) -> int:
        """Move time forward by ``delta_ns`` and return the new time.

        Raises:
            SimulationError: on an attempt to move time backwards.
        """
        if delta_ns < 0:
            raise SimulationError(
                f"virtual time cannot move backwards (delta {delta_ns})"
            )
        self._now_ns += delta_ns
        return self._now_ns

    def advance_ms(self, delta_ms: float) -> int:
        """Move time forward by ``delta_ms`` milliseconds."""
        return self.advance_ns(round(delta_ms * NS_PER_MS))

    def advance_to(self, t_ns: int) -> int:
        """Move time forward to ``t_ns`` if it is in the future."""
        if t_ns > self._now_ns:
            self._now_ns = t_ns
        return self._now_ns

    def __repr__(self) -> str:
        return f"VirtualClock({self._now_ns} ns)"
