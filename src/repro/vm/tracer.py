"""The tracer: turns simulated activity into trace records.

Mirrors what the (extended) LiLa profiler does on a real JVM: it
observes interval open/close events on the EDT, replicates each
stop-the-world GC into every thread's interval tree, filters episodes
shorter than the trace threshold (keeping only their count), and
maintains the sampling-blackout windows caused by collections — the
JVMTI bracket semantics the paper dissects around Figure 1 mean the
blackout extends beyond the collection itself by safepoint margins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.errors import SimulationError
from repro.core.intervals import (
    Interval,
    IntervalKind,
    IntervalTreeBuilder,
    NS_PER_MS,
)
from repro.obs import runtime as obs_runtime


class TraceCollector:
    """Collects per-thread intervals, the episode filter, and blackouts."""

    def __init__(
        self,
        gui_thread: str,
        filter_ms: float,
        rng,
        safepoint_before_ms: float = 25.0,
        safepoint_after_ms: float = 5.0,
        root_kind: IntervalKind = IntervalKind.DISPATCH,
    ) -> None:
        self.gui_thread = gui_thread
        self.filter_ns = round(filter_ms * NS_PER_MS)
        self._rng = rng
        self.safepoint_before_ms = safepoint_before_ms
        self.safepoint_after_ms = safepoint_after_ms
        self.root_kind = root_kind
        self.thread_roots: Dict[str, List[Interval]] = {gui_thread: []}
        self.short_episode_count = 0
        self.blackouts: List[Tuple[int, int]] = []
        self._episode_builder: Optional[IntervalTreeBuilder] = None

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def register_thread(self, thread_name: str) -> None:
        """Ensure ``thread_name`` has an interval tree (for GC copies)."""
        self.thread_roots.setdefault(thread_name, [])

    # ------------------------------------------------------------------
    # Episodes
    # ------------------------------------------------------------------

    def begin_episode(self, start_ns: int, symbol: str = "EventQueue.dispatchEvent") -> None:
        """Open the root interval of a new episode.

        The root's kind is the collector's ``root_kind`` — dispatch for
        the gui family, request/stage for the workload families.
        """
        if self._episode_builder is not None:
            raise SimulationError("episode already in progress")
        self._episode_builder = IntervalTreeBuilder()
        self._episode_builder.open(self.root_kind, symbol, start_ns)

    def open_interval(self, kind: IntervalKind, symbol: str, t_ns: int) -> None:
        """Open a nested interval inside the current episode."""
        if self._episode_builder is None:
            raise SimulationError("interval opened outside an episode")
        self._episode_builder.open(kind, symbol, t_ns)

    def close_interval(self, t_ns: int) -> None:
        """Close the innermost open interval of the current episode."""
        if self._episode_builder is None:
            raise SimulationError("interval closed outside an episode")
        self._episode_builder.close(t_ns)

    def end_episode(self, end_ns: int) -> Optional[Interval]:
        """Close the dispatch; apply the short-episode trace filter.

        Returns:
            The retained dispatch interval, or None when the episode was
            filtered out (its GC children, if any, survive as root
            intervals — a real collector's log does not vanish with the
            episode around it).
        """
        builder = self._episode_builder
        if builder is None:
            raise SimulationError("end_episode without begin_episode")
        if builder.open_depth != 1:
            raise SimulationError(
                f"episode ended with {builder.open_depth - 1} nested "
                f"intervals still open"
            )
        root = builder.close(end_ns)
        self._episode_builder = None
        if root.duration_ns < self.filter_ns:
            self.short_episode_count += 1
            obs_runtime.count("vm.episodes_filtered")
            for child in root.children:
                if child.kind is IntervalKind.GC:
                    child.parent = None
                    self.thread_roots[self.gui_thread].append(child)
            return None
        self.thread_roots[self.gui_thread].append(root)
        obs_runtime.count("vm.episodes_built")
        return root

    def count_filtered(self, count: int) -> None:
        """Account micro-episodes the tracer never materialized."""
        if count < 0:
            raise SimulationError(f"negative filtered count ({count})")
        self.short_episode_count += count
        if count:
            obs_runtime.count("vm.episodes_filtered", count)

    # ------------------------------------------------------------------
    # Garbage collections
    # ------------------------------------------------------------------

    def record_gc(self, start_ns: int, end_ns: int, symbol: str) -> None:
        """Record a stop-the-world collection.

        The interval lands inside the current episode (when one is
        running) and as a root in every *other* thread's tree; the
        sampler blackout covers the pause plus safepoint margins.
        """
        if self._episode_builder is not None:
            self._episode_builder.add_complete(
                IntervalKind.GC, symbol, start_ns, end_ns
            )
        else:
            self.thread_roots[self.gui_thread].append(
                Interval(IntervalKind.GC, symbol, start_ns, end_ns)
            )
        for thread_name, roots in self.thread_roots.items():
            if thread_name == self.gui_thread:
                continue
            roots.append(Interval(IntervalKind.GC, symbol, start_ns, end_ns))
        before_ns = round(
            self._rng.exponential_ms(self.safepoint_before_ms) * NS_PER_MS
        )
        after_ns = round(
            self._rng.exponential_ms(self.safepoint_after_ms) * NS_PER_MS
        )
        self.blackouts.append((start_ns - before_ns, end_ns + after_ns))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def episode_spans(self) -> List[Tuple[int, int]]:
        """(start, end) of every retained episode, in time order."""
        return [
            (root.start_ns, root.end_ns)
            for root in self.thread_roots[self.gui_thread]
            if root.kind is self.root_kind
        ]

    def merged_blackouts(self) -> List[Tuple[int, int]]:
        """Blackout windows merged into disjoint sorted spans."""
        if not self.blackouts:
            return []
        spans = sorted(self.blackouts)
        merged = [spans[0]]
        for start, end in spans[1:]:
            last_start, last_end = merged[-1]
            if start <= last_end:
                merged[-1] = (last_start, max(last_end, end))
            else:
                merged.append((start, end))
        return merged
