"""The behaviour step language: what a handler does with its time.

Each GUI event handled by the simulated EDT runs a *behaviour*: a list
of steps. Steps model the activities the paper's traces distinguish —
runnable Java computation (in application or library code), JNI native
calls, recursive paint cascades over a component tree, voluntary sleeps,
monitor blocking, ``Object.wait()`` waits, and explicit ``System.gc()``
calls. Steps open/close the corresponding intervals through the tracer,
write the EDT's state timeline for the sampler, and report allocations
to the heap — which is how garbage collections end up nested inside
whatever interval happened to be open when the young generation filled.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.intervals import IntervalKind
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.vm.components import Component

#: Base frames under every EDT stack (outermost last).
EDT_BASE_FRAMES = (
    StackFrame("java.awt.event.InvocationEvent", "dispatch"),
    StackFrame("java.awt.EventQueue", "dispatchEvent"),
    StackFrame("java.awt.EventDispatchThread", "pumpOneEventForFilters"),
    StackFrame("java.awt.EventDispatchThread", "run"),
)


def edt_stack(*leaf_frames: StackFrame) -> StackTrace:
    """An EDT call stack: the given frames (leaf first) over EDT plumbing."""
    return StackTrace(tuple(leaf_frames) + EDT_BASE_FRAMES)


def java_stack(class_name: str, method_name: str) -> StackTrace:
    """Convenience: an EDT stack executing ``class_name.method_name``."""
    return edt_stack(StackFrame(class_name, method_name))


def native_stack(class_name: str, method_name: str) -> StackTrace:
    """An EDT stack whose leaf is a native frame."""
    return edt_stack(StackFrame(class_name, method_name, is_native=True))


class Step:
    """Base class of all behaviour steps."""

    def execute(self, ctx: "ExecutionContext") -> None:
        raise NotImplementedError


class Compute(Step):
    """Runnable Java computation.

    Args:
        median_ms: median duration (log-normal).
        stack: the stack the sampler sees while this runs; its leaf
            class decides application-vs-library attribution.
        sigma: log-normal spread; 0 makes the duration deterministic.
        alloc_bytes_per_ms: allocation rate while computing.
    """

    def __init__(
        self,
        median_ms: float,
        stack: StackTrace,
        sigma: float = 0.4,
        alloc_bytes_per_ms: int = 2048,
    ) -> None:
        self.median_ms = median_ms
        self.stack = stack
        self.sigma = sigma
        self.alloc_bytes_per_ms = alloc_bytes_per_ms

    def execute(self, ctx: "ExecutionContext") -> None:
        duration_ms = ctx.draw_ms(self.median_ms, self.sigma)
        ctx.run_runnable(duration_ms, self.stack, self.alloc_bytes_per_ms)


class Sleep(Step):
    """Voluntary ``Thread.sleep()`` (the Euclide combo-box blink)."""

    def __init__(
        self, median_ms: float, stack: StackTrace, sigma: float = 0.2
    ) -> None:
        self.median_ms = median_ms
        self.stack = stack
        self.sigma = sigma

    def execute(self, ctx: "ExecutionContext") -> None:
        duration_ms = ctx.draw_ms(self.median_ms, self.sigma)
        ctx.run_in_state(duration_ms, ThreadState.SLEEPING, self.stack)


class Wait(Step):
    """``Object.wait()`` / ``LockSupport.park()`` (jEdit modal dialogs)."""

    def __init__(
        self, median_ms: float, stack: StackTrace, sigma: float = 0.4
    ) -> None:
        self.median_ms = median_ms
        self.stack = stack
        self.sigma = sigma

    def execute(self, ctx: "ExecutionContext") -> None:
        duration_ms = ctx.draw_ms(self.median_ms, self.sigma)
        ctx.run_in_state(duration_ms, ThreadState.WAITING, self.stack)


class Block(Step):
    """Blocked entering a contended monitor (FreeMind display config)."""

    def __init__(
        self, median_ms: float, stack: StackTrace, sigma: float = 0.4
    ) -> None:
        self.median_ms = median_ms
        self.stack = stack
        self.sigma = sigma

    def execute(self, ctx: "ExecutionContext") -> None:
        duration_ms = ctx.draw_ms(self.median_ms, self.sigma)
        ctx.run_in_state(duration_ms, ThreadState.BLOCKED, self.stack)


class Enclose(Step):
    """Open an interval, run body steps inside it, close it.

    Used for listener notifications, async dispatch handling, and
    explicit paint/native intervals that wrap further structure.
    """

    def __init__(
        self, kind: IntervalKind, symbol: str, body: Sequence[Step]
    ) -> None:
        self.kind = kind
        self.symbol = symbol
        self.body: List[Step] = list(body)

    def execute(self, ctx: "ExecutionContext") -> None:
        ctx.tracer.open_interval(self.kind, self.symbol, ctx.clock.now_ns)
        for step in self.body:
            step.execute(ctx)
        ctx.tracer.close_interval(ctx.clock.now_ns)


def listener(symbol: str, body: Sequence[Step]) -> Enclose:
    """A listener-notification interval (user-input handling)."""
    return Enclose(IntervalKind.LISTENER, symbol, body)


def async_dispatch(symbol: str, body: Sequence[Step]) -> Enclose:
    """Handling of an event posted by a background thread."""
    return Enclose(IntervalKind.ASYNC, symbol, body)


class NativeCall(Step):
    """A JNI call: a NATIVE interval with a native-leaf stack."""

    def __init__(
        self,
        symbol: str,
        median_ms: float,
        stack: StackTrace,
        sigma: float = 0.4,
        alloc_bytes_per_ms: int = 256,
        body: Sequence[Step] = (),
    ) -> None:
        self.symbol = symbol
        self.median_ms = median_ms
        self.stack = stack
        self.sigma = sigma
        self.alloc_bytes_per_ms = alloc_bytes_per_ms
        self.body: List[Step] = list(body)

    def execute(self, ctx: "ExecutionContext") -> None:
        ctx.tracer.open_interval(
            IntervalKind.NATIVE, self.symbol, ctx.clock.now_ns
        )
        duration_ms = ctx.draw_ms(self.median_ms, self.sigma)
        ctx.run_runnable(duration_ms, self.stack, self.alloc_bytes_per_ms)
        for step in self.body:
            step.execute(ctx)
        ctx.tracer.close_interval(ctx.clock.now_ns)


class Paint(Step):
    """A recursive paint cascade over a component (sub)tree.

    Produces the deep nesting of PAINT intervals of Figures 1 and 2:
    each component contributes its own interval wrapping its children's.

    Args:
        component: root of the subtree to paint.
        scale: multiplies every component's own paint cost — a cheap
            repaint uses a small scale, a complex render a large one.
        max_depth: prune the cascade below this depth (None = full).
        library_split: fraction of each component's paint time spent
            inside the toolkit's rendering internals (Java2D) rather
            than the component's own ``paintComponent`` — this is what
            the sampler sees, and thus what the application-vs-library
            location analysis measures for output episodes.
    """

    def __init__(
        self,
        component: Component,
        scale: float = 1.0,
        sigma: float = 0.3,
        max_depth: Optional[int] = None,
        library_split: float = 0.45,
    ) -> None:
        self.component = component
        self.scale = scale
        self.sigma = sigma
        self.max_depth = max_depth
        self.library_split = min(max(library_split, 0.0), 1.0)

    def execute(self, ctx: "ExecutionContext") -> None:
        self._paint(ctx, self.component, 1)

    def _paint(self, ctx: "ExecutionContext", node: Component, level: int) -> None:
        ctx.tracer.open_interval(
            IntervalKind.PAINT, node.paint_symbol, ctx.clock.now_ns
        )
        duration_ms = ctx.draw_ms(node.self_paint_ms * self.scale, self.sigma)
        alloc_rate = 0
        if duration_ms > 0:
            alloc_rate = int(node.alloc_bytes_per_paint / max(duration_ms, 0.01))
        own_ms = duration_ms * (1.0 - self.library_split)
        toolkit_ms = duration_ms - own_ms
        if own_ms > 0:
            ctx.run_runnable(
                own_ms,
                java_stack(node.class_name, "paintComponent"),
                alloc_rate,
            )
        if toolkit_ms > 0:
            ctx.run_runnable(
                toolkit_ms,
                edt_stack(
                    StackFrame("sun.java2d.SunGraphics2D", "fillRect"),
                    StackFrame(node.class_name, "paintComponent"),
                ),
                alloc_rate,
            )
        if self.max_depth is None or level < self.max_depth:
            for child in node.children:
                self._paint(ctx, child, level + 1)
        ctx.tracer.close_interval(ctx.clock.now_ns)


class ExplicitGc(Step):
    """An application call to ``System.gc()`` (Arabeske's habit)."""

    def __init__(self, stack: Optional[StackTrace] = None) -> None:
        self.stack = stack or java_stack("java.lang.System", "gc")

    def execute(self, ctx: "ExecutionContext") -> None:
        # A brief runnable lead-in so the request comes from Java code.
        ctx.run_runnable(0.2, self.stack, 0)
        ctx.run_gc(ctx.heap.explicit_gc())


class Behavior:
    """A complete event handler: the steps run inside one dispatch."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[Step]) -> None:
        self.steps: List[Step] = list(steps)

    def execute(self, ctx: "ExecutionContext") -> None:
        for step in self.steps:
            step.execute(ctx)

    def __repr__(self) -> str:
        return f"Behavior({len(self.steps)} steps)"


class ExecutionContext:
    """Everything a step needs: clock, heap, tracer, timeline, RNG.

    The context also implements the *mechanics* shared by steps:
    chunked runnable execution with allocation (so collections land in
    the middle of whatever was running), idle-state execution, and
    stop-the-world GC insertion.
    """

    #: Granularity at which runnable execution checks the heap.
    CHUNK_MS = 4.0

    def __init__(self, clock, rng, heap, tracer, edt_timeline) -> None:
        self.clock = clock
        self.rng = rng
        self.heap = heap
        self.tracer = tracer
        self.edt_timeline = edt_timeline

    def draw_ms(self, median_ms: float, sigma: float) -> float:
        """Draw a duration; deterministic when sigma is 0."""
        if median_ms <= 0:
            return 0.0
        if sigma <= 0:
            return median_ms
        return self.rng.lognormal_ms(median_ms, sigma)

    def run_runnable(
        self, duration_ms: float, stack: StackTrace, alloc_bytes_per_ms: int
    ) -> None:
        """Execute runnable for ``duration_ms``, allocating as we go.

        Execution proceeds in chunks; when an allocation fills the young
        (or old) generation, the pending chunk is cut short, the
        collection runs stop-the-world at that instant — nesting its GC
        interval inside whatever interval is currently open — and the
        remainder of the work resumes afterwards.
        """
        remaining_ms = duration_ms
        segment_start = self.clock.now_ns
        while remaining_ms > 1e-9:
            chunk_ms = min(remaining_ms, self.CHUNK_MS)
            self.clock.advance_ms(chunk_ms)
            remaining_ms -= chunk_ms
            request = None
            if alloc_bytes_per_ms > 0:
                request = self.heap.allocate(
                    int(alloc_bytes_per_ms * chunk_ms)
                )
            if request is not None:
                self.edt_timeline.record(
                    segment_start,
                    self.clock.now_ns,
                    ThreadState.RUNNABLE,
                    stack,
                )
                self.run_gc(request)
                segment_start = self.clock.now_ns
        self.edt_timeline.record(
            segment_start, self.clock.now_ns, ThreadState.RUNNABLE, stack
        )

    def run_in_state(
        self, duration_ms: float, state: ThreadState, stack: StackTrace
    ) -> None:
        """Spend ``duration_ms`` sleeping, waiting, or blocked."""
        start = self.clock.now_ns
        self.clock.advance_ms(duration_ms)
        self.edt_timeline.record(start, self.clock.now_ns, state, stack)

    def run_gc(self, request) -> None:
        """Run a stop-the-world collection right now.

        The GC interval is recorded into every thread's tree (the paper
        adds a copy per thread because a collection stops them all), and
        the sampler blackout covers the pause plus safepoint margins.
        """
        start_ns = self.clock.now_ns
        self.clock.advance_ms(request.pause_ms)
        end_ns = self.clock.now_ns
        self.tracer.record_gc(start_ns, end_ns, request.symbol)
        self.heap.collected(request)
