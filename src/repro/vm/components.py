"""A Swing-like component tree for paint cascades.

A paint request to a window triggers recursive paint requests throughout
its component tree — the paper's Figure 2 shows GanttProject's deeply
nested paint intervals arising exactly this way. The simulator models a
component hierarchy whose ``paint`` produces the corresponding nested
PAINT intervals.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence


class Component:
    """One GUI component: a class name and child components.

    Attributes:
        class_name: fully qualified Swing (or application) class whose
            ``paint`` method the component contributes to traces.
        children: nested components painted recursively.
        self_paint_ms: median milliseconds of the component's own
            painting work (excluding children).
        alloc_bytes_per_paint: bytes allocated while painting this
            component (drives GC pressure from rendering).
    """

    __slots__ = ("class_name", "children", "self_paint_ms", "alloc_bytes_per_paint")

    def __init__(
        self,
        class_name: str,
        children: Sequence["Component"] = (),
        self_paint_ms: float = 0.5,
        alloc_bytes_per_paint: int = 16 * 1024,
    ) -> None:
        self.class_name = class_name
        self.children: List[Component] = list(children)
        self.self_paint_ms = self_paint_ms
        self.alloc_bytes_per_paint = alloc_bytes_per_paint

    @property
    def paint_symbol(self) -> str:
        """Symbol recorded on this component's paint interval."""
        return f"{self.class_name}.paint"

    def walk(self) -> Iterator["Component"]:
        """This component and all descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of components in this subtree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the component tree; a leaf has depth 1."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def total_paint_ms(self) -> float:
        """Median full-cascade paint cost of this subtree."""
        return sum(node.self_paint_ms for node in self.walk())

    def __repr__(self) -> str:
        return (
            f"Component({self.class_name!r}, {len(self.children)} children, "
            f"{self.self_paint_ms} ms)"
        )


#: Standard Swing chrome wrapped around every application window: the
#: chain the paper's Figure 1 sketch shows (JFrame -> JRootPane ->
#: JLayeredPane -> content).
_SWING_CHROME = (
    "javax.swing.JFrame",
    "javax.swing.JRootPane",
    "javax.swing.JLayeredPane",
)


def component_tree(
    app_package: str,
    content_classes: Sequence[str],
    depth: int = 2,
    fanout: int = 2,
    self_paint_ms: float = 0.5,
    alloc_bytes_per_paint: int = 16 * 1024,
    fanout_levels: Optional[int] = None,
) -> Component:
    """Build a window: Swing chrome wrapping an application content tree.

    Args:
        app_package: package prefix for application content classes.
        content_classes: class base names cycled through the content
            tree (e.g. panel/canvas/toolbar names of the app).
        depth: depth of the content tree below the Swing chrome.
        fanout: children per content node.
        self_paint_ms: per-component own paint cost (median ms).
        alloc_bytes_per_paint: per-component paint allocation.
        fanout_levels: apply ``fanout`` only to the first this-many
            content levels, then continue as a chain — how deep GUIs
            (GanttProject) combine breadth near the window root with
            long nested chains below, without exponential blowup.

    Returns:
        The root :class:`Component` (the JFrame).
    """
    counter = [0]
    if fanout_levels is None:
        fanout_levels = depth

    def build_content(level: int) -> Component:
        base = content_classes[counter[0] % len(content_classes)]
        counter[0] += 1
        name = f"{app_package}.{base}"
        children = []
        if level < depth:
            level_fanout = fanout if level <= fanout_levels else 1
            children = [build_content(level + 1) for _ in range(level_fanout)]
        return Component(
            name,
            children,
            self_paint_ms=self_paint_ms,
            alloc_bytes_per_paint=alloc_bytes_per_paint,
        )

    node = build_content(1)
    for chrome_class in reversed(_SWING_CHROME):
        node = Component(
            chrome_class,
            [node],
            self_paint_ms=0.2,
            alloc_bytes_per_paint=4 * 1024,
        )
    return node
