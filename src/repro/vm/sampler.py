"""A JVMTI-like call-stack sampler.

LiLa's extended traces contain periodically captured call stacks of all
threads. The simulator's sampler reproduces that: ticks at the sampling
period (with small jitter, as real timers drift), each tick recording
every thread's state and stack — except during blackout windows, when a
stop-the-world collection (plus its safepoint ramps) keeps the JVMTI
agent from sampling at all. That blackout is what Figure 1's episode
sketch makes visible.

Like the paper's tracing setup — which filters to keep trace sizes
manageable — the sampler materializes ticks only inside retained
episodes; analyses never consult samples outside episodes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.samples import Sample, ThreadSample
from repro.vm.threads import ThreadTimeline


class Sampler:
    """Generates the session's sample ticks from thread timelines."""

    def __init__(self, period_ns: int, rng, jitter_fraction: float = 0.08) -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.period_ns = period_ns
        self._rng = rng
        self.jitter_fraction = jitter_fraction

    def run(
        self,
        spans: Sequence[Tuple[int, int]],
        timelines: Sequence[ThreadTimeline],
        blackouts: Sequence[Tuple[int, int]] = (),
    ) -> List[Sample]:
        """Sample all threads over the given spans.

        Args:
            spans: disjoint, sorted (start, end) windows to sample
                (the retained episode spans).
            timelines: every simulated thread's timeline.
            blackouts: disjoint, sorted windows with no sampling.

        Returns:
            Samples sorted by timestamp.
        """
        samples: List[Sample] = []
        blackout_index = 0
        for span_start, span_end in spans:
            # The first tick of a span falls at a uniformly random phase
            # of the sampling period, as it would for a free-running timer.
            t = span_start + round(self._rng.uniform(0, self.period_ns))
            while t < span_end:
                while (
                    blackout_index < len(blackouts)
                    and blackouts[blackout_index][1] <= t
                ):
                    blackout_index += 1
                in_blackout = (
                    blackout_index < len(blackouts)
                    and blackouts[blackout_index][0] <= t
                )
                if not in_blackout:
                    samples.append(self._tick(t, timelines))
                t += self._rng.jitter_ns(self.period_ns, self.jitter_fraction)
        return samples

    def _tick(
        self, t_ns: int, timelines: Sequence[ThreadTimeline]
    ) -> Sample:
        entries = []
        for timeline in timelines:
            state, stack = timeline.at(t_ns)
            entries.append(ThreadSample(timeline.thread_name, state, stack))
        return Sample(t_ns, entries)
