"""The simulated JVM: an EDT draining a GUI event queue.

:class:`SimulatedJVM` wires the substrate together — virtual clock,
heap, tracer, EDT timeline, background-thread timelines, sampler — and
runs a session: a time-ordered stream of posted GUI events, each handled
to completion on the event dispatch thread (interactive GUIs are
single-threaded by design, as the paper notes), producing one
:class:`~repro.core.trace.Trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.core.errors import SimulationError
from repro.core.intervals import IntervalKind, NS_PER_MS, NS_PER_S
from repro.core.samples import StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace, TraceMetadata
from repro.vm.behavior import Behavior, ExecutionContext
from repro.vm.clock import VirtualClock
from repro.vm.heap import Heap, HeapConfig
from repro.vm.rng import RngStream
from repro.vm.sampler import Sampler
from repro.vm.threads import ThreadTimeline
from repro.vm.tracer import TraceCollector

#: Stack shown while the EDT waits for the next event.
EDT_IDLE_STACK = StackTrace(
    (
        StackFrame("java.lang.Object", "wait", is_native=True),
        StackFrame("java.awt.EventQueue", "getNextEvent"),
        StackFrame("java.awt.EventDispatchThread", "pumpOneEventForFilters"),
        StackFrame("java.awt.EventDispatchThread", "run"),
    )
)

#: Idle stack of JVM service daemons.
DAEMON_IDLE_STACK = StackTrace(
    (
        StackFrame("java.lang.Object", "wait", is_native=True),
        StackFrame("java.lang.ref.ReferenceQueue", "remove"),
    )
)

#: Service threads present in every JVM; they wait essentially forever.
DEFAULT_DAEMONS = ("main", "Reference-Handler", "Finalizer")


@dataclass(frozen=True)
class SessionConfig:
    """Configuration of one simulated interactive session."""

    application: str
    session_id: str
    seed: int
    duration_s: float
    gui_thread: str = "AWT-EventQueue-0"
    sample_period_ns: int = 10 * NS_PER_MS
    filter_ms: float = 3.0
    heap: HeapConfig = field(default_factory=HeapConfig)
    #: Workload family of the sessions this config produces. The gui
    #: default keeps every existing call site byte-identical; the
    #: io_service/async_pipeline simulators override all three fields.
    family: str = "gui"
    root_kind: IntervalKind = IntervalKind.DISPATCH
    root_symbol: str = "EventQueue.dispatchEvent"

    def validate(self) -> None:
        if self.duration_s <= 0:
            raise SimulationError("session duration must be positive")
        if self.filter_ms < 0:
            raise SimulationError("filter threshold cannot be negative")


@dataclass(frozen=True)
class PostedEvent:
    """A GUI event to be handled on the EDT at (or after) ``time_ns``."""

    time_ns: int
    behavior: Behavior


@dataclass(frozen=True)
class MicroBurst:
    """A batch of sub-filter episodes, accounted without materializing.

    The tracer only ever reports a *count* of episodes shorter than its
    filter, so the simulator processes them in aggregate: the count is
    added to the filter counter and the batch's allocations feed the
    heap (typing and mouse-move handlers allocate too — their GC
    pressure must not vanish with them).
    """

    time_ns: int
    count: int
    alloc_bytes: int = 0


SessionEvent = Union[PostedEvent, MicroBurst]


class SimulatedJVM:
    """Runs one interactive session and emits its trace."""

    def __init__(self, config: SessionConfig) -> None:
        config.validate()
        self.config = config
        self.clock = VirtualClock()
        root = RngStream(config.seed, name=f"{config.application}/{config.session_id}")
        self._exec_rng = root.fork("exec")
        self.heap = Heap(config.heap, root.fork("heap"))
        self.tracer = TraceCollector(
            config.gui_thread,
            config.filter_ms,
            root.fork("tracer"),
            root_kind=config.root_kind,
        )
        self._sampler = Sampler(config.sample_period_ns, root.fork("sampler"))
        self.edt_timeline = ThreadTimeline(
            config.gui_thread,
            idle_state=ThreadState.WAITING,
            idle_stack=EDT_IDLE_STACK,
        )
        self._background: List[ThreadTimeline] = []
        for daemon in DEFAULT_DAEMONS:
            self.add_background_timeline(
                ThreadTimeline(
                    daemon,
                    idle_state=ThreadState.WAITING,
                    idle_stack=DAEMON_IDLE_STACK,
                )
            )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_background_timeline(self, timeline: ThreadTimeline) -> None:
        """Register a background thread (its GC copies and samples)."""
        if timeline.thread_name == self.config.gui_thread:
            raise SimulationError(
                "the GUI thread's timeline is owned by the JVM"
            )
        self._background.append(timeline)
        self.tracer.register_thread(timeline.thread_name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, events: Sequence[SessionEvent]) -> Trace:
        """Handle ``events`` in time order and return the session trace."""
        ctx = ExecutionContext(
            clock=self.clock,
            rng=self._exec_rng,
            heap=self.heap,
            tracer=self.tracer,
            edt_timeline=self.edt_timeline,
        )
        session_end_ns = round(self.config.duration_s * NS_PER_S)
        ordered = sorted(events, key=lambda e: e.time_ns)
        for event in ordered:
            if event.time_ns >= session_end_ns:
                break
            # The EDT is serial: a posted event waits until the EDT is free.
            self.clock.advance_to(event.time_ns)
            if isinstance(event, MicroBurst):
                self.tracer.count_filtered(event.count)
                if event.alloc_bytes > 0:
                    request = self.heap.allocate(event.alloc_bytes)
                    if request is not None:
                        ctx.run_gc(request)
            else:
                self.tracer.begin_episode(
                    self.clock.now_ns, self.config.root_symbol
                )
                event.behavior.execute(ctx)
                self.tracer.end_episode(self.clock.now_ns)
        self.clock.advance_to(session_end_ns)

        timelines = [self.edt_timeline] + self._background
        samples = self._sampler.run(
            self.tracer.episode_spans(),
            timelines,
            self.tracer.merged_blackouts(),
        )
        # Gui traces keep their historical one-key extra dict so their
        # serialized form is byte-identical to pre-family versions.
        extra = {"seed": str(self.config.seed)}
        if self.config.family != "gui":
            extra["family"] = self.config.family
        metadata = TraceMetadata(
            application=self.config.application,
            session_id=self.config.session_id,
            start_ns=0,
            end_ns=self.clock.now_ns,
            gui_thread=self.config.gui_thread,
            sample_period_ns=self.config.sample_period_ns,
            filter_ms=self.config.filter_ms,
            extra=extra,
        )
        return Trace(
            metadata,
            self.tracer.thread_roots,
            samples=samples,
            short_episode_count=self.tracer.short_episode_count,
        )
