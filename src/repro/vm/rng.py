"""Deterministic random streams for the simulator.

A single root seed fans out into named child streams (per application,
per session, per subsystem), so adding randomness to one subsystem never
perturbs another, and any individual session can be regenerated from its
(app, session, seed) coordinates alone.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(parent_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{parent_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, forkable pseudo-random stream."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, name: str) -> "RngStream":
        """A child stream independent of this one and of its siblings."""
        return RngStream(_derive_seed(self.seed, name), name=name)

    # ------------------------------------------------------------------
    # Primitive draws
    # ------------------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """One of ``items`` drawn with the given relative weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    # ------------------------------------------------------------------
    # Duration distributions (milliseconds)
    # ------------------------------------------------------------------

    def lognormal_ms(self, median_ms: float, sigma: float = 0.5) -> float:
        """A log-normal duration with the given median.

        Log-normal matches the heavy right tail of interactive handler
        latencies: most invocations are quick, a few are much slower.
        """
        return median_ms * math.exp(self._random.gauss(0.0, sigma))

    def exponential_ms(self, mean_ms: float) -> float:
        """An exponential duration (e.g. think time between actions)."""
        return self._random.expovariate(1.0 / mean_ms) if mean_ms > 0 else 0.0

    def poisson(self, mean: float) -> int:
        """A Poisson count (used for within-session event counts)."""
        if mean <= 0:
            return 0
        if mean > 500:
            # Normal approximation keeps large counts cheap and exact
            # enough for counting filtered micro-episodes.
            value = self._random.gauss(mean, math.sqrt(mean))
            return max(0, round(value))
        # Knuth's method.
        threshold = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def zipf_weights(self, n: int, exponent: float = 1.0) -> List[float]:
        """Zipf-like weights for ``n`` ranked items.

        Used to give episode templates the Pareto-shaped popularity the
        paper observes (80% of episodes in 20% of patterns, Figure 3).
        """
        return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]

    def jitter_ns(self, base_ns: int, fraction: float = 0.1) -> int:
        """``base_ns`` with +/- ``fraction`` uniform jitter."""
        spread = base_ns * fraction
        return max(0, round(base_ns + self._random.uniform(-spread, spread)))

    def __repr__(self) -> str:
        return f"RngStream(seed={self.seed}, name={self.name!r})"
