"""Simulated threads and their state timelines.

The sampler needs to answer, for any timestamp, "what was every thread
doing?". Each simulated thread therefore records a *timeline*: a sorted
sequence of segments, each with a scheduling state and a call stack.
The EDT's timeline is written by the episode executor as it runs; the
timelines of background threads (timers, loaders, daemons) are written
by their activity models.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.core.errors import SimulationError
from repro.core.samples import EMPTY_STACK, StackTrace, ThreadState


class Segment:
    """One homogeneous stretch of a thread's activity."""

    __slots__ = ("start_ns", "end_ns", "state", "stack")

    def __init__(
        self,
        start_ns: int,
        end_ns: int,
        state: ThreadState,
        stack: StackTrace = EMPTY_STACK,
    ) -> None:
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.state = state
        self.stack = stack

    def __repr__(self) -> str:
        return (
            f"Segment({self.start_ns}..{self.end_ns}, {self.state.value})"
        )


class ThreadTimeline:
    """Append-only state/stack timeline of one simulated thread.

    Gaps between segments are legal; :meth:`at` reports them with the
    timeline's idle state (what the thread does when nothing is
    scheduled — WAITING for an event-queue or timer thread).
    """

    def __init__(
        self,
        thread_name: str,
        idle_state: ThreadState = ThreadState.WAITING,
        idle_stack: StackTrace = EMPTY_STACK,
    ) -> None:
        self.thread_name = thread_name
        self.idle_state = idle_state
        self.idle_stack = idle_stack
        self._segments: List[Segment] = []
        self._starts: List[int] = []

    @property
    def segments(self) -> Tuple[Segment, ...]:
        return tuple(self._segments)

    def record(
        self,
        start_ns: int,
        end_ns: int,
        state: ThreadState,
        stack: StackTrace = EMPTY_STACK,
    ) -> None:
        """Append a segment; must not precede earlier recorded activity.

        Zero-length segments are dropped silently (they cannot be
        sampled).

        Raises:
            SimulationError: if the segment overlaps recorded history.
        """
        if end_ns <= start_ns:
            return
        if self._segments and start_ns < self._segments[-1].end_ns:
            raise SimulationError(
                f"thread {self.thread_name!r}: segment at {start_ns} "
                f"overlaps recorded history "
                f"(last end {self._segments[-1].end_ns})"
            )
        self._segments.append(Segment(start_ns, end_ns, state, stack))
        self._starts.append(start_ns)

    def at(self, t_ns: int) -> Tuple[ThreadState, StackTrace]:
        """The thread's (state, stack) at time ``t_ns``."""
        index = bisect.bisect_right(self._starts, t_ns) - 1
        if index >= 0:
            segment = self._segments[index]
            if segment.start_ns <= t_ns < segment.end_ns:
                return segment.state, segment.stack
        return self.idle_state, self.idle_stack

    def busy_ns(self) -> int:
        """Total recorded (non-idle) time."""
        return sum(seg.end_ns - seg.start_ns for seg in self._segments)

    def __repr__(self) -> str:
        return (
            f"ThreadTimeline({self.thread_name!r}, "
            f"{len(self._segments)} segments)"
        )
