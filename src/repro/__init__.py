"""LagAlyzer — latency profile analysis and visualization.

A reproduction of "LagAlyzer: A latency profile analysis and visualization
tool" (Adamoli, Jovic, Hauswirth — ISPASS 2010).

The package is organized as:

- :mod:`repro.core` — the paper's primary contribution: the in-memory
  latency-trace model, episode/pattern mining, and the characterization
  analyses (occurrence, trigger, location, concurrency, thread states).
- :mod:`repro.lila` — a LiLa-style trace file format (writer/reader).
- :mod:`repro.vm` — a discrete-event JVM/Swing session simulator that
  produces LiLa-style traces (substitute for running real Java apps).
- :mod:`repro.apps` — behaviour models for the paper's 14 applications.
- :mod:`repro.viz` — SVG episode sketches and characterization charts.
- :mod:`repro.study` — the full characterization-study harness
  (Table III and Figures 3-8).

Quickstart::

    from repro import LagAlyzer, simulate_session

    trace = simulate_session("JMol", seed=42)
    analyzer = LagAlyzer.from_traces([trace])
    for pattern in analyzer.pattern_table().perceptible_only().rows():
        print(pattern.key, pattern.count, pattern.max_lag_ms)
"""

from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.episodes import Episode
from repro.core.intervals import Interval, IntervalKind
from repro.core.patterns import Pattern, PatternTable
from repro.core.samples import Sample, StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace, TraceMetadata
from repro.apps import simulate_session

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "Episode",
    "Interval",
    "IntervalKind",
    "LagAlyzer",
    "Pattern",
    "PatternTable",
    "Sample",
    "StackFrame",
    "StackTrace",
    "ThreadState",
    "Trace",
    "TraceMetadata",
    "simulate_session",
    "__version__",
]
