"""LagAlyzer — latency profile analysis and visualization.

A reproduction of "LagAlyzer: A latency profile analysis and visualization
tool" (Adamoli, Jovic, Hauswirth — ISPASS 2010).

This module is the **stable public surface**: everything in
:data:`__all__` is supported API, importable directly from ``repro``,
and documented in ``docs/api.md``. Deep imports keep working but are
not part of the contract (and the historical ``repro.core.api`` path
warns). :data:`API_VERSION` increments whenever this surface changes
incompatibly.

The package is organized as:

- :mod:`repro.core` — the paper's primary contribution: the in-memory
  latency-trace model, episode/pattern mining, and the characterization
  analyses (occurrence, trigger, location, concurrency, thread states).
- :mod:`repro.lila` — a LiLa-style trace file format (writer/reader).
- :mod:`repro.ingest` — the live collector daemon, its client, and the
  incremental (per-episode) analysis mode.
- :mod:`repro.vm` — a discrete-event JVM/Swing session simulator that
  produces LiLa-style traces (substitute for running real Java apps).
- :mod:`repro.apps` — behaviour models for the paper's 14 applications.
- :mod:`repro.viz` — SVG episode sketches and characterization charts.
- :mod:`repro.study` — the full characterization-study harness
  (Table III and Figures 3-8).
- :mod:`repro.obs` / :mod:`repro.faults` — observability and
  deterministic fault injection for the whole pipeline.
- :mod:`repro.warehouse` — the persistent cross-session study
  warehouse (SQLite) and its query API.

Quickstart::

    from repro import LagAlyzer, simulate_session

    trace = simulate_session("JMol", seed=42)
    analyzer = LagAlyzer.from_traces([trace])
    for pattern in analyzer.pattern_table().perceptible_only().rows():
        print(pattern.key, pattern.count, pattern.max_lag_ms)
"""

from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.episodes import Episode
from repro.core.intervals import Interval, IntervalKind
from repro.core.patterns import Pattern, PatternTable
from repro.core.samples import Sample, StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace, TraceMetadata
from repro.apps import simulate_session

__version__ = "1.1.0"

#: Version of the public surface below; bumped on incompatible change.
API_VERSION = 1

# Heavier subsystems resolve lazily (PEP 562): importing ``repro`` for
# a quick trace read should not pay for the study harness, the engine,
# or the ingest daemon.
_LAZY = {
    "run_study": ("repro.study.runner", "run_study"),
    "StudyConfig": ("repro.study.runner", "StudyConfig"),
    "open_source": ("repro.lila.source", "open_source"),
    "build_store": ("repro.lila.source", "build_store"),
    "Observer": ("repro.obs.observer", "Observer"),
    "FaultPlan": ("repro.faults.plan", "FaultPlan"),
    "TraceClient": ("repro.ingest.client", "TraceClient"),
    "IngestServer": ("repro.ingest.server", "IngestServer"),
    "AnalysisEngine": ("repro.engine.engine", "AnalysisEngine"),
    "TraceContext": ("repro.obs.context", "TraceContext"),
    "Warehouse": ("repro.obs.warehouse", "Warehouse"),
    "TelemetryPublisher": ("repro.obs.publisher", "TelemetryPublisher"),
    "SloPolicy": ("repro.obs.slo", "SloPolicy"),
    "SloThreshold": ("repro.obs.slo", "SloThreshold"),
    "StudyWarehouse": ("repro.warehouse.store", "StudyWarehouse"),
    "AppAggregate": ("repro.warehouse.types", "AppAggregate"),
    "PatternAggregate": ("repro.warehouse.types", "PatternAggregate"),
    "RegressionReport": ("repro.warehouse.types", "RegressionReport"),
}

__all__ = [
    "API_VERSION",
    "AnalysisConfig",
    "AnalysisEngine",
    "AppAggregate",
    "Episode",
    "FaultPlan",
    "IngestServer",
    "Interval",
    "IntervalKind",
    "LagAlyzer",
    "Observer",
    "Pattern",
    "PatternAggregate",
    "PatternTable",
    "RegressionReport",
    "Sample",
    "SloPolicy",
    "SloThreshold",
    "StackFrame",
    "StackTrace",
    "StudyConfig",
    "StudyWarehouse",
    "TelemetryPublisher",
    "ThreadState",
    "Trace",
    "TraceClient",
    "TraceContext",
    "TraceMetadata",
    "Warehouse",
    "__version__",
    "build_store",
    "open_source",
    "run_study",
    "simulate_session",
]


def __getattr__(name: str):
    entry = _LAZY.get(name)
    if entry is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    module_name, attr = entry
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: resolve each lazy name once
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
