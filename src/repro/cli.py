"""The ``lagalyzer`` command-line interface.

Subcommands:

- ``simulate``  — run one simulated session, write a LiLa trace file;
- ``analyze``   — load trace file(s), print stats and the pattern browser;
- ``sketch``    — render an episode sketch SVG from a trace;
- ``browse``    — write an HTML pattern browser with inline sketches;
- ``timeline``  — render a whole-session timeline SVG;
- ``lint``      — check trace files for anomalies a profiler can cause;
- ``export``    — write analysis results as JSON or the patterns as CSV;
- ``compare``   — diff the pattern tables of two trace sets
  (regression hunting);
- ``study``     — run the full characterization study, write Table III,
  all figure SVGs, and EXPERIMENTS.md (``--workers`` fans applications
  out across processes; results are cached on disk; ``--faults
  plan.json`` runs the study under a deterministic fault-injection
  plan);
- ``engine``    — inspect and manage the analysis engine
  (``engine cache stats`` / ``engine cache clear`` / ``engine faults
  demo``);
- ``obs``       — inspect and export the pipeline's own observability
  bundles written by ``study --obs`` (``obs report`` / ``obs export
  --format chrome|jsonl|prom`` / ``obs timeline``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.api import AnalysisConfig, LagAlyzer


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.apps.sessions import simulate_session
    from repro.lila.writer import write_trace

    trace = simulate_session(
        args.app, session_index=args.session, seed=args.seed, scale=args.scale
    )
    if args.format == "binary":
        from repro.lila.binary import write_trace_binary

        path = write_trace_binary(trace, args.output)
    else:
        path = write_trace(trace, args.output)
    print(
        f"wrote {path} ({len(trace.episodes)} episodes, "
        f"{len(trace.samples)} samples, "
        f"{trace.short_episode_count} filtered)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.viz.browser import render_pattern_browser

    config = AnalysisConfig(perceptible_threshold_ms=args.threshold)
    analyzer = LagAlyzer.load(args.traces, config=config, workers=args.workers)
    stats = analyzer.mean_session_stats()
    print(f"Application: {analyzer.application}")
    print(f"Sessions: {len(analyzer.traces)}")
    print(f"Episodes (>= filter): {stats.traced:.0f} per session")
    print(f"Perceptible (>= {args.threshold:.0f} ms): {stats.perceptible:.0f}")
    print(f"In-episode time: {stats.in_episode_pct:.0f}%")
    print(f"Distinct patterns: {analyzer.pattern_table().distinct_count}")
    from repro.core.lagstats import summarize_lags

    print(f"Lag distribution: {summarize_lags(analyzer.episodes).describe()}")
    print()
    print(
        render_pattern_browser(
            analyzer.pattern_table(),
            limit=args.limit,
            perceptible_only=args.perceptible_only,
            threshold_ms=args.threshold,
        )
    )
    if args.inspect is not None:
        from repro.core.drilldown import drill_down_pattern, format_drilldown

        table = analyzer.pattern_table()
        shown = (
            table.perceptible_only(args.threshold)
            if args.perceptible_only
            else table
        )
        rows = shown.rows()
        if not 1 <= args.inspect <= len(rows):
            print(f"--inspect out of range (1..{len(rows)})", file=sys.stderr)
            return 1
        pattern = rows[args.inspect - 1]
        print()
        print(f"drill-down into pattern #{args.inspect}:")
        print(format_drilldown(drill_down_pattern(pattern)))
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    from repro.viz.sketch import render_episode_sketch

    analyzer = LagAlyzer.load([args.trace])
    episodes = analyzer.episodes
    if args.episode is None:
        # Default to the worst episode: the one a developer looks at first.
        episode = max(episodes, key=lambda ep: ep.duration_ns)
    else:
        if not 0 <= args.episode < len(episodes):
            print(
                f"episode index out of range (0..{len(episodes) - 1})",
                file=sys.stderr,
            )
            return 1
        episode = episodes[args.episode]
    path = render_episode_sketch(episode).save(args.output)
    print(f"wrote {path} (episode #{episode.index}, {episode.duration_ms:.0f} ms)")
    return 0


def _cmd_browse(args: argparse.Namespace) -> int:
    from repro.viz.htmlbrowser import write_html_browser

    analyzer = LagAlyzer.load(
        args.traces,
        config=AnalysisConfig(perceptible_threshold_ms=args.threshold),
    )
    path = write_html_browser(
        analyzer,
        args.output,
        max_patterns=args.limit,
        perceptible_only=not args.all_patterns,
    )
    print(f"wrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.export import write_analysis_json, write_patterns_csv

    analyzer = LagAlyzer.load(
        args.traces,
        config=AnalysisConfig(perceptible_threshold_ms=args.threshold),
    )
    if args.format == "json":
        path = write_analysis_json(analyzer, args.output)
    else:
        path = write_patterns_csv(analyzer, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import compare_tables

    before = LagAlyzer.load(args.before)
    after = LagAlyzer.load(args.after)
    report = compare_tables(
        before.pattern_table(), after.pattern_table(),
        threshold_ms=args.threshold,
    )
    print(report.summary())
    regressions = report.regressions[: args.limit]
    if regressions:
        print()
        print("worst regressions:")
        for delta in regressions:
            print(f"  {delta.describe()}")
    improvements = report.improvements[: args.limit]
    if improvements:
        print()
        print("best improvements:")
        for delta in improvements:
            print(f"  {delta.describe()}")
    return 1 if report.regressions and args.fail_on_regression else 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.lila.autodetect import load_trace
    from repro.viz.timeline import render_session_timeline

    trace = load_trace(args.trace)
    doc = render_session_timeline(trace, threshold_ms=args.threshold)
    path = doc.save(args.output)
    print(
        f"wrote {path} ({len(trace.episodes)} episodes, "
        f"{len(trace.perceptible_episodes(args.threshold))} perceptible)"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.errors import TraceFormatError
    from repro.lila.autodetect import load_trace
    from repro.lila.validation import has_errors, lint_trace

    worst = 0
    for path in args.traces:
        print(f"{path}:")
        try:
            trace = load_trace(path)
        except TraceFormatError as error:
            print(f"  ERROR    FMT000: {error}")
            worst = 2
            continue
        diagnostics = lint_trace(trace)
        if not diagnostics:
            print("  clean")
            continue
        for diagnostic in diagnostics:
            print(f"  {diagnostic}")
        if has_errors(diagnostics):
            worst = max(worst, 2)
        else:
            worst = max(worst, 1 if args.strict else 0)
    return worst


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.study.report import render_figures, write_experiments_md
    from repro.study.runner import (
        APPLICATION_NAMES,
        StudyConfig,
        run_study,
    )
    from repro.study.tables import format_table3

    applications = tuple(APPLICATION_NAMES)
    if args.apps:
        unknown = [name for name in args.apps if name not in APPLICATION_NAMES]
        if unknown:
            print(
                f"unknown application(s): {', '.join(unknown)} "
                f"(choose from {', '.join(APPLICATION_NAMES)})",
                file=sys.stderr,
            )
            return 1
        applications = tuple(args.apps)
    config = StudyConfig(
        seed=args.seed,
        sessions=args.sessions,
        scale=args.scale,
        applications=applications,
    )
    obs = None
    if args.obs is not None or args.profile:
        from repro.obs import Observer

        obs = Observer(profile=args.profile)
    injector = None
    if args.faults is not None:
        from repro.core.errors import LagAlyzerError
        from repro.faults import FaultInjector, FaultPlan

        try:
            plan = FaultPlan.load(args.faults)
        except (OSError, LagAlyzerError) as error:
            print(f"error: cannot load fault plan: {error}", file=sys.stderr)
            return 1
        injector = FaultInjector(plan)
        print(
            f"fault injection: {len(plan.rules)} rule(s), "
            f"seed {plan.seed} ({args.faults})"
        )
    print(
        f"running study: {len(config.applications)} applications x "
        f"{config.sessions} sessions (scale {config.scale}, "
        f"workers {args.workers}) ..."
    )
    result = run_study(
        config,
        progress=True,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        obs=obs,
        faults=injector,
    )
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    table3 = format_table3(
        [app.mean_stats for app in result.ordered()], result.mean_stats
    )
    (outdir / "table3.txt").write_text(table3 + "\n", encoding="utf-8")
    figure_paths = render_figures(result, outdir)
    report_path = write_experiments_md(result, outdir / "EXPERIMENTS.md")
    from repro.study.export import write_study_csvs
    from repro.study.html import write_html_report

    write_study_csvs(result, outdir / "csv")
    html_path = write_html_report(result, outdir / "report.html")
    print(table3)
    print(
        f"wrote {len(figure_paths)} figures, {report_path}, and "
        f"{html_path} to {outdir}/"
    )
    if injector is not None:
        quarantined = result.quarantined
        total = sum(len(entries) for entries in quarantined.values())
        print(
            f"fault injection: {len(injector.events)} fault(s) fired in "
            f"this process, {total} session(s) quarantined"
        )
        for entries in quarantined.values():
            for entry in entries:
                print(f"  quarantined {entry.describe()}")
    if obs is not None:
        if args.obs is not None:
            obs_dir = Path(args.obs)
            obs.save(obs_dir)
            print(f"wrote observability bundle to {obs_dir}/")
        if args.profile:
            report = obs.profiler.format_report(top=5)
            if report:
                print(report)
        print(obs.summary_line())
    return 0


def _cmd_engine_cache(args: argparse.Namespace) -> int:
    from repro.engine.cache import CODE_VERSION, ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached entries from {cache.root}")
        return 0
    stats, status = cache.persisted_stats_status()
    if status == "missing":
        print(f"cache dir:    {cache.root}")
        if not cache.root.is_dir():
            print("no cache yet (directory does not exist; run a study "
                  "with caching enabled to create it)")
        else:
            print("no recorded statistics yet (cache directory exists but "
                  "no run has persisted stats.json)")
            entries = cache.entry_count()
            if entries:
                print(f"entries:      {entries} ({cache.total_bytes()} bytes)")
        return 0
    if status == "corrupt":
        print(
            f"error: cache statistics at {cache.root / 'stats.json'} are "
            f"unreadable (corrupt or wrong format); run "
            f"'engine cache clear' to reset",
            file=sys.stderr,
        )
        return 2
    entries = cache.entry_count()
    total = stats.hits + stats.misses
    hit_pct = 100.0 * stats.hits / total if total else 0.0
    print(f"cache dir:    {cache.root}")
    print(f"code version: {CODE_VERSION}")
    print(f"entries:      {entries} ({cache.total_bytes()} bytes)")
    print(f"hits:         {stats.hits}")
    print(f"misses:       {stats.misses}")
    print(f"stores:       {stats.stores}")
    print(f"discarded:    {stats.discarded} (failed integrity check)")
    print(f"write errors: {stats.write_errors}")
    print(f"read errors:  {stats.read_errors}")
    print(f"hit rate:     {hit_pct:.1f}%")
    return 0


def _cmd_engine_faults(args: argparse.Namespace) -> int:
    """``engine faults demo``: a self-contained chaos run, twice.

    Builds a small deterministic fault plan (one injected worker crash,
    universal cache corruption, one truncated trace), runs a miniature
    study cold and then warm against a throwaway cache, and shows that
    the pipeline completes, quarantines exactly the damaged session,
    and fires the same fault schedule both times.
    """
    import tempfile
    from collections import Counter

    from repro.faults import FaultInjector, FaultPlan, FaultRule
    from repro.obs import Observer
    from repro.study.runner import StudyConfig, run_study

    apps = ("CrosswordSage", "FreeMind")
    plan = FaultPlan(
        seed=args.seed,
        rules=(
            FaultRule(kind="worker_crash", at=("1",), mode="raise"),
            FaultRule(kind="cache_corrupt", probability=1.0),
            FaultRule(
                kind="trace_truncated",
                site="trace.map",
                at=(f"{apps[1]}/session-1",),
            ),
        ),
    )
    if args.plan_out:
        path = plan.save(args.plan_out)
        print(f"wrote demo plan to {path}")
    config = StudyConfig(sessions=2, scale=0.05, applications=apps)
    print(
        f"demo plan: {len(plan.rules)} rules, seed {plan.seed}; "
        f"running {len(apps)} applications x {config.sessions} sessions "
        f"twice (cold, then warm cache) ..."
    )
    schedules = []
    with tempfile.TemporaryDirectory() as cache_dir:
        for label in ("cold", "warm", "warm again"):
            injector = FaultInjector(plan)
            obs = Observer()
            result = run_study(
                config,
                workers=1,
                cache_dir=cache_dir,
                use_cache=True,
                obs=obs,
                faults=injector,
            )
            schedules.append(injector.schedule())
            fired = Counter(event.kind for event in injector.events)
            fired_text = (
                ", ".join(
                    f"{kind} x{count}" for kind, count in sorted(fired.items())
                )
                or "none"
            )
            print(f"{label} run: completed; faults fired: {fired_text}")
            counters = obs.metrics.as_dict().get("counters", {})
            for name in (
                "engine.retries",
                "engine.quarantined",
                "cache.read_errors",
                "faults.injected",
            ):
                if name in counters:
                    print(f"  {name:<20} {counters[name]}")
            for entries in result.quarantined.values():
                for entry in entries:
                    print(f"  quarantined {entry.describe()}")
    crash_keys = [
        event["key"]
        for event in schedules[0]
        if event["kind"] == "worker_crash"
    ]
    # Cold and warm runs fire different cache faults (reads only exist
    # warm); reproducibility means identical state -> identical schedule.
    reproducible = schedules[1] == schedules[2]
    print(
        "schedule reproducible across identical runs: "
        f"{'yes' if reproducible else 'NO'} "
        f"(crash at task index {', '.join(sorted(set(crash_keys)))})"
    )
    return 0 if reproducible else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.observer import load_bundle

    try:
        bundle = load_bundle(args.directory)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    spans = bundle["spans"]
    metrics = bundle["metrics"]

    if args.obs_command == "report":
        from repro.obs.spans import span_depth

        print(f"bundle:       {args.directory}")
        pids = sorted({span.pid for span in spans})
        print(f"spans:        {len(spans)} across {len(pids)} process(es)")
        print(f"span depth:   {span_depth(spans)}")
        counters = metrics.get("counters", {})
        if counters:
            print("counters:")
            for name in sorted(counters):
                print(f"  {name:<28} {counters[name]}")
        gauges = metrics.get("gauges", {})
        if gauges:
            print("gauges:")
            for name in sorted(gauges):
                print(f"  {name:<28} {gauges[name]}")
        histograms = metrics.get("histograms", {})
        if histograms:
            print("latencies (ms):")
            for name in sorted(histograms):
                hist = histograms[name]
                count = hist.get("count", 0)
                mean = hist.get("sum", 0.0) / count if count else 0.0
                print(f"  {name:<28} n={count} mean={mean:.2f}")
        slowest = sorted(
            spans, key=lambda span: span.duration_ns, reverse=True
        )[: args.limit]
        if slowest:
            print(f"slowest spans (top {len(slowest)}):")
            for span in slowest:
                print(
                    f"  {span.duration_ms:>10.2f} ms  {span.name}"
                    f"  (pid {span.pid})"
                )
        profile = bundle.get("profile")
        if profile:
            from repro.obs.profiling import ProfileAggregator

            aggregator = ProfileAggregator()
            aggregator.merge(profile)
            report = aggregator.format_report(top=args.limit)
            if report:
                print(report)
        return 0

    if args.obs_command == "timeline":
        from repro.viz.obstimeline import save_span_timeline

        path = save_span_timeline(spans, args.output)
        print(f"wrote {path} ({len(spans)} spans)")
        return 0

    # export
    if args.format == "chrome":
        from repro.obs.export import spans_to_chrome

        text = json.dumps(spans_to_chrome(spans), indent=2)
        default_name = "trace.chrome.json"
    elif args.format == "jsonl":
        from repro.obs.export import spans_to_jsonl

        text = spans_to_jsonl(spans)
        default_name = "spans.export.jsonl"
    else:
        from repro.obs.export import metrics_to_prometheus

        text = metrics_to_prometheus(metrics)
        default_name = "metrics.prom"
    if args.output == "-":
        print(text)
        return 0
    out = Path(args.output) if args.output else Path(default_name)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + ("\n" if not text.endswith("\n") else ""),
                   encoding="utf-8")
    print(f"wrote {out} ({args.format})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lagalyzer",
        description="Latency profile analysis and visualization "
        "(ISPASS 2010 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate a session, write a trace")
    p_sim.add_argument("--app", required=True, help="application name (Table II)")
    p_sim.add_argument("--session", type=int, default=0)
    p_sim.add_argument("--seed", type=int, default=20100401)
    p_sim.add_argument("--scale", type=float, default=1.0)
    p_sim.add_argument("--format", choices=("text", "binary"),
                       default="text")
    p_sim.add_argument("--output", "-o", default="session.lila")
    p_sim.set_defaults(func=_cmd_simulate)

    p_an = sub.add_parser("analyze", help="analyze trace files")
    p_an.add_argument("traces", nargs="+",
                      help="trace files, directories, or glob patterns")
    p_an.add_argument("--threshold", type=float, default=100.0)
    p_an.add_argument("--workers", type=int, default=1,
                      help="processes for parallel trace loading "
                      "(0 = one per CPU)")
    p_an.add_argument("--limit", type=int, default=20)
    p_an.add_argument("--perceptible-only", action="store_true")
    p_an.add_argument("--inspect", type=int, default=None,
                      help="drill into the Nth pattern of the table")
    p_an.set_defaults(func=_cmd_analyze)

    p_sk = sub.add_parser("sketch", help="render an episode sketch SVG")
    p_sk.add_argument("trace")
    p_sk.add_argument("--episode", type=int, default=None,
                      help="episode index (default: worst episode)")
    p_sk.add_argument("--output", "-o", default="sketch.svg")
    p_sk.set_defaults(func=_cmd_sketch)

    p_br = sub.add_parser(
        "browse", help="write an HTML pattern browser with sketches"
    )
    p_br.add_argument("traces", nargs="+")
    p_br.add_argument("--threshold", type=float, default=100.0)
    p_br.add_argument("--limit", type=int, default=25)
    p_br.add_argument("--all-patterns", action="store_true",
                      help="include patterns without perceptible episodes")
    p_br.add_argument("--output", "-o", default="browser.html")
    p_br.set_defaults(func=_cmd_browse)

    p_ex = sub.add_parser("export", help="export analysis results")
    p_ex.add_argument("traces", nargs="+")
    p_ex.add_argument("--format", choices=("json", "csv"), default="json")
    p_ex.add_argument("--threshold", type=float, default=100.0)
    p_ex.add_argument("--output", "-o", default="analysis.json")
    p_ex.set_defaults(func=_cmd_export)

    p_cp = sub.add_parser(
        "compare", help="diff pattern tables of two trace sets"
    )
    p_cp.add_argument("--before", nargs="+", required=True)
    p_cp.add_argument("--after", nargs="+", required=True)
    p_cp.add_argument("--threshold", type=float, default=100.0)
    p_cp.add_argument("--limit", type=int, default=10)
    p_cp.add_argument("--fail-on-regression", action="store_true")
    p_cp.set_defaults(func=_cmd_compare)

    p_tl = sub.add_parser("timeline", help="render a session-timeline SVG")
    p_tl.add_argument("trace")
    p_tl.add_argument("--threshold", type=float, default=100.0)
    p_tl.add_argument("--output", "-o", default="timeline.svg")
    p_tl.set_defaults(func=_cmd_timeline)

    p_li = sub.add_parser("lint", help="check trace files for anomalies")
    p_li.add_argument("traces", nargs="+")
    p_li.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings too")
    p_li.set_defaults(func=_cmd_lint)

    p_st = sub.add_parser("study", help="run the full characterization study")
    p_st.add_argument("--seed", type=int, default=20100401)
    p_st.add_argument("--sessions", type=int, default=4)
    p_st.add_argument("--scale", type=float, default=1.0)
    p_st.add_argument("--output", "-o", default="study-output")
    p_st.add_argument("--workers", type=int, default=1,
                      help="processes to fan applications out across "
                      "(0 = one per CPU)")
    p_st.add_argument("--cache-dir", default=None,
                      help="result-cache root (default ~/.cache/lagalyzer)")
    p_st.add_argument("--no-cache", action="store_true",
                      help="recompute everything, bypassing the cache")
    p_st.add_argument("--apps", nargs="+", default=None, metavar="APP",
                      help="restrict the study to these applications "
                      "(default: all of Table II)")
    p_st.add_argument("--obs", default=None, metavar="DIR",
                      help="trace the pipeline itself; write the "
                      "spans/metrics bundle to DIR")
    p_st.add_argument("--profile", action="store_true",
                      help="profile analysis map calls with cProfile "
                      "and report the top hotspots")
    p_st.add_argument("--faults", default=None, metavar="PLAN.json",
                      help="run the study under this deterministic "
                      "fault-injection plan (see docs/fault_injection.md)")
    p_st.set_defaults(func=_cmd_study)

    p_en = sub.add_parser(
        "engine", help="inspect and manage the analysis engine"
    )
    en_sub = p_en.add_subparsers(dest="engine_command", required=True)
    p_ec = en_sub.add_parser("cache", help="result-cache maintenance")
    p_ec.add_argument("action", choices=("stats", "clear"))
    p_ec.add_argument("--cache-dir", default=None,
                      help="result-cache root (default ~/.cache/lagalyzer)")
    p_ec.set_defaults(func=_cmd_engine_cache)
    p_ef = en_sub.add_parser(
        "faults", help="fault-injection tooling (see docs/fault_injection.md)"
    )
    p_ef.add_argument("action", choices=("demo",))
    p_ef.add_argument("--seed", type=int, default=7,
                      help="fault-plan seed for the demo run")
    p_ef.add_argument("--plan-out", default=None, metavar="PLAN.json",
                      help="also write the demo plan to this file")
    p_ef.set_defaults(func=_cmd_engine_faults)

    p_ob = sub.add_parser(
        "obs", help="inspect and export pipeline observability bundles"
    )
    ob_sub = p_ob.add_subparsers(dest="obs_command", required=True)
    p_or = ob_sub.add_parser("report", help="summarize a bundle")
    p_or.add_argument("directory", help="bundle written by study --obs")
    p_or.add_argument("--limit", type=int, default=10,
                      help="rows in the slowest-spans / hotspot tables")
    p_or.set_defaults(func=_cmd_obs)
    p_oe = ob_sub.add_parser("export", help="convert a bundle for other tools")
    p_oe.add_argument("directory", help="bundle written by study --obs")
    p_oe.add_argument("--format", choices=("chrome", "jsonl", "prom"),
                      default="chrome",
                      help="chrome = trace-event JSON (chrome://tracing, "
                      "Perfetto); jsonl = raw spans; prom = Prometheus "
                      "text exposition of the metrics")
    p_oe.add_argument("--output", "-o", default=None,
                      help="output file ('-' for stdout; default depends "
                      "on the format)")
    p_oe.set_defaults(func=_cmd_obs)
    p_ot = ob_sub.add_parser(
        "timeline", help="render the spans as an SVG timeline"
    )
    p_ot.add_argument("directory", help="bundle written by study --obs")
    p_ot.add_argument("--output", "-o", default="obs-timeline.svg")
    p_ot.set_defaults(func=_cmd_obs)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
