"""Episode queries: the filters custom analyses keep rewriting.

The paper's core exposes "a straightforward API" for developers to
write their own analyses. In practice every such analysis starts by
selecting episodes — by duration, trigger, time window, or structure.
:class:`EpisodeQuery` is a small chainable filter over an episode
population; each method returns a new query, and the terminal methods
materialize results.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS, Episode
from repro.core.intervals import IntervalKind, NS_PER_S
from repro.core.triggers import Trigger, classify_episode


class EpisodeQuery:
    """A chainable, immutable filter over episodes.

    Example::

        slow_paint_gc = (
            EpisodeQuery(analyzer.episodes)
            .perceptible()
            .triggered_by(Trigger.OUTPUT)
            .containing(IntervalKind.GC)
        )
        for episode in slow_paint_gc:
            ...
    """

    def __init__(self, episodes: Sequence[Episode]) -> None:
        self._episodes: List[Episode] = list(episodes)

    # ------------------------------------------------------------------
    # Filters (each returns a new query)
    # ------------------------------------------------------------------

    def where(
        self, predicate: Callable[[Episode], bool]
    ) -> "EpisodeQuery":
        """Keep episodes matching an arbitrary predicate."""
        return EpisodeQuery([ep for ep in self._episodes if predicate(ep)])

    def perceptible(
        self, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
    ) -> "EpisodeQuery":
        """Keep episodes at or beyond the perceptibility threshold."""
        return self.where(lambda ep: ep.is_perceptible(threshold_ms))

    def faster_than(self, lag_ms: float) -> "EpisodeQuery":
        """Keep episodes strictly shorter than ``lag_ms``."""
        return self.where(lambda ep: ep.duration_ms < lag_ms)

    def slower_than(self, lag_ms: float) -> "EpisodeQuery":
        """Keep episodes at or beyond ``lag_ms``."""
        return self.where(lambda ep: ep.duration_ms >= lag_ms)

    def triggered_by(self, trigger: Trigger) -> "EpisodeQuery":
        """Keep episodes with the given trigger classification."""
        return self.where(lambda ep: classify_episode(ep) is trigger)

    def containing(self, kind: IntervalKind) -> "EpisodeQuery":
        """Keep episodes whose tree contains an interval of ``kind``."""
        return self.where(
            lambda ep: ep.root.find(lambda n: n.kind is kind) is not None
        )

    def not_containing(self, kind: IntervalKind) -> "EpisodeQuery":
        """Keep episodes without any interval of ``kind``."""
        return self.where(
            lambda ep: ep.root.find(lambda n: n.kind is kind) is None
        )

    def touching_symbol(self, fragment: str) -> "EpisodeQuery":
        """Keep episodes where some interval symbol contains ``fragment``."""
        return self.where(
            lambda ep: ep.root.find(lambda n: fragment in n.symbol)
            is not None
        )

    def between_seconds(self, start_s: float, end_s: float) -> "EpisodeQuery":
        """Keep episodes starting within [start_s, end_s) of the session."""
        start_ns = round(start_s * NS_PER_S)
        end_ns = round(end_s * NS_PER_S)
        return self.where(lambda ep: start_ns <= ep.start_ns < end_ns)

    def with_structure(self) -> "EpisodeQuery":
        """Keep episodes whose dispatch has children."""
        return self.where(lambda ep: ep.has_structure)

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------

    def to_list(self) -> List[Episode]:
        return list(self._episodes)

    def count(self) -> int:
        return len(self._episodes)

    def total_lag_ms(self) -> float:
        return sum(ep.duration_ms for ep in self._episodes)

    def worst(self, n: int = 1) -> List[Episode]:
        """The ``n`` slowest episodes, worst first."""
        return sorted(
            self._episodes, key=lambda ep: ep.duration_ns, reverse=True
        )[:n]

    def first(self) -> Optional[Episode]:
        """The earliest episode, or None."""
        if not self._episodes:
            return None
        return min(self._episodes, key=lambda ep: ep.start_ns)

    def __iter__(self) -> Iterator[Episode]:
        return iter(self._episodes)

    def __len__(self) -> int:
        return len(self._episodes)

    def __repr__(self) -> str:
        return f"EpisodeQuery({len(self._episodes)} episodes)"
