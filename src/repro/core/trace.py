"""The session trace: LagAlyzer's in-memory representation of one run.

A :class:`Trace` holds everything a LiLa-style profiler recorded about a
single interactive session: metadata about the session, the per-thread
interval trees, the episodes extracted from the GUI thread, all stack
samples, and the count of episodes that fell below the tracing filter
(the paper filters episodes shorter than 3 ms at trace time; LagAlyzer
only ever learns how many such episodes existed).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.episodes import Episode, episodes_from_roots
from repro.core.errors import AnalysisError
from repro.core.intervals import Interval, IntervalKind, NS_PER_MS, NS_PER_S
from repro.core.samples import Sample

#: Episodes shorter than this are filtered at trace time (paper: 3 ms).
DEFAULT_FILTER_MS = 3.0

#: Thread name LiLa uses for the AWT/Swing event dispatch thread.
DEFAULT_GUI_THREAD = "AWT-EventQueue-0"


class TraceMetadata:
    """Descriptive header of a session trace."""

    __slots__ = (
        "application",
        "session_id",
        "start_ns",
        "end_ns",
        "gui_thread",
        "sample_period_ns",
        "filter_ms",
        "extra",
    )

    def __init__(
        self,
        application: str,
        session_id: str,
        start_ns: int,
        end_ns: int,
        gui_thread: str = DEFAULT_GUI_THREAD,
        sample_period_ns: int = 10 * NS_PER_MS,
        filter_ms: float = DEFAULT_FILTER_MS,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        if end_ns < start_ns:
            raise AnalysisError(
                f"session ends before it starts ({end_ns} < {start_ns})"
            )
        self.application = application
        self.session_id = session_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.gui_thread = gui_thread
        self.sample_period_ns = sample_period_ns
        self.filter_ms = filter_ms
        self.extra: Dict[str, str] = dict(extra or {})

    @property
    def duration_ns(self) -> int:
        """End-to-end session time ("E2E")."""
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / NS_PER_S

    def __repr__(self) -> str:
        return (
            f"TraceMetadata({self.application!r}, {self.session_id!r}, "
            f"{self.duration_s:.0f} s)"
        )


class Trace:
    """One session's complete latency profile.

    Attributes:
        metadata: session header.
        thread_roots: per-thread root intervals (properly nested trees).
            GC intervals appear as a copy in *every* thread's tree, as
            the paper prescribes for stop-the-world collections.
        episodes: the GUI thread's dispatch intervals, wrapped as
            :class:`Episode` objects with their sample slices attached.
        samples: all sampling ticks of the session, sorted by time.
        short_episode_count: how many episodes the tracer filtered out
            for being shorter than ``metadata.filter_ms`` (column
            "< 3ms" of Table III).
    """

    def __init__(
        self,
        metadata: TraceMetadata,
        thread_roots: Dict[str, List[Interval]],
        samples: Sequence[Sample] = (),
        short_episode_count: int = 0,
    ) -> None:
        self.metadata = metadata
        self.thread_roots: Dict[str, List[Interval]] = {
            name: list(roots) for name, roots in thread_roots.items()
        }
        self.samples: List[Sample] = sorted(
            samples, key=lambda s: s.timestamp_ns
        )
        self.short_episode_count = short_episode_count
        # Episodes exist wherever the family's boundary intervals do
        # (dispatch roots for the default gui family). The paper's
        # study uses a single GUI thread, but the tool supports traces
        # with multiple concurrent event dispatch threads (Section V):
        # an episode is the handling of one GUI event by *its* thread.
        from repro.core.family import family_of

        root_kind = family_of(metadata).root_kind
        self._episodes_by_thread: Dict[str, List[Episode]] = {}
        for thread_name, roots in self.thread_roots.items():
            if any(r.kind is root_kind for r in roots):
                self._episodes_by_thread[thread_name] = episodes_from_roots(
                    roots, thread_name, self.samples, root_kind=root_kind
                )
        self.episodes: List[Episode] = self._episodes_by_thread.get(
            metadata.gui_thread, []
        )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def application(self) -> str:
        return self.metadata.application

    @property
    def gui_thread(self) -> str:
        return self.metadata.gui_thread

    @property
    def thread_names(self) -> List[str]:
        """All thread names observed in the trace, GUI thread first."""
        names = sorted(self.thread_roots)
        gui = self.metadata.gui_thread
        if gui in names:
            names.remove(gui)
            names.insert(0, gui)
        return names

    @property
    def dispatch_threads(self) -> List[str]:
        """Threads that dispatched GUI events, primary GUI thread first."""
        names = sorted(self._episodes_by_thread)
        gui = self.metadata.gui_thread
        if gui in names:
            names.remove(gui)
            names.insert(0, gui)
        return names

    def episodes_of(self, thread_name: str) -> List[Episode]:
        """Episodes dispatched by ``thread_name`` (empty if none)."""
        return list(self._episodes_by_thread.get(thread_name, []))

    def all_episodes(self) -> List[Episode]:
        """Episodes of every dispatch thread, merged in time order."""
        merged: List[Episode] = []
        for episodes in self._episodes_by_thread.values():
            merged.extend(episodes)
        merged.sort(key=lambda ep: ep.start_ns)
        return merged

    def perceptible_episodes(self, threshold_ms: float = 100.0) -> List[Episode]:
        """Episodes whose lag meets the perceptibility threshold."""
        return [ep for ep in self.episodes if ep.is_perceptible(threshold_ms)]

    def in_episode_ns(self) -> int:
        """Total time the system spent handling user requests."""
        return sum(ep.duration_ns for ep in self.episodes)

    def in_episode_fraction(self) -> float:
        """Fraction of the session spent in episodes ("In-Eps")."""
        e2e = self.metadata.duration_ns
        if e2e == 0:
            return 0.0
        return self.in_episode_ns() / e2e

    def gc_intervals(self) -> List[Interval]:
        """All GC intervals as seen from the GUI thread's tree."""
        result: List[Interval] = []
        for root in self.thread_roots.get(self.metadata.gui_thread, []):
            result.extend(root.find_all(lambda n: n.kind is IntervalKind.GC))
        return result

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants of the whole trace.

        Raises:
            LagAlyzerError: on nesting violations, unsorted samples, or
                episodes outside session bounds.
        """
        for name, roots in self.thread_roots.items():
            previous_end = None
            for root in roots:
                root.validate()
                if previous_end is not None and root.start_ns < previous_end:
                    raise AnalysisError(
                        f"root intervals overlap in thread {name!r} "
                        f"at {root.start_ns}"
                    )
                previous_end = root.end_ns
        for episode in self.episodes:
            if episode.start_ns < self.metadata.start_ns or (
                episode.end_ns > self.metadata.end_ns
            ):
                raise AnalysisError(
                    f"episode #{episode.index} "
                    f"[{episode.start_ns}, {episode.end_ns}) lies outside "
                    f"the session bounds"
                )
        previous = None
        for sample in self.samples:
            if previous is not None and sample.timestamp_ns < previous:
                raise AnalysisError("samples are not sorted by timestamp")
            previous = sample.timestamp_ns

    def __repr__(self) -> str:
        return (
            f"Trace({self.application!r}, {len(self.episodes)} episodes, "
            f"{len(self.samples)} samples, "
            f"{self.short_episode_count} filtered)"
        )


def merge_thread_names(traces: Iterable[Trace]) -> List[str]:
    """Union of thread names across traces, sorted, GUI threads first."""
    names = set()
    gui_names = set()
    for trace in traces:
        names.update(trace.thread_roots)
        gui_names.add(trace.metadata.gui_thread)
    ordered = sorted(names & gui_names) + sorted(names - gui_names)
    return ordered
