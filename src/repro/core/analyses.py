"""The unified Analysis protocol and the analysis registry.

Every characterization axis of the paper (occurrence, triggers,
location, concurrency, thread states) plus the Table III statistics and
the pattern-mining aggregates is exposed here as an :class:`Analysis`:
an object with a *mergeable* map–reduce decomposition.

- ``map_trace(trace, config)`` computes a small, picklable *partial*
  from one session trace. Partials are independent per trace, so they
  can be computed in parallel processes and cached on disk keyed by the
  trace's content digest (see :mod:`repro.engine`).
- ``reduce(partials)`` merges the per-trace partials into the same
  summary object the serial code produces. Merging is order-sensitive
  only where the serial result is (pattern first-appearance order), so
  ``reduce`` over partials listed in trace order is **bit-identical**
  to the one-pass serial analysis.
- ``summarize(traces, config)`` is the serial composition
  ``reduce([map_trace(t) for t in traces])`` — the reference
  implementation every parallel or cached path must reproduce exactly.

Analyses that distinguish the perceptible-only episode population
(Figures 5–8) fold **both** populations into one partial, so a single
cached map serves ``perceptible_only=True`` and ``False`` alike; the
flag is applied at reduce time.

Since the fused-plan refactor every analysis implements its map as
``map_context(ctx)`` over a :class:`~repro.core.plan.StageContext`, and
``map_trace`` merely delegates through a fresh single-use context.
Shared prefixes — the episode split, the pattern-key tally — are
requested from the context, so when several analyses run as one
:class:`~repro.core.plan.AnalysisPlan` each prefix is computed exactly
once per trace and reused; run alone, the same code computes the same
stages into a private context. Fused and per-analysis partials are
therefore byte-identical by construction.

The :data:`REGISTRY` maps stable analysis names to their instances;
:meth:`~repro.core.analyzer.LagAlyzer.summary` and the engine look analyses
up by name. Downstream users add their own axis with :func:`register`.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core import causegraph
from repro.core import concurrency as concurrency_mod
from repro.core import location as location_mod
from repro.core import threadstates as threadstates_mod
from repro.core import triggers as triggers_mod
from repro.core.concurrency import ConcurrencySummary
from repro.core.episodes import trace_episodes  # noqa: F401  (re-exported; api.py uses it)
from repro.core.errors import AnalysisError
from repro.core.family import family_of
from repro.core.location import LocationSummary
from repro.core.occurrence import Occurrence, OccurrenceSummary
from repro.core.patterns import (
    cumulative_distribution_from_counts,
    key_depth,
    key_descendant_count,
    pattern_key,
)
from repro.core.plan import StageContext
from repro.core.statistics import SessionStats, average_stats, session_stats
from repro.core.store import kernels as store_kernels
from repro.core.threadstates import ThreadStateSummary
from repro.core.trace import Trace
from repro.core.triggers import TriggerSummary


@runtime_checkable
class Analysis(Protocol):
    """What every entry of the registry provides.

    ``map_trace`` must return a picklable value; ``reduce`` must accept
    partials in trace order and reproduce the serial summary exactly.
    Analyses whose summaries do not depend on the perceptible-only
    split set ``supports_perceptible_only = False`` and reject the flag.
    """

    name: str
    supports_perceptible_only: bool

    def map_context(self, ctx: StageContext) -> Any:
        ...

    def map_trace(self, trace: Trace, config: Any) -> Any:
        ...

    def reduce(self, partials: Sequence[Any], perceptible_only: bool = False) -> Any:
        ...

    def summarize(
        self,
        traces: Sequence[Trace],
        config: Any,
        perceptible_only: bool = False,
    ) -> Any:
        ...


class MapReduceAnalysis:
    """Base class: ``summarize`` as the serial map–reduce composition.

    Subclasses implement :meth:`map_context` as their *only* map code;
    :meth:`map_trace` wraps the trace in a fresh single-use
    :class:`~repro.core.plan.StageContext`, which makes the classic
    per-analysis path a degenerate fused plan of size one — the fused
    executor runs literally the same code, just through a shared
    context.
    """

    name: str = ""
    supports_perceptible_only: bool = False
    #: Names of the shared stages this analysis's map requests from its
    #: context (informational: surfaced by ``engine plan explain`` and
    #: folded into plan descriptions; execution shares via the context
    #: memo regardless).
    shared_stages: Tuple[str, ...] = ()

    def map_context(self, ctx: StageContext) -> Any:
        raise NotImplementedError

    def map_trace(self, trace: Trace, config: Any) -> Any:
        return self.map_context(StageContext(trace, config))

    def merge_shards(self, partials: Sequence[Any]) -> Any:
        """Merge per-shard partials (shard order) into one trace partial.

        Every built-in analysis overrides this with an associative
        merge that is byte-identical to mapping the whole trace at
        once; analyses that don't support intra-trace sharding keep
        this default and reject multi-shard execution.
        """
        if len(partials) == 1:
            return partials[0]
        raise AnalysisError(
            f"analysis {self.name!r} does not support intra-trace sharding"
        )

    def reduce(self, partials: Sequence[Any], perceptible_only: bool = False) -> Any:
        raise NotImplementedError

    def _check_flag(self, perceptible_only: bool) -> None:
        if perceptible_only and not self.supports_perceptible_only:
            raise AnalysisError(
                f"analysis {self.name!r} has no perceptible-only variant"
            )

    def summarize(
        self,
        traces: Sequence[Trace],
        config: Any,
        perceptible_only: bool = False,
    ) -> Any:
        self._check_flag(perceptible_only)
        partials = [self.map_trace(trace, config) for trace in traces]
        return self.reduce(partials, perceptible_only=perceptible_only)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Episode-population axes (Figures 5-8): the partial folds both the
# all-episodes and the perceptible-only summary of one trace.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DualPartial:
    """Per-trace summaries for both episode populations."""

    all: Any
    perceptible: Any

    def pick(self, perceptible_only: bool) -> Any:
        return self.perceptible if perceptible_only else self.all


def _pick_all(partials: Sequence[DualPartial], perceptible_only: bool) -> List[Any]:
    return [p.pick(perceptible_only) for p in partials]


def _merge_dual(
    partials: Sequence[DualPartial], merge: "Any"
) -> DualPartial:
    """Merge shard :class:`DualPartial`\\ s population by population."""
    return DualPartial(
        all=merge([p.all for p in partials]),
        perceptible=merge([p.perceptible for p in partials]),
    )


class TriggerAnalysis(MapReduceAnalysis):
    """Input/output/async/unspecified episode counts (Figure 5)."""

    name = "triggers"
    supports_perceptible_only = True
    shared_stages = ("episode_split",)

    def map_context(self, ctx: StageContext) -> DualPartial:
        population, perceptible = ctx.episode_split()
        if ctx.store is not None:
            return DualPartial(
                all=ctx.store.trigger_summary(population),
                perceptible=ctx.store.trigger_summary(perceptible),
            )
        family = family_of(ctx.trace.metadata)
        return DualPartial(
            all=triggers_mod.summarize(population, family=family),
            perceptible=triggers_mod.summarize(perceptible, family=family),
        )

    def merge_shards(self, partials: Sequence[DualPartial]) -> DualPartial:
        # Add-merge in shard order: triggers first appear across the
        # concatenated shards exactly where they first appear in the
        # whole episode list, so key order matches the unsharded pass.
        def merge(summaries: Sequence[TriggerSummary]) -> TriggerSummary:
            counts: Dict[Any, int] = {}
            for summary in summaries:
                for trigger, count in summary.counts.items():
                    counts[trigger] = counts.get(trigger, 0) + count
            return TriggerSummary(counts)

        return _merge_dual(partials, merge)

    def reduce(
        self, partials: Sequence[DualPartial], perceptible_only: bool = False
    ) -> TriggerSummary:
        self._check_flag(perceptible_only)
        counts: Dict[Any, int] = {}
        for summary in _pick_all(partials, perceptible_only):
            for trigger, count in summary.counts.items():
                counts[trigger] = counts.get(trigger, 0) + count
        return TriggerSummary(counts)


class CauseAnalysis(MapReduceAnalysis):
    """Self-time cause vectors per episode population (the diff axis).

    The partial is the :data:`~repro.core.causegraph.CauseTally` of one
    trace (both populations); tallies add-merge in trace/shard order,
    so first-appearance label order — and therefore pickled bytes — are
    identical across worker counts and shard layouts.
    """

    name = "causes"
    supports_perceptible_only = True
    shared_stages = ("episode_split",)

    def map_context(self, ctx: StageContext) -> DualPartial:
        population, perceptible = ctx.episode_split()
        if ctx.store is not None:
            return DualPartial(
                all=ctx.store.cause_tally(population),
                perceptible=ctx.store.cause_tally(perceptible),
            )
        return DualPartial(
            all=causegraph.tally_causes(population),
            perceptible=causegraph.tally_causes(perceptible),
        )

    def merge_shards(self, partials: Sequence[DualPartial]) -> DualPartial:
        return _merge_dual(partials, causegraph.merge_cause_tallies)

    def reduce(
        self, partials: Sequence[DualPartial], perceptible_only: bool = False
    ) -> "causegraph.CauseSummary":
        self._check_flag(perceptible_only)
        merged = causegraph.merge_cause_tallies(
            _pick_all(partials, perceptible_only)
        )
        return causegraph.CauseSummary.from_tally(merged)


class ThreadStateAnalysis(MapReduceAnalysis):
    """GUI-thread blocked/wait/sleep/runnable split (Figure 8)."""

    name = "threadstates"
    supports_perceptible_only = True
    shared_stages = ("episode_split",)

    def map_context(self, ctx: StageContext) -> DualPartial:
        population, perceptible = ctx.episode_split()
        if ctx.store is not None:
            return DualPartial(
                all=ctx.store.threadstate_summary(population),
                perceptible=ctx.store.threadstate_summary(perceptible),
            )
        return DualPartial(
            all=threadstates_mod.summarize(population),
            perceptible=threadstates_mod.summarize(perceptible),
        )

    def merge_shards(self, partials: Sequence[DualPartial]) -> DualPartial:
        # The columnar kernel emits counts in ThreadState enum order
        # with zero tallies elided; a naive add-merge would order keys
        # by first appearance across shards instead, so the merge
        # re-tallies and rebuilds the dict in enum order.
        from repro.core.samples import ThreadState

        def merge(
            summaries: Sequence[ThreadStateSummary],
        ) -> ThreadStateSummary:
            tallies: Dict[Any, int] = {}
            for summary in summaries:
                for state, count in summary.counts.items():
                    tallies[state] = tallies.get(state, 0) + count
            return ThreadStateSummary(
                {
                    state: tallies[state]
                    for state in ThreadState
                    if tallies.get(state)
                }
            )

        return _merge_dual(partials, merge)

    def reduce(
        self, partials: Sequence[DualPartial], perceptible_only: bool = False
    ) -> ThreadStateSummary:
        self._check_flag(perceptible_only)
        counts: Dict[Any, int] = {}
        for summary in _pick_all(partials, perceptible_only):
            for state, count in summary.counts.items():
                counts[state] = counts.get(state, 0) + count
        return ThreadStateSummary(counts)


class ConcurrencyAnalysis(MapReduceAnalysis):
    """Mean runnable threads during episodes (Figure 7)."""

    name = "concurrency"
    supports_perceptible_only = True
    shared_stages = ("episode_split",)

    def map_context(self, ctx: StageContext) -> DualPartial:
        population, perceptible = ctx.episode_split()
        if ctx.store is not None:
            return DualPartial(
                all=ctx.store.concurrency_summary(population),
                perceptible=ctx.store.concurrency_summary(perceptible),
            )
        return DualPartial(
            all=concurrency_mod.summarize(population),
            perceptible=concurrency_mod.summarize(perceptible),
        )

    def merge_shards(self, partials: Sequence[DualPartial]) -> DualPartial:
        def merge(
            summaries: Sequence[ConcurrencySummary],
        ) -> ConcurrencySummary:
            return ConcurrencySummary(
                runnable_total=sum(s.runnable_total for s in summaries),
                sample_count=sum(s.sample_count for s in summaries),
            )

        return _merge_dual(partials, merge)

    def reduce(
        self, partials: Sequence[DualPartial], perceptible_only: bool = False
    ) -> ConcurrencySummary:
        self._check_flag(perceptible_only)
        summaries = _pick_all(partials, perceptible_only)
        return ConcurrencySummary(
            runnable_total=sum(s.runnable_total for s in summaries),
            sample_count=sum(s.sample_count for s in summaries),
        )


class LocationAnalysis(MapReduceAnalysis):
    """App/library and GC/native time breakdown (Figure 6)."""

    name = "location"
    supports_perceptible_only = True
    shared_stages = ("episode_split",)

    def map_context(self, ctx: StageContext) -> DualPartial:
        prefixes = ctx.config.library_prefixes
        population, perceptible = ctx.episode_split()
        if ctx.store is not None:
            return DualPartial(
                all=ctx.store.location_summary(population, prefixes),
                perceptible=ctx.store.location_summary(perceptible, prefixes),
            )
        return DualPartial(
            all=location_mod.summarize(population, library_prefixes=prefixes),
            perceptible=location_mod.summarize(
                perceptible, library_prefixes=prefixes
            ),
        )

    def merge_shards(self, partials: Sequence[DualPartial]) -> DualPartial:
        def merge(summaries: Sequence[LocationSummary]) -> LocationSummary:
            return LocationSummary(
                app_samples=sum(s.app_samples for s in summaries),
                library_samples=sum(s.library_samples for s in summaries),
                gc_ns=sum(s.gc_ns for s in summaries),
                native_ns=sum(s.native_ns for s in summaries),
                episode_ns=sum(s.episode_ns for s in summaries),
            )

        return _merge_dual(partials, merge)

    def reduce(
        self, partials: Sequence[DualPartial], perceptible_only: bool = False
    ) -> LocationSummary:
        self._check_flag(perceptible_only)
        summaries = _pick_all(partials, perceptible_only)
        return LocationSummary(
            app_samples=sum(s.app_samples for s in summaries),
            library_samples=sum(s.library_samples for s in summaries),
            gc_ns=sum(s.gc_ns for s in summaries),
            native_ns=sum(s.native_ns for s in summaries),
            episode_ns=sum(s.episode_ns for s in summaries),
        )


# ----------------------------------------------------------------------
# Pattern-table axes: the partial is a per-trace tally of pattern keys.
# Merging dicts in trace order preserves first-appearance order, which
# is what makes the merged table's tie-breaking (and therefore the
# Figure 3 CDF) identical to mining all sessions in one pass.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PatternCountsPartial:
    """Per-trace pattern tallies, in first-appearance key order.

    Attributes:
        counts: pattern key -> (episode count, perceptible episode count).
        excluded: episodes without structure (not covered by patterns).
    """

    counts: Dict[str, Tuple[int, int]]
    excluded: int


def _mine_counts(ctx: StageContext) -> PatternCountsPartial:
    """Pattern tallies of one trace, via the context's shared stages.

    Columnar traces share one :meth:`~repro.core.plan.StageContext.pattern_counts`
    tally keyed by the mining parameters; object traces share the
    episode split and walk the episode list exactly as before.
    """
    config = ctx.config
    if ctx.store is not None:
        counts, excluded = ctx.pattern_counts(
            config.perceptible_threshold_ms,
            config.include_gc_in_patterns,
            config.all_dispatch_threads,
        )
        return PatternCountsPartial(counts=counts, excluded=excluded)
    counts: Dict[str, Tuple[int, int]] = {}
    excluded = 0
    threshold = config.perceptible_threshold_ms
    include_gc = config.include_gc_in_patterns
    episodes, _perceptible = ctx.episode_split()
    for episode in episodes:
        if not episode.has_structure:
            excluded += 1
            continue
        key = pattern_key(episode, include_gc=include_gc)
        count, perceptible = counts.get(key, (0, 0))
        counts[key] = (
            count + 1,
            perceptible + (1 if episode.is_perceptible(threshold) else 0),
        )
    return PatternCountsPartial(counts=counts, excluded=excluded)


def _merge_counts(
    partials: Sequence[PatternCountsPartial],
) -> Tuple[Dict[str, Tuple[int, int]], int]:
    merged: Dict[str, Tuple[int, int]] = {}
    excluded = 0
    for partial in partials:
        excluded += partial.excluded
        for key, (count, perceptible) in partial.counts.items():
            prev_count, prev_perceptible = merged.get(key, (0, 0))
            merged[key] = (prev_count + count, prev_perceptible + perceptible)
    return merged, excluded


class OccurrenceAnalysis(MapReduceAnalysis):
    """Always/sometimes/once/never distribution over patterns (Figure 4).

    Classification needs only each pattern's episode count and
    perceptible count, both of which merge by addition — the partial
    never ships episode objects across processes.
    """

    name = "occurrence"
    supports_perceptible_only = False
    shared_stages = ("pattern_counts", "episode_split")

    def map_context(self, ctx: StageContext) -> PatternCountsPartial:
        return _mine_counts(ctx)

    def merge_shards(
        self, partials: Sequence[PatternCountsPartial]
    ) -> PatternCountsPartial:
        counts, excluded = _merge_counts(partials)
        return PatternCountsPartial(counts=counts, excluded=excluded)

    def reduce(
        self,
        partials: Sequence[PatternCountsPartial],
        perceptible_only: bool = False,
    ) -> OccurrenceSummary:
        self._check_flag(perceptible_only)
        merged, _ = _merge_counts(partials)
        tallies: Dict[Occurrence, int] = {}
        for count, perceptible in merged.values():
            occurrence = _classify_counts(count, perceptible)
            tallies[occurrence] = tallies.get(occurrence, 0) + 1
        return OccurrenceSummary(tallies)


def _classify_counts(count: int, perceptible: int) -> Occurrence:
    """Section IV-B classification from merged per-pattern tallies."""
    if perceptible == 0:
        return Occurrence.NEVER
    if perceptible == count:
        return Occurrence.ALWAYS
    if perceptible == 1:
        return Occurrence.ONCE
    return Occurrence.SOMETIMES


@dataclass(frozen=True)
class PatternStatsSummary:
    """The pattern-table aggregates of Table III plus the Figure 3 CDF."""

    distinct_patterns: int
    covered_episodes: int
    excluded_episodes: int
    singleton_count: int
    mean_descendants: float
    mean_depth: float
    cdf: Tuple[float, ...]
    """Cumulative episode %% by pattern %% (101 points; Figure 3)."""

    @property
    def singleton_fraction(self) -> float:
        if self.distinct_patterns == 0:
            return 0.0
        return self.singleton_count / self.distinct_patterns


class PatternStatsAnalysis(MapReduceAnalysis):
    """Mergeable pattern-table aggregates (Table III block, Figure 3)."""

    name = "patterns"
    supports_perceptible_only = False
    shared_stages = ("pattern_counts", "episode_split")

    def map_context(self, ctx: StageContext) -> PatternCountsPartial:
        return _mine_counts(ctx)

    def merge_shards(
        self, partials: Sequence[PatternCountsPartial]
    ) -> PatternCountsPartial:
        counts, excluded = _merge_counts(partials)
        return PatternCountsPartial(counts=counts, excluded=excluded)

    def reduce(
        self,
        partials: Sequence[PatternCountsPartial],
        perceptible_only: bool = False,
    ) -> PatternStatsSummary:
        self._check_flag(perceptible_only)
        merged, excluded = _merge_counts(partials)
        keys = list(merged)
        counts = [merged[key][0] for key in keys]
        distinct = len(keys)
        if distinct:
            mean_descendants = (
                sum(key_descendant_count(key) for key in keys) / distinct
            )
            mean_depth = sum(key_depth(key) for key in keys) / distinct
        else:
            mean_descendants = 0.0
            mean_depth = 0.0
        return PatternStatsSummary(
            distinct_patterns=distinct,
            covered_episodes=sum(counts),
            excluded_episodes=excluded,
            singleton_count=sum(1 for count in counts if count == 1),
            mean_descendants=mean_descendants,
            mean_depth=mean_depth,
            cdf=tuple(cumulative_distribution_from_counts(counts)),
        )


# ----------------------------------------------------------------------
# Session statistics (Table III): already per-session, so the map *is*
# the existing row computation and the reduce is the session average.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SessionStatsSummary:
    """Per-session Table III rows plus their application average."""

    rows: Tuple[SessionStats, ...]
    mean: SessionStats


class StatisticsAnalysis(MapReduceAnalysis):
    """One Table III row per session, plus the application mean."""

    name = "statistics"
    supports_perceptible_only = False
    shared_stages = ("pattern_counts",)

    def map_context(self, ctx: StageContext) -> Any:
        threshold = ctx.config.perceptible_threshold_ms
        if ctx.store is not None:
            # The Table III row always mines the GUI thread with GC
            # elided; request that tally through the context so one
            # pass serves statistics, occurrence, and pattern mining
            # whenever the config matches those defaults.
            counts = ctx.pattern_counts(threshold, False, False)
            if ctx.shard is not None:
                # A shard cannot finalize a row (the float arithmetic
                # needs the whole trace's tallies): return the
                # integer-exact gather; merge_shards finalizes.
                return store_kernels.session_stats_gather(
                    ctx.store,
                    threshold,
                    rows=ctx.episode_rows(False),
                    precomputed_counts=counts,
                )
            return store_kernels.session_stats_row(
                ctx.store, threshold, precomputed_counts=counts
            )
        return session_stats(ctx.trace, threshold)

    def merge_shards(self, partials: Sequence[Any]) -> SessionStats:
        return store_kernels.session_stats_finalize(
            store_kernels.merge_stats_shards(partials)
        )

    def reduce(
        self,
        partials: Sequence[SessionStats],
        perceptible_only: bool = False,
    ) -> SessionStatsSummary:
        self._check_flag(perceptible_only)
        # Intern the application name so rows that came out of the
        # on-disk cache share string identity with freshly computed
        # ones — serial, parallel, and cached summaries then pickle to
        # the same bytes, not just the same values.
        rows = tuple(
            dataclasses.replace(row, application=sys.intern(row.application))
            for row in partials
        )
        if not rows:
            raise AnalysisError("statistics reduce needs at least one partial")
        mean = average_stats(rows, rows[0].application)
        return SessionStatsSummary(rows=rows, mean=mean)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

#: The built-in analyses, keyed by stable name. The names double as the
#: ``analysis`` component of engine cache keys, so renaming one
#: invalidates its cached results (as it must).
REGISTRY: Dict[str, Analysis] = {}


def register(analysis: Analysis, replace: bool = False) -> Analysis:
    """Add ``analysis`` to the registry (downstream extension point)."""
    if not analysis.name:
        raise AnalysisError("an Analysis must have a non-empty name")
    if analysis.name in REGISTRY and not replace:
        raise AnalysisError(
            f"analysis {analysis.name!r} is already registered "
            "(pass replace=True to override)"
        )
    REGISTRY[analysis.name] = analysis
    return analysis


def get_analysis(name: str) -> Analysis:
    """Look an analysis up by name.

    Raises:
        AnalysisError: for unknown names, listing what is available.
    """
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise AnalysisError(
            f"unknown analysis {name!r}; registered: {known}"
        ) from None


for _analysis in (
    OccurrenceAnalysis(),
    TriggerAnalysis(),
    LocationAnalysis(),
    ConcurrencyAnalysis(),
    ThreadStateAnalysis(),
    StatisticsAnalysis(),
    PatternStatsAnalysis(),
    CauseAnalysis(),
):
    register(_analysis)
del _analysis
