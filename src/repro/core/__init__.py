"""Core LagAlyzer model and analyses.

This package contains the paper's primary contribution: the in-memory
representation of latency traces (episodes as trees of typed nested
intervals, correlated with call-stack samples) and the analyses built on
top of it (pattern mining, occurrence/trigger/location/cause
characterization).
"""

from repro.core.analyzer import AnalysisConfig, LagAlyzer
from repro.core.compare import ComparisonReport, Verdict, compare_tables
from repro.core.episodes import Episode
from repro.core.export import write_analysis_json, write_patterns_csv
from repro.core.intervals import Interval, IntervalKind
from repro.core.lagstats import LagSummary, summarize_lags
from repro.core.patterns import Pattern, PatternTable
from repro.core.queries import EpisodeQuery
from repro.core.samples import Sample, StackFrame, StackTrace, ThreadState
from repro.core.trace import Trace, TraceMetadata

__all__ = [
    "AnalysisConfig",
    "ComparisonReport",
    "Episode",
    "EpisodeQuery",
    "Interval",
    "IntervalKind",
    "LagAlyzer",
    "LagSummary",
    "Pattern",
    "PatternTable",
    "Sample",
    "StackFrame",
    "StackTrace",
    "ThreadState",
    "Trace",
    "TraceMetadata",
    "Verdict",
    "compare_tables",
    "summarize_lags",
    "write_analysis_json",
    "write_patterns_csv",
]
