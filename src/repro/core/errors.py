"""Exception hierarchy for the LagAlyzer core.

All exceptions raised intentionally by this package derive from
:class:`LagAlyzerError`, so callers can catch one type.
"""


class LagAlyzerError(Exception):
    """Base class for all LagAlyzer errors."""


class NestingError(LagAlyzerError):
    """An interval violates the proper-nesting invariant.

    The paper guarantees that the intervals of a given thread are properly
    nested (they either nest or do not overlap at all); this error signals
    input that breaks the guarantee.
    """


class TraceFormatError(LagAlyzerError):
    """A trace file is malformed or uses an unsupported version.

    Ingestion errors carry their provenance as attributes so callers can
    pinpoint the damage without parsing the message: ``path`` is the
    trace file (None for in-memory input), ``line`` the 1-based line
    number for text input, and ``offset`` the byte offset for binary
    input. Either position may be None when the error is not tied to a
    single record (e.g. missing metadata discovered at end of input).
    """

    def __init__(
        self,
        message: str = "",
        *,
        path=None,
        line=None,
        offset=None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.line = line
        self.offset = offset

    def locate(self) -> str:
        """Human-readable provenance, e.g. ``"t.lila:12"`` (may be ``""``)."""
        parts = []
        if self.path is not None:
            parts.append(str(self.path))
        if self.line is not None:
            parts.append(f"{self.line}")
        elif self.offset is not None:
            parts.append(f"@{self.offset}")
        return ":".join(parts)


class AnalysisError(LagAlyzerError):
    """An analysis was asked to operate on inconsistent inputs."""


class SimulationError(LagAlyzerError):
    """The session simulator was configured inconsistently."""
