"""Exception hierarchy for the LagAlyzer core.

All exceptions raised intentionally by this package derive from
:class:`LagAlyzerError`, so callers can catch one type.
"""


class LagAlyzerError(Exception):
    """Base class for all LagAlyzer errors."""


class NestingError(LagAlyzerError):
    """An interval violates the proper-nesting invariant.

    The paper guarantees that the intervals of a given thread are properly
    nested (they either nest or do not overlap at all); this error signals
    input that breaks the guarantee.
    """


class TraceFormatError(LagAlyzerError):
    """A trace file is malformed or uses an unsupported version."""


class AnalysisError(LagAlyzerError):
    """An analysis was asked to operate on inconsistent inputs."""


class SimulationError(LagAlyzerError):
    """The session simulator was configured inconsistently."""
