"""Session statistics: the numbers behind Table III.

For each interactive session the paper reports: end-to-end time, the
fraction of time spent in episodes, episode counts by duration band
(< 3 ms filtered at trace time, ≥ 3 ms traced, ≥ 100 ms perceptible),
the rate of perceptible episodes per minute of in-episode time, and a
block of pattern statistics (distinct patterns, covered episodes,
singleton fraction, mean tree size and depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS
from repro.core.patterns import PatternTable
from repro.core.trace import Trace

SECONDS_PER_MINUTE = 60.0


@dataclass(frozen=True)
class SessionStats:
    """One row of Table III for a single session (or session average)."""

    application: str
    e2e_s: float
    """End-to-end session duration in seconds ("E2E [s]")."""
    in_episode_pct: float
    """Percentage of E2E time spent handling requests ("In-Eps [%]")."""
    below_filter: float
    """Episodes shorter than the trace filter ("< 3ms")."""
    traced: float
    """Episodes represented in the trace ("≥ 3ms")."""
    perceptible: float
    """Episodes at or beyond the perceptibility threshold ("≥ 100ms")."""
    long_per_min: float
    """Perceptible episodes per minute of in-episode time ("Long/min")."""
    distinct_patterns: float
    """Distinct structural patterns ("Dist")."""
    covered_episodes: float
    """Episodes covered by some pattern ("#Eps")."""
    singleton_pct: float
    """Percentage of patterns with a single episode ("One-Ep [%]")."""
    mean_descendants: float
    """Mean dispatch-descendant count over patterns ("Descs")."""
    mean_depth: float
    """Mean interval-tree depth over patterns ("Depth")."""

    _NUMERIC_FIELDS = (
        "e2e_s",
        "in_episode_pct",
        "below_filter",
        "traced",
        "perceptible",
        "long_per_min",
        "distinct_patterns",
        "covered_episodes",
        "singleton_pct",
        "mean_descendants",
        "mean_depth",
    )

    def as_dict(self) -> Dict[str, float]:
        """Numeric columns keyed by field name (application excluded)."""
        return {name: getattr(self, name) for name in self._NUMERIC_FIELDS}


def session_stats(
    trace: Trace, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
) -> SessionStats:
    """Compute the Table III row for one session trace."""
    store = getattr(trace, "columnar", None)
    if store is not None:
        return store.session_stats_row(threshold_ms)
    episodes = trace.episodes
    perceptible_eps = trace.perceptible_episodes(threshold_ms)
    in_episode_ns = trace.in_episode_ns()
    in_episode_minutes = in_episode_ns / 1e9 / SECONDS_PER_MINUTE
    if in_episode_minutes > 0:
        long_per_min = len(perceptible_eps) / in_episode_minutes
    else:
        long_per_min = 0.0
    table = PatternTable.from_episodes(episodes)
    return SessionStats(
        application=trace.application,
        e2e_s=trace.metadata.duration_s,
        in_episode_pct=100.0 * trace.in_episode_fraction(),
        below_filter=float(trace.short_episode_count),
        traced=float(len(episodes)),
        perceptible=float(len(perceptible_eps)),
        long_per_min=long_per_min,
        distinct_patterns=float(table.distinct_count),
        covered_episodes=float(table.covered_episodes),
        singleton_pct=100.0 * table.singleton_fraction,
        mean_descendants=table.mean_descendants,
        mean_depth=table.mean_depth,
    )


def average_stats(
    rows: Sequence[SessionStats], application: str
) -> SessionStats:
    """Field-wise mean of several rows (paper: average over 4 sessions)."""
    if not rows:
        raise ValueError("cannot average zero session rows")
    n = len(rows)
    means = {
        name: sum(getattr(row, name) for row in rows) / n
        for name in SessionStats._NUMERIC_FIELDS
    }
    return SessionStats(application=application, **means)


def mean_row(rows: Sequence[SessionStats]) -> SessionStats:
    """The cross-application "Mean" row at the bottom of Table III."""
    return average_stats(rows, application="Mean")
