"""Exporting analysis results as JSON and CSV.

An offline analysis tool lives or dies by how easily its results reach
other tools (spreadsheets, dashboards, regression gates). This module
serializes a :class:`LagAlyzer`'s complete output — session statistics,
pattern table, and every characterization summary — to plain JSON, and
the pattern table to CSV.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.analyzer import LagAlyzer
from repro.core.occurrence import classify_pattern


def analysis_to_dict(analyzer: LagAlyzer) -> Dict[str, Any]:
    """Every analysis result as one JSON-serializable dict."""
    threshold = analyzer.config.perceptible_threshold_ms
    table = analyzer.pattern_table()
    occurrence = analyzer.occurrence_summary()
    return {
        "application": analyzer.application,
        "sessions": len(analyzer.traces),
        "config": {
            "perceptible_threshold_ms": threshold,
            "include_gc_in_patterns": analyzer.config.include_gc_in_patterns,
            "all_dispatch_threads": analyzer.config.all_dispatch_threads,
        },
        "session_stats": [
            {"application": row.application, **row.as_dict()}
            for row in analyzer.session_stats()
        ],
        "patterns": {
            "distinct": table.distinct_count,
            "covered_episodes": table.covered_episodes,
            "excluded_episodes": table.excluded_episodes,
            "singleton_fraction": table.singleton_fraction,
            "mean_descendants": table.mean_descendants,
            "mean_depth": table.mean_depth,
        },
        "occurrence": {
            kind.value: count for kind, count in occurrence.counts.items()
        },
        "triggers": {
            scope: {
                trigger.value: count
                for trigger, count in analyzer.trigger_summary(
                    perceptible_only=(scope == "perceptible")
                ).counts.items()
            }
            for scope in ("all", "perceptible")
        },
        "location": {
            scope: analyzer.location_summary(
                perceptible_only=(scope == "perceptible")
            ).percentages()
            for scope in ("all", "perceptible")
        },
        "concurrency": {
            scope: analyzer.concurrency_summary(
                perceptible_only=(scope == "perceptible")
            ).mean_runnable
            for scope in ("all", "perceptible")
        },
        "threadstates": {
            scope: {
                state.value: pct
                for state, pct in analyzer.threadstate_summary(
                    perceptible_only=(scope == "perceptible")
                ).percentages().items()
            }
            for scope in ("all", "perceptible")
        },
    }


def write_analysis_json(
    analyzer: LagAlyzer, path: Union[str, Path]
) -> Path:
    """Write :func:`analysis_to_dict` to ``path`` as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(analysis_to_dict(analyzer), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


PATTERN_CSV_COLUMNS = (
    "rank",
    "episodes",
    "perceptible",
    "min_lag_ms",
    "avg_lag_ms",
    "max_lag_ms",
    "total_lag_ms",
    "occurrence",
    "descendants",
    "depth",
    "gc_episodes",
    "key",
)


def patterns_to_csv(analyzer: LagAlyzer) -> str:
    """The pattern table as CSV text, worst total lag first."""
    threshold = analyzer.config.perceptible_threshold_ms
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(PATTERN_CSV_COLUMNS)
    for rank, pattern in enumerate(analyzer.pattern_table().rows(), start=1):
        writer.writerow(
            [
                rank,
                pattern.count,
                pattern.perceptible_count(threshold),
                f"{pattern.min_lag_ms:.3f}",
                f"{pattern.avg_lag_ms:.3f}",
                f"{pattern.max_lag_ms:.3f}",
                f"{pattern.total_lag_ms:.3f}",
                classify_pattern(pattern, threshold).value,
                pattern.descendant_count,
                pattern.depth,
                pattern.gc_episode_count(),
                pattern.key,
            ]
        )
    return buffer.getvalue()


def write_patterns_csv(analyzer: LagAlyzer, path: Union[str, Path]) -> Path:
    """Write :func:`patterns_to_csv` to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(patterns_to_csv(analyzer), encoding="utf-8")
    return path
