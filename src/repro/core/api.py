"""Deprecated alias of :mod:`repro.core.analyzer`.

The facade moved when the stable top-level surface landed (PR 6):
``LagAlyzer`` and ``AnalysisConfig`` now live in
:mod:`repro.core.analyzer` and are re-exported from :mod:`repro`
itself, which is the import path to use::

    from repro import LagAlyzer, AnalysisConfig

This module keeps every old ``repro.core.api`` import working, at the
cost of a :class:`DeprecationWarning` per attribute access.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.core import analyzer as _analyzer


def __getattr__(name: str) -> Any:
    if name.startswith("__"):
        raise AttributeError(name)
    value = getattr(_analyzer, name)
    warnings.warn(
        f"repro.core.api.{name} is deprecated; import {name} from "
        "repro (or repro.core.analyzer) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return value


def __dir__() -> list:
    return sorted(set(dir(_analyzer)))
