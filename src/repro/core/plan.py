"""Fused single-pass analysis plans over the columnar store.

LagAlyzer characterizes lag along several axes at once (occurrence,
triggers, location, concurrency, thread states, statistics, patterns),
but each axis used to be computed as an independent pass over every
trace: episodes were re-split and pattern keys re-derived once per
analysis. This module turns a *set* of requested analyses into an
:class:`AnalysisPlan` — an ordered sequence of :class:`PlanOperator`
wrappers around the registered analyses — that the engine executes as
**one fused pass per trace**: every operator maps the same trace through
one shared :class:`StageContext`, so common prefixes (episode
extraction, the perceptible-filter split, pattern-key tallies) are
computed exactly once and reused by every operator that declares them.

Identity is by construction, not by luck: each analysis implements
``map_context(ctx)`` as its *only* map implementation, and the classic
``map_trace(trace, config)`` entry point delegates through a fresh
single-use context. A fused pass therefore runs literally the same code
as N independent passes — the only difference is which context the
stages memoize into — so partials, reduced summaries, and cached bytes
are identical either way.

Plans carry a stable :meth:`~AnalysisPlan.fingerprint` (hash of the
sorted operator names plus a plan-format version), which the engine
combines with the trace digest and config fingerprint to cache the
whole fused bundle of partials in one entry (see
:mod:`repro.engine.cache`), while legacy per-analysis entries keep
working for lookups of any subset.

Observability: each fused pass counts ``engine.fused_passes``,
``plan.operators`` (operators executed), and ``plan.shared_hits``
(stage results served from the context memo instead of recomputed).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core import episodes as episodes_mod
from repro.core.store import kernels
from repro.core.trace import Trace
from repro.obs import runtime as obs_runtime

#: Folded into every plan fingerprint; bump when the fused bundle's
#: shape changes incompatibly, so stale bundles never match.
#: v2: workload families — bundles carry a ``family`` meta key and the
#: episode vocabulary is family-resolved rather than hard-wired gui.
PLAN_VERSION = "plan/v2"

#: One intra-trace shard: ``(index, count)`` — the ``index``-th of
#: ``count`` contiguous row-range partitions.
Shard = Tuple[int, int]


def shard_range(total: int, shard: Shard) -> Tuple[int, int]:
    """The ``[lo, hi)`` slice of ``total`` rows owned by ``shard``.

    Contiguous, gap-free, and exhaustive: the slices of shards
    ``(0, n) .. (n-1, n)`` concatenate to ``range(total)`` in order —
    the property every shard-merge relies on for byte-identity.
    """
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"bad shard {shard!r}")
    return index * total // count, (index + 1) * total // count


class StageContext:
    """Per-trace memo of shared analysis stages — one fused pass.

    A context binds one trace and one config. Operators request shared
    intermediate results through :meth:`stage` (or the named
    conveniences below); the first request computes, every later
    request with the same key is served from the memo and counted in
    :attr:`shared_hits`. A fresh context per ``map_trace`` call makes
    the legacy per-analysis path a degenerate plan of size one.
    """

    def __init__(
        self, trace: Trace, config: Any, shard: Optional[Shard] = None
    ) -> None:
        self.trace = trace
        self.config = config
        #: The trace's columnar store, or ``None`` for plain
        #: object-graph traces (which keep the classic episode path).
        self.store: Any = getattr(trace, "columnar", None)
        #: The intra-trace row-range shard this context maps, or
        #: ``None`` for a whole-trace pass. Columnar stores only.
        self.shard = shard
        if shard is not None:
            shard_range(1, shard)  # validate eagerly
            if self.store is None:
                from repro.core.errors import AnalysisError

                raise AnalysisError(
                    "intra-trace sharding requires a columnar-backed trace"
                )
        #: Stage requests served from the memo instead of recomputed.
        self.shared_hits = 0
        self._stages: Dict[Hashable, Any] = {}

    def episode_rows(self, all_dispatch_threads: bool) -> List[Any]:
        """This context's episode-row population — the full list, or
        this shard's contiguous slice of it (memoized per population)."""
        rows = self.store.episode_rows(
            all_dispatch_threads=all_dispatch_threads
        )
        if self.shard is None:
            return rows
        lo, hi = shard_range(len(rows), self.shard)
        return self.stage(
            ("shard_rows", all_dispatch_threads), lambda: rows[lo:hi]
        )

    def stage(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """The result of the stage named ``key``, computed at most once."""
        try:
            value = self._stages[key]
        except KeyError:
            value = self._stages[key] = compute()
            return value
        self.shared_hits += 1
        return value

    # -- named shared stages -------------------------------------------

    def episode_split(self) -> Tuple[Any, Any]:
        """``(all, perceptible)`` episode populations of this trace.

        Columnar traces yield episode *row* descriptors, object traces
        :class:`~repro.core.episodes.Episode` lists — exactly what the
        respective per-analysis code paths consumed before fusion.
        """
        if self.store is not None:
            return self.stage(
                "episode_split",
                lambda: self.store.split_episode_rows(
                    self.config,
                    rows=self.episode_rows(
                        self.config.all_dispatch_threads
                    ),
                ),
            )
        return self.stage(
            "episode_split",
            lambda: episodes_mod.split_episodes(self.trace, self.config),
        )

    def pattern_counts(
        self,
        threshold_ms: float,
        include_gc: bool,
        all_dispatch_threads: bool,
    ) -> Tuple[Dict[str, Tuple[int, int]], int]:
        """``(counts, excluded)`` pattern tallies (columnar stores only).

        Keyed by the mining parameters, so the statistics row (always
        ``include_gc=False``, GUI thread only) shares one tally pass
        with occurrence/pattern mining exactly when the config matches.
        """
        key = ("pattern_counts", threshold_ms, include_gc,
               all_dispatch_threads)
        return self.stage(
            key,
            lambda: kernels.pattern_counts(
                self.store,
                threshold_ms,
                include_gc,
                all_dispatch_threads,
                rows=self.episode_rows(all_dispatch_threads),
            ),
        )

    def __repr__(self) -> str:
        return (
            f"StageContext({self.trace.application!r}, "
            f"{len(self._stages)} stages, {self.shared_hits} shared hits)"
        )


@dataclass(frozen=True)
class PlanOperator:
    """One analysis wrapped for fused execution."""

    name: str
    analysis: Any
    shared_stages: Tuple[str, ...]
    """Names of the shared stages this operator's map requests (as
    declared by the analysis; informational — used by ``plan explain``
    and tests, not by execution)."""


class AnalysisPlan:
    """An ordered set of operators executed as one pass per trace."""

    def __init__(self, operators: Sequence[PlanOperator]) -> None:
        self.operators: Tuple[PlanOperator, ...] = tuple(operators)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(op.name for op in self.operators)

    def fingerprint(self) -> str:
        """Stable content hash of this plan (bundle cache key part)."""
        return plan_fingerprint(self.names)

    def shared_stage_names(self) -> List[str]:
        """Declared stages requested by two or more operators, in first
        declaration order."""
        order: List[str] = []
        tally: Dict[str, int] = {}
        for op in self.operators:
            for stage in op.shared_stages:
                if stage not in tally:
                    order.append(stage)
                tally[stage] = tally.get(stage, 0) + 1
        return [stage for stage in order if tally[stage] >= 2]

    def execute(
        self, trace: Trace, config: Any, shard: Optional[Shard] = None
    ) -> Dict[str, Any]:
        """One fused pass: every operator's partial for one trace.

        All operators map through one shared :class:`StageContext`, so
        each shared stage is computed once. Partials are byte-identical
        to running each analysis's ``map_trace`` independently.

        With ``shard`` the pass maps only that contiguous row-range
        shard of the trace (columnar stores only); the per-shard
        partials are merged back into whole-trace partials with
        :meth:`merge_shards`, byte-identical to the unsharded pass.
        """
        ctx = StageContext(trace, config, shard=shard)
        partials: Dict[str, Any] = {}
        for op in self.operators:
            with obs_runtime.maybe_span(
                "analysis.map", metric="engine.map_ms", analysis=op.name
            ):
                with obs_runtime.profiled(op.name):
                    mapper = getattr(op.analysis, "map_context", None)
                    if mapper is not None:
                        partials[op.name] = mapper(ctx)
                    else:
                        partials[op.name] = op.analysis.map_trace(
                            trace, config
                        )
        obs_runtime.count("engine.fused_passes")
        obs_runtime.count("plan.operators", len(self.operators))
        obs_runtime.count("plan.shared_hits", ctx.shared_hits)
        return partials

    def merge_shards(
        self, shard_partials: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Merge per-shard partial dicts into whole-trace partials.

        ``shard_partials`` must be in shard order (shard 0 first); every
        analysis's ``merge_shards`` is associative over contiguous
        shards, so the result is byte-identical to one unsharded
        :meth:`execute` over the same trace.
        """
        merged: Dict[str, Any] = {}
        for op in self.operators:
            merged[op.name] = op.analysis.merge_shards(
                [partials[op.name] for partials in shard_partials]
            )
        return merged

    def describe(self) -> List[str]:
        """Human-readable plan listing (the ``plan explain`` body)."""
        lines = [f"plan: {len(self.operators)} operator(s), "
                 f"fingerprint {self.fingerprint()[:16]}…"]
        shared = set(self.shared_stage_names())
        for op in self.operators:
            stages = ", ".join(
                f"{stage}*" if stage in shared else stage
                for stage in op.shared_stages
            ) or "-"
            lines.append(
                f"  {op.name:<14} {type(op.analysis).__name__:<22} "
                f"stages: {stages}"
            )
        if shared:
            lines.append(
                "shared stages (computed once per trace, * above): "
                + ", ".join(self.shared_stage_names())
            )
        else:
            lines.append("shared stages: none (single-operator plan)")
        return lines

    def __repr__(self) -> str:
        return f"AnalysisPlan({list(self.names)!r})"


def build_plan(analysis_names: Sequence[str]) -> AnalysisPlan:
    """Resolve ``analysis_names`` into an :class:`AnalysisPlan`.

    Names are deduplicated preserving first-appearance order (execution
    order is irrelevant to results — every operator's partial is
    independent — but a stable order keeps spans and explain output
    deterministic). Unknown names raise
    :class:`~repro.core.errors.AnalysisError` via the registry.
    """
    from repro.core.analyses import get_analysis

    seen: List[str] = []
    for name in analysis_names:
        if name not in seen:
            seen.append(name)
    operators = []
    for name in seen:
        analysis = get_analysis(name)
        operators.append(
            PlanOperator(
                name=name,
                analysis=analysis,
                shared_stages=tuple(
                    getattr(analysis, "shared_stages", ())
                ),
            )
        )
    return AnalysisPlan(operators)


def plan_fingerprint(analysis_names: Sequence[str]) -> str:
    """Stable hex fingerprint of a plan over ``analysis_names``.

    Order-insensitive (names are sorted and deduplicated), so the same
    analysis set always maps to the same fused-bundle cache entry.
    """
    text = PLAN_VERSION + ":" + ",".join(sorted(set(analysis_names)))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
