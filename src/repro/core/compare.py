"""Comparing pattern tables: regression hunting across sessions.

LagAlyzer "integrates multiple traces in its analysis, and thus helps
to uncover repeating patterns of bad performance". The natural next
question — did yesterday's change make a pattern slower? — needs a
*diff* between two pattern tables: which patterns appeared, which
disappeared, and which got perceptibly worse or better. This module
provides that comparison on the structural pattern keys, which are
stable across runs by construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS
from repro.core.patterns import Pattern, PatternTable


class Verdict(enum.Enum):
    """What happened to a pattern between two runs."""

    NEW = "new"
    GONE = "gone"
    REGRESSED = "regressed"
    IMPROVED = "improved"
    UNCHANGED = "unchanged"


@dataclass(frozen=True)
class PatternDelta:
    """One pattern's before/after comparison."""

    key: str
    verdict: Verdict
    before: Optional[Pattern]
    after: Optional[Pattern]

    @property
    def avg_lag_change_ms(self) -> float:
        """after - before average lag; 0 when either side is missing."""
        if self.before is None or self.after is None:
            return 0.0
        return self.after.avg_lag_ms - self.before.avg_lag_ms

    def describe(self) -> str:
        """One line for reports."""
        if self.verdict is Verdict.NEW:
            return (
                f"NEW        {self.after.count:5d} episodes, "
                f"avg {self.after.avg_lag_ms:7.1f} ms"
            )
        if self.verdict is Verdict.GONE:
            return (
                f"GONE       was {self.before.count} episodes, "
                f"avg {self.before.avg_lag_ms:.1f} ms"
            )
        return (
            f"{self.verdict.value.upper():<10s} "
            f"avg {self.before.avg_lag_ms:7.1f} -> "
            f"{self.after.avg_lag_ms:7.1f} ms "
            f"({self.avg_lag_change_ms:+.1f})"
        )


@dataclass
class ComparisonReport:
    """All pattern deltas between two tables."""

    deltas: List[PatternDelta]

    def by_verdict(self, verdict: Verdict) -> List[PatternDelta]:
        return [d for d in self.deltas if d.verdict is verdict]

    @property
    def regressions(self) -> List[PatternDelta]:
        """Regressed patterns, worst lag increase first."""
        return sorted(
            self.by_verdict(Verdict.REGRESSED),
            key=lambda d: d.avg_lag_change_ms,
            reverse=True,
        )

    @property
    def improvements(self) -> List[PatternDelta]:
        """Improved patterns, biggest lag drop first."""
        return sorted(
            self.by_verdict(Verdict.IMPROVED),
            key=lambda d: d.avg_lag_change_ms,
        )

    def summary(self) -> str:
        counts = {
            verdict: len(self.by_verdict(verdict)) for verdict in Verdict
        }
        return (
            f"{counts[Verdict.NEW]} new, {counts[Verdict.GONE]} gone, "
            f"{counts[Verdict.REGRESSED]} regressed, "
            f"{counts[Verdict.IMPROVED]} improved, "
            f"{counts[Verdict.UNCHANGED]} unchanged"
        )


def compare_tables(
    before: PatternTable,
    after: PatternTable,
    threshold_ms: float = DEFAULT_PERCEPTIBLE_MS,
    lag_change_factor: float = 1.5,
    min_episodes: int = 2,
) -> ComparisonReport:
    """Diff two pattern tables.

    A pattern present on both sides is *regressed* when its average lag
    grew by ``lag_change_factor`` (or it newly crossed the
    perceptibility threshold), *improved* for the symmetric cases, and
    *unchanged* otherwise. Patterns with fewer than ``min_episodes`` on
    either side are compared but never flagged as regressed/improved —
    one noisy episode should not raise an alarm.

    Args:
        before: baseline table (e.g. yesterday's sessions).
        after: candidate table (e.g. today's sessions).
    """
    before_by_key: Dict[str, Pattern] = {p.key: p for p in before}
    after_by_key: Dict[str, Pattern] = {p.key: p for p in after}
    deltas: List[PatternDelta] = []

    for key, pattern in after_by_key.items():
        old = before_by_key.get(key)
        if old is None:
            deltas.append(PatternDelta(key, Verdict.NEW, None, pattern))
            continue
        deltas.append(
            PatternDelta(
                key,
                _judge(old, pattern, threshold_ms, lag_change_factor,
                       min_episodes),
                old,
                pattern,
            )
        )
    for key, pattern in before_by_key.items():
        if key not in after_by_key:
            deltas.append(PatternDelta(key, Verdict.GONE, pattern, None))
    return ComparisonReport(deltas)


def _judge(
    old: Pattern,
    new: Pattern,
    threshold_ms: float,
    factor: float,
    min_episodes: int,
) -> Verdict:
    if old.count < min_episodes or new.count < min_episodes:
        return Verdict.UNCHANGED
    was_perceptible = old.avg_lag_ms >= threshold_ms
    is_perceptible = new.avg_lag_ms >= threshold_ms
    if not was_perceptible and is_perceptible:
        return Verdict.REGRESSED
    if was_perceptible and not is_perceptible:
        return Verdict.IMPROVED
    if new.avg_lag_ms >= old.avg_lag_ms * factor:
        return Verdict.REGRESSED
    if new.avg_lag_ms * factor <= old.avg_lag_ms:
        return Verdict.IMPROVED
    return Verdict.UNCHANGED
