"""The columnar trace store: one-pass ingestion, array-backed analysis.

The object model (:class:`~repro.core.trace.Trace` holding one
:class:`~repro.core.intervals.Interval` per traced interval and one
object per sample entry) is pleasant to program against but expensive to
build: parsing a large session allocates millions of small objects
before the first analysis runs. This module stores the same information
as parallel arrays instead:

- per thread, six columns over interval *rows* in open order (which is
  pre-order): ``start``/``end`` (ns, int64), ``kind`` (int8 code),
  ``symbol`` (interned string id), ``parent`` (thread-local row index,
  ``-1`` for roots) and ``size`` (rows in the subtree including the row
  itself, so a subtree is the contiguous slice ``[row, row + size)``);
- one global string intern pool shared by symbols and thread names;
- samples as a flat entry table (thread id, state code, stack id) with
  per-tick offsets, plus interned :class:`~repro.core.samples.StackTrace`
  objects (stacks repeat constantly, so each distinct stack is one
  shared object).

:class:`ColumnarBuilder` builds the store incrementally from the record
stream of a :class:`~repro.lila.source.TraceSource`, enforcing exactly
the invariants (and error messages) of
:class:`~repro.core.intervals.IntervalTreeBuilder` — damage fails while
streaming, never after. :class:`FacadeTrace` keeps the existing
``Trace``/``Episode``/``Interval`` API alive as a lazy view: the object
graph is materialized only when something actually asks for it, while
the hot analysis paths (episode splitting, pattern mining, lag
statistics, location, triggers, thread states, concurrency) run
directly on the columns and produce bit-identical summaries.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import AnalysisError, NestingError, TraceFormatError
from repro.core.intervals import Interval, IntervalKind, NS_PER_MS
from repro.core.samples import (
    Sample,
    StackTrace,
    ThreadSample,
    ThreadState,
)
from repro.core.trace import Trace, TraceMetadata

# ----------------------------------------------------------------------
# The record vocabulary every TraceSource yields.
# ----------------------------------------------------------------------

REC_META = 0
"""``(REC_META, key, value, is_extra)`` — one metadata entry."""
REC_FILTERED = 1
"""``(REC_FILTERED, count)`` — episodes filtered at trace time."""
REC_THREAD = 2
"""``(REC_THREAD, name)`` — start (or resumption) of a thread section."""
REC_OPEN = 3
"""``(REC_OPEN, start_ns, kind, symbol)`` — open an interval."""
REC_CLOSE = 4
"""``(REC_CLOSE, end_ns)`` — close the innermost open interval."""
REC_GC = 5
"""``(REC_GC, start_ns, end_ns, symbol)`` — a complete GC interval."""
REC_TICK = 6
"""``(REC_TICK, ns)`` — a sampling tick."""
REC_ENTRY = 7
"""``(REC_ENTRY, thread_name, state, stack)`` — one thread's tick entry."""

_REQUIRED_META = (
    "application",
    "session_id",
    "start_ns",
    "end_ns",
    "gui_thread",
)

#: Stable integer codes for the enum vocabularies (enumeration order,
#: identical to the binary encoding's codes).
_KIND_CODES: Dict[IntervalKind, int] = {
    kind: index for index, kind in enumerate(IntervalKind)
}
_KINDS: List[IntervalKind] = list(IntervalKind)
_KIND_VALUES: List[str] = [kind.value for kind in IntervalKind]
_STATE_CODES: Dict[ThreadState, int] = {
    state: index for index, state in enumerate(ThreadState)
}
_STATES: List[ThreadState] = list(ThreadState)

_DISPATCH_CODE = _KIND_CODES[IntervalKind.DISPATCH]
_GC_CODE = _KIND_CODES[IntervalKind.GC]
_NATIVE_CODE = _KIND_CODES[IntervalKind.NATIVE]
_LISTENER_CODE = _KIND_CODES[IntervalKind.LISTENER]
_PAINT_CODE = _KIND_CODES[IntervalKind.PAINT]
_ASYNC_CODE = _KIND_CODES[IntervalKind.ASYNC]
_TRIGGER_CODES = (_LISTENER_CODE, _PAINT_CODE, _ASYNC_CODE)
_RUNNABLE_CODE = _STATE_CODES[ThreadState.RUNNABLE]


class _ThreadColumns:
    """One thread's interval rows as parallel arrays (rows in pre-order)."""

    __slots__ = ("name", "start", "end", "kind", "symbol", "parent", "size",
                 "root_rows")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = array("q")
        self.end = array("q")
        self.kind = array("b")
        self.symbol = array("i")
        self.parent = array("i")
        self.size = array("i")
        self.root_rows = array("i")

    def __len__(self) -> int:
        return len(self.start)

    @property
    def nbytes(self) -> int:
        return sum(
            len(column) * column.itemsize
            for column in (self.start, self.end, self.kind, self.symbol,
                           self.parent, self.size, self.root_rows)
        )


class ColumnarTrace:
    """One session trace stored as columns (see the module docstring).

    Instances are immutable once built (like :class:`Trace`); every
    accessor is safe to call from any number of analyses, and caches on
    the instance never need invalidation.
    """

    def __init__(
        self,
        metadata: TraceMetadata,
        strings: List[str],
        strings_map: Dict[str, int],
        threads: List[_ThreadColumns],
        thread_map: Dict[str, int],
        sample_ts: "array[int]",
        sample_offsets: "array[int]",
        entry_thread: "array[int]",
        entry_state: "array[int]",
        entry_stack: "array[int]",
        sample_runnable: "array[int]",
        stacks: List[StackTrace],
        short_episode_count: int = 0,
    ) -> None:
        self.metadata = metadata
        self.strings = strings
        self._strings_map = strings_map
        self.threads = threads
        self._thread_map = thread_map
        self.sample_ts = sample_ts
        self.sample_offsets = sample_offsets
        self.entry_thread = entry_thread
        self.entry_state = entry_state
        self.entry_stack = entry_stack
        self.sample_runnable = sample_runnable
        self.stacks = stacks
        self.short_episode_count = short_episode_count
        self._episode_rows_cache: Dict[bool, List[Tuple[int, int, int, int, int]]] = {}
        self._key_cache: Dict[Tuple[int, int, bool], str] = {}

    # -- pickling: drop derived caches, ship only the columns ----------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_episode_rows_cache"] = {}
        state["_key_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def interval_count(self) -> int:
        return sum(len(columns) for columns in self.threads)

    @property
    def sample_count(self) -> int:
        return len(self.sample_ts)

    @property
    def thread_order(self) -> List[str]:
        """Thread names in first-appearance (T record) order."""
        return [columns.name for columns in self.threads]

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the columns (not the facade)."""
        total = sum(columns.nbytes for columns in self.threads)
        for arr in (self.sample_ts, self.sample_offsets, self.entry_thread,
                    self.entry_state, self.entry_stack, self.sample_runnable):
            total += len(arr) * arr.itemsize
        total += sum(len(text) for text in self.strings)
        return total

    # ------------------------------------------------------------------
    # Episode enumeration (columnar twin of Trace episode splitting)
    # ------------------------------------------------------------------

    def episode_rows(
        self, all_dispatch_threads: bool = False
    ) -> List[Tuple[int, int, int, int, int]]:
        """Episode descriptors ``(thread_idx, row, index, start, end)``.

        With ``all_dispatch_threads`` False, only the GUI thread's
        episodes; otherwise every dispatch thread's, merged in time
        order with the same (stable) sort the object model uses.
        """
        cached = self._episode_rows_cache.get(all_dispatch_threads)
        if cached is not None:
            return cached
        gui = self.metadata.gui_thread
        merged: List[Tuple[int, int, int, int, int]] = []
        for thread_idx, columns in enumerate(self.threads):
            if not all_dispatch_threads and columns.name != gui:
                continue
            index = 0
            kind = columns.kind
            start = columns.start
            end = columns.end
            for row in columns.root_rows:
                if kind[row] != _DISPATCH_CODE:
                    continue
                merged.append((thread_idx, row, index, start[row], end[row]))
                index += 1
        if all_dispatch_threads:
            merged.sort(key=lambda item: item[3])
        self._episode_rows_cache[all_dispatch_threads] = merged
        return merged

    def split_episode_rows(self, config: Any) -> Tuple[list, list]:
        """(all episode rows, perceptible episode rows) under ``config``."""
        rows = self.episode_rows(
            all_dispatch_threads=config.all_dispatch_threads
        )
        threshold = config.perceptible_threshold_ms
        perceptible = [
            item for item in rows
            if (item[4] - item[3]) / NS_PER_MS >= threshold
        ]
        return rows, perceptible

    def _tick_range(self, start_ns: int, end_ns: int) -> Tuple[int, int]:
        """Sample tick indices in ``[start_ns, end_ns)``."""
        lo = bisect_left(self.sample_ts, start_ns)
        hi = bisect_left(self.sample_ts, end_ns, lo)
        return lo, hi

    def _gui_entry(self, tick: int, gui_id: int) -> int:
        """Entry index of the GUI thread in one tick, or -1."""
        entry_thread = self.entry_thread
        for entry in range(self.sample_offsets[tick],
                           self.sample_offsets[tick + 1]):
            if entry_thread[entry] == gui_id:
                return entry
        return -1

    # ------------------------------------------------------------------
    # Pattern mining on columns
    # ------------------------------------------------------------------

    def pattern_key_of(
        self, thread_idx: int, row: int, include_gc: bool = False
    ) -> str:
        """Canonical pattern key of the episode rooted at ``row``.

        Identical to :func:`repro.core.patterns.pattern_key` over the
        materialized tree: the dispatch root is implicit, GC subtrees
        are elided unless ``include_gc``.
        """
        cache_key = (thread_idx, row, include_gc)
        cached = self._key_cache.get(cache_key)
        if cached is not None:
            return cached
        columns = self.threads[thread_idx]
        kind = columns.kind
        symbol = columns.symbol
        size = columns.size
        strings = self.strings
        parts: List[str] = []
        closes: List[int] = []
        i = row + 1
        stop = row + size[row]
        while i < stop:
            while closes and i >= closes[-1]:
                parts.append(")")
                closes.pop()
            code = kind[i]
            if code == _GC_CODE and not include_gc:
                i += size[i]
                continue
            parts.append("(")
            parts.append(_KIND_VALUES[code])
            parts.append("|")
            parts.append(strings[symbol[i]])
            closes.append(i + size[i])
            i += 1
        while closes:
            parts.append(")")
            closes.pop()
        key = "".join(parts)
        self._key_cache[cache_key] = key
        return key

    def pattern_counts(
        self,
        threshold_ms: float,
        include_gc: bool = False,
        all_dispatch_threads: bool = False,
    ) -> Tuple[Dict[str, Tuple[int, int]], int]:
        """Per-pattern ``key -> (count, perceptible)`` tallies plus the
        count of structure-less episodes, in first-appearance key order
        (the order that makes merged tables bit-identical to serial
        mining)."""
        counts: Dict[str, Tuple[int, int]] = {}
        excluded = 0
        for thread_idx, row, _index, start, end in self.episode_rows(
            all_dispatch_threads=all_dispatch_threads
        ):
            if self.threads[thread_idx].size[row] <= 1:
                excluded += 1
                continue
            key = self.pattern_key_of(thread_idx, row, include_gc=include_gc)
            count, perceptible = counts.get(key, (0, 0))
            is_perceptible = (end - start) / NS_PER_MS >= threshold_ms
            counts[key] = (
                count + 1,
                perceptible + (1 if is_perceptible else 0),
            )
        return counts, excluded

    # ------------------------------------------------------------------
    # Characterization analyses on columns
    # ------------------------------------------------------------------

    def trigger_summary(self, episode_rows: Sequence[Tuple[int, int, int, int, int]]):
        """Columnar twin of :func:`repro.core.triggers.summarize`."""
        from repro.core.triggers import Trigger, TriggerSummary

        counts: Dict[Any, int] = {}
        for thread_idx, row, _index, _start, _end in episode_rows:
            columns = self.threads[thread_idx]
            kind = columns.kind
            size = columns.size
            trigger = Trigger.UNSPECIFIED
            stop = row + size[row]
            i = row + 1
            while i < stop:
                code = kind[i]
                if code == _LISTENER_CODE:
                    trigger = Trigger.INPUT
                    break
                if code == _PAINT_CODE:
                    trigger = Trigger.OUTPUT
                    break
                if code == _ASYNC_CODE:
                    trigger = Trigger.ASYNC
                    for j in range(i + 1, i + size[i]):
                        if kind[j] == _PAINT_CODE:
                            trigger = Trigger.OUTPUT
                            break
                    break
                i += 1
            counts[trigger] = counts.get(trigger, 0) + 1
        return TriggerSummary(counts)

    def threadstate_summary(self, episode_rows: Sequence[Tuple[int, int, int, int, int]]):
        """Columnar twin of :func:`repro.core.threadstates.summarize`."""
        from repro.core.threadstates import ThreadStateSummary

        gui_id = self._strings_map.get(self.metadata.gui_thread, -1)
        tallies = [0] * len(_STATES)
        entry_state = self.entry_state
        for _thread_idx, _row, _index, start, end in episode_rows:
            lo, hi = self._tick_range(start, end)
            for tick in range(lo, hi):
                entry = self._gui_entry(tick, gui_id)
                if entry >= 0:
                    tallies[entry_state[entry]] += 1
        counts = {
            state: tallies[code]
            for code, state in enumerate(_STATES)
            if tallies[code]
        }
        return ThreadStateSummary(counts)

    def concurrency_summary(self, episode_rows: Sequence[Tuple[int, int, int, int, int]]):
        """Columnar twin of :func:`repro.core.concurrency.summarize`."""
        from repro.core.concurrency import ConcurrencySummary

        runnable_total = 0
        sample_count = 0
        sample_runnable = self.sample_runnable
        for _thread_idx, _row, _index, start, end in episode_rows:
            lo, hi = self._tick_range(start, end)
            sample_count += hi - lo
            for tick in range(lo, hi):
                runnable_total += sample_runnable[tick]
        return ConcurrencySummary(
            runnable_total=runnable_total, sample_count=sample_count
        )

    def _merged_spans(
        self, columns: _ThreadColumns, row: int, code: int
    ) -> List[Tuple[int, int]]:
        """Merged (start, end) spans of ``code`` intervals under ``row``."""
        kind = columns.kind
        start = columns.start
        end = columns.end
        spans = [
            (start[i], end[i])
            for i in range(row + 1, row + columns.size[row])
            if kind[i] == code
        ]
        if not spans:
            return []
        spans.sort()
        merged = [spans[0]]
        for span_start, span_end in spans[1:]:
            last_start, last_end = merged[-1]
            if span_start <= last_end:
                merged[-1] = (last_start, max(last_end, span_end))
            else:
                merged.append((span_start, span_end))
        return merged

    def location_summary(
        self,
        episode_rows: Sequence[Tuple[int, int, int, int, int]],
        library_prefixes: Sequence[str],
    ):
        """Columnar twin of :func:`repro.core.location.summarize`."""
        from repro.core.location import LocationSummary

        gui_id = self._strings_map.get(self.metadata.gui_thread, -1)
        app_samples = 0
        library_samples = 0
        gc_ns = 0
        native_ns = 0
        episode_ns = 0
        # 0 = excluded (empty or native leaf), 1 = library, 2 = app.
        classes: Dict[int, int] = {}
        stacks = self.stacks
        entry_stack = self.entry_stack
        for thread_idx, row, _index, start, end in episode_rows:
            episode_ns += end - start
            columns = self.threads[thread_idx]
            gc_spans = self._merged_spans(columns, row, _GC_CODE)
            native_spans = self._merged_spans(columns, row, _NATIVE_CODE)
            ep_gc = 0
            for span_start, span_end in gc_spans:
                lo = max(span_start, start)
                hi = min(span_end, end)
                if hi > lo:
                    ep_gc += hi - lo
            ep_native = 0
            for span_start, span_end in native_spans:
                lo = max(span_start, start)
                hi = min(span_end, end)
                if hi > lo:
                    ep_native += hi - lo
            overlap = 0
            for n_start, n_end in native_spans:
                for g_start, g_end in gc_spans:
                    lo = max(n_start, g_start)
                    hi = min(n_end, g_end)
                    if hi > lo:
                        overlap += hi - lo
            gc_ns += ep_gc
            native_ns += ep_native - overlap
            lo, hi = self._tick_range(start, end)
            for tick in range(lo, hi):
                entry = self._gui_entry(tick, gui_id)
                if entry < 0:
                    continue
                stack_id = entry_stack[entry]
                verdict = classes.get(stack_id)
                if verdict is None:
                    stack = stacks[stack_id]
                    leaf = stack.leaf
                    if leaf is None or leaf.is_native:
                        verdict = 0
                    elif leaf.is_library(library_prefixes):
                        verdict = 1
                    else:
                        verdict = 2
                    classes[stack_id] = verdict
                if verdict == 1:
                    library_samples += 1
                elif verdict == 2:
                    app_samples += 1
        return LocationSummary(
            app_samples=app_samples,
            library_samples=library_samples,
            gc_ns=gc_ns,
            native_ns=native_ns,
            episode_ns=episode_ns,
        )

    def session_stats_row(self, threshold_ms: float):
        """Columnar twin of :func:`repro.core.statistics.session_stats`.

        Works over the GUI thread's episodes (the Table III population),
        reproducing the reference implementation's arithmetic expression
        by expression so rows compare equal to the object path.
        """
        from repro.core.patterns import key_depth, key_descendant_count
        from repro.core.statistics import SECONDS_PER_MINUTE, SessionStats

        episodes = self.episode_rows(all_dispatch_threads=False)
        perceptible_count = 0
        in_episode_ns = 0
        for _thread_idx, _row, _index, start, end in episodes:
            in_episode_ns += end - start
            if (end - start) / NS_PER_MS >= threshold_ms:
                perceptible_count += 1
        in_episode_minutes = in_episode_ns / 1e9 / SECONDS_PER_MINUTE
        if in_episode_minutes > 0:
            long_per_min = perceptible_count / in_episode_minutes
        else:
            long_per_min = 0.0
        counts, _excluded = self.pattern_counts(
            threshold_ms=threshold_ms, include_gc=False
        )
        distinct = len(counts)
        covered = sum(count for count, _perceptible in counts.values())
        singletons = sum(
            1 for count, _perceptible in counts.values() if count == 1
        )
        if distinct:
            singleton_fraction = singletons / distinct
            mean_descendants = (
                sum(key_descendant_count(key) for key in counts) / distinct
            )
            mean_depth = sum(key_depth(key) for key in counts) / distinct
        else:
            singleton_fraction = 0.0
            mean_descendants = 0.0
            mean_depth = 0.0
        e2e = self.metadata.duration_ns
        if e2e == 0:
            in_episode_fraction = 0.0
        else:
            in_episode_fraction = in_episode_ns / e2e
        return SessionStats(
            application=self.metadata.application,
            e2e_s=self.metadata.duration_s,
            in_episode_pct=100.0 * in_episode_fraction,
            below_filter=float(self.short_episode_count),
            traced=float(len(episodes)),
            perceptible=float(perceptible_count),
            long_per_min=long_per_min,
            distinct_patterns=float(distinct),
            covered_episodes=float(covered),
            singleton_pct=100.0 * singleton_fraction,
            mean_descendants=mean_descendants,
            mean_depth=mean_depth,
        )

    # ------------------------------------------------------------------
    # Canonical serialization (digest) without materializing objects
    # ------------------------------------------------------------------

    def canonical_lines(self) -> List[str]:
        """The canonical text serialization, byte-identical to
        :func:`repro.lila.writer.trace_to_lines` over the materialized
        trace — computed straight from the columns."""
        from repro.lila.format import check_symbol, encode_stack, header_line

        meta = self.metadata
        lines = [header_line()]
        lines.append(
            f"M application {check_symbol(meta.application, 'application')}"
        )
        lines.append(
            f"M session_id {check_symbol(meta.session_id, 'session id')}"
        )
        lines.append(f"M start_ns {meta.start_ns}")
        lines.append(f"M end_ns {meta.end_ns}")
        lines.append(
            f"M gui_thread {check_symbol(meta.gui_thread, 'thread name')}"
        )
        lines.append(f"M sample_period_ns {meta.sample_period_ns}")
        lines.append(f"M filter_ms {meta.filter_ms!r}")
        for key in sorted(meta.extra):
            lines.append(
                f"M x.{check_symbol(key, 'metadata key')} "
                f"{check_symbol(meta.extra[key], 'metadata value')}"
            )
        lines.append(f"F {self.short_episode_count}")

        names = sorted(self._thread_map)
        gui = meta.gui_thread
        if gui in names:
            names.remove(gui)
            names.insert(0, gui)
        checked: Dict[int, str] = {}
        strings = self.strings

        def symbol_text(symbol_id: int) -> str:
            text = checked.get(symbol_id)
            if text is None:
                text = check_symbol(strings[symbol_id])
                checked[symbol_id] = text
            return text

        for name in names:
            columns = self.threads[self._thread_map[name]]
            lines.append(f"T {check_symbol(name, 'thread name')}")
            kind = columns.kind
            start = columns.start
            end = columns.end
            symbol = columns.symbol
            size = columns.size
            closes: List[Tuple[int, int]] = []
            for row in range(len(columns)):
                while closes and row >= closes[-1][0]:
                    lines.append(f"C {closes.pop()[1]}")
                if kind[row] == _GC_CODE and size[row] == 1:
                    lines.append(
                        f"G {start[row]} {end[row]} {symbol_text(symbol[row])}"
                    )
                else:
                    lines.append(
                        f"O {start[row]} {_KIND_VALUES[kind[row]]} "
                        f"{symbol_text(symbol[row])}"
                    )
                    closes.append((row + size[row], end[row]))
            while closes:
                lines.append(f"C {closes.pop()[1]}")

        encoded_stacks: Dict[int, str] = {}
        entry_thread = self.entry_thread
        entry_state = self.entry_state
        entry_stack = self.entry_stack
        for tick in range(len(self.sample_ts)):
            lines.append(f"P {self.sample_ts[tick]}")
            for entry in range(self.sample_offsets[tick],
                               self.sample_offsets[tick + 1]):
                stack_id = entry_stack[entry]
                encoded = encoded_stacks.get(stack_id)
                if encoded is None:
                    encoded = encode_stack(self.stacks[stack_id])
                    encoded_stacks[stack_id] = encoded
                lines.append(
                    f"t {check_symbol(strings[entry_thread[entry]], 'thread name')} "
                    f"{_STATES[entry_state[entry]].value} {encoded}"
                )
        return lines

    # ------------------------------------------------------------------
    # Materialization (the facade's backing)
    # ------------------------------------------------------------------

    def to_trace(self) -> Trace:
        """Materialize the classic object model from the columns.

        The result is exactly what the pre-columnar reader produced:
        same tree shapes, same thread order, same samples.
        """
        thread_roots: Dict[str, List[Interval]] = {}
        for columns in self.threads:
            nodes: List[Interval] = []
            roots: List[Interval] = []
            kind = columns.kind
            start = columns.start
            end = columns.end
            symbol = columns.symbol
            parent = columns.parent
            strings = self.strings
            for row in range(len(columns)):
                node = Interval(
                    _KINDS[kind[row]],
                    strings[symbol[row]],
                    start[row],
                    end[row],
                )
                nodes.append(node)
                parent_row = parent[row]
                if parent_row < 0:
                    roots.append(node)
                else:
                    parent_node = nodes[parent_row]
                    parent_node.children.append(node)
                    node.parent = parent_node
            thread_roots[columns.name] = roots

        samples: List[Sample] = []
        strings = self.strings
        stacks = self.stacks
        for tick in range(len(self.sample_ts)):
            entries = [
                ThreadSample(
                    strings[self.entry_thread[entry]],
                    _STATES[self.entry_state[entry]],
                    stacks[self.entry_stack[entry]],
                )
                for entry in range(self.sample_offsets[tick],
                                   self.sample_offsets[tick + 1])
            ]
            samples.append(Sample(self.sample_ts[tick], entries))

        return Trace(
            self.metadata,
            thread_roots,
            samples=samples,
            short_episode_count=self.short_episode_count,
        )

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        """Columnarize an existing object-model trace.

        Threads keep the ``thread_roots`` iteration order and samples
        their sorted order, so ``to_trace`` round-trips and
        ``canonical_lines`` matches ``trace_to_lines(trace)`` exactly.
        """
        builder = ColumnarBuilder()
        meta = trace.metadata
        feed = builder.feed
        feed((REC_META, "application", meta.application, False))
        feed((REC_META, "session_id", meta.session_id, False))
        feed((REC_META, "start_ns", meta.start_ns, False))
        feed((REC_META, "end_ns", meta.end_ns, False))
        feed((REC_META, "gui_thread", meta.gui_thread, False))
        feed((REC_META, "sample_period_ns", meta.sample_period_ns, False))
        feed((REC_META, "filter_ms", meta.filter_ms, False))
        for key, value in meta.extra.items():
            feed((REC_META, key, value, True))
        feed((REC_FILTERED, trace.short_episode_count))

        def emit(interval: Interval) -> None:
            feed((REC_OPEN, interval.start_ns, interval.kind, interval.symbol))
            for child in interval.children:
                emit(child)
            feed((REC_CLOSE, interval.end_ns))

        for name, roots in trace.thread_roots.items():
            feed((REC_THREAD, name))
            for root in roots:
                emit(root)

        for sample in trace.samples:
            feed((REC_TICK, sample.timestamp_ns))
            for entry in sample.threads:
                feed((REC_ENTRY, entry.thread_name, entry.state, entry.stack))

        builder.flush_samples()
        builder.check_required_meta()
        return builder.finish(builder.build_metadata())

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace({self.metadata.application!r}, "
            f"{self.interval_count} intervals, {self.sample_count} samples, "
            f"{len(self.strings)} strings)"
        )


class ColumnarBuilder:
    """Streams :class:`TraceSource` records into a :class:`ColumnarTrace`.

    The builder enforces the proper-nesting invariant while streaming,
    with exactly the error messages of
    :class:`~repro.core.intervals.IntervalTreeBuilder` (nesting damage)
    and the classic reader (structural damage), so swapping it in is
    invisible to everything that matches on messages.
    """

    def __init__(self) -> None:
        self.meta: Dict[str, Any] = {}
        self.extra: Dict[str, Any] = {}
        self.short_count = 0
        self.record_count = 0
        self._strings: List[str] = []
        self._strings_map: Dict[str, int] = {}
        self._threads: List[_ThreadColumns] = []
        self._thread_map: Dict[str, int] = {}
        # Per thread: a stack of [row, kind, symbol, start_ns, children_end]
        # frames for the currently open intervals.
        self._open: List[List[list]] = []
        self._last_root_end: List[Optional[int]] = []
        self._current: Optional[int] = None
        # Bound per REC_THREAD so the per-interval hot path does no
        # list indexing: the current thread's columns and open frames.
        self._cur_columns: Optional[_ThreadColumns] = None
        self._cur_frames: Optional[List[list]] = None
        self._ticks: List[Tuple[int, List[Tuple[int, int, int]]]] = []
        self._pending_tick: Optional[int] = None
        self._pending_entries: List[Tuple[int, int, int]] = []
        self._stacks: List[StackTrace] = []
        self._stacks_map: Dict[StackTrace, int] = {}

    # -- interning -----------------------------------------------------

    def _intern(self, text: str) -> int:
        index = self._strings_map.get(text)
        if index is None:
            index = len(self._strings)
            self._strings_map[text] = index
            self._strings.append(text)
        return index

    def _intern_stack(self, stack: StackTrace) -> int:
        index = self._stacks_map.get(stack)
        if index is None:
            index = len(self._stacks)
            self._stacks_map[stack] = index
            self._stacks.append(stack)
        return index

    # -- record intake -------------------------------------------------

    def feed(self, record: tuple) -> None:
        """Apply one source record to the store under construction."""
        self.record_count += 1
        tag = record[0]
        if tag == REC_OPEN:
            _, start_ns, kind, symbol = record
            self._open_interval(kind, symbol, start_ns)
        elif tag == REC_CLOSE:
            self._close_interval(record[1])
        elif tag == REC_GC:
            _, start_ns, end_ns, symbol = record
            self._open_interval(IntervalKind.GC, symbol, start_ns)
            self._close_interval(end_ns)
        elif tag == REC_ENTRY:
            if self._pending_tick is None:
                raise TraceFormatError("t record outside a tick")
            _, thread_name, state, stack = record
            self._pending_entries.append(
                (
                    self._intern(thread_name),
                    _STATE_CODES[state],
                    self._intern_stack(stack),
                )
            )
        elif tag == REC_TICK:
            self.flush_samples()
            self._pending_tick = record[1]
        elif tag == REC_THREAD:
            self.flush_samples()
            name = record[1]
            index = self._thread_map.get(name)
            if index is None:
                index = len(self._threads)
                self._thread_map[name] = index
                self._threads.append(_ThreadColumns(name))
                self._open.append([])
                self._last_root_end.append(None)
                self._intern(name)
            self._current = index
            self._cur_columns = self._threads[index]
            self._cur_frames = self._open[index]
        elif tag == REC_META:
            _, key, value, is_extra = record
            if is_extra:
                self.extra[key] = value
            else:
                self.meta[key] = value
        elif tag == REC_FILTERED:
            self.short_count = record[1]
        else:
            raise TraceFormatError(f"unknown source record tag {tag!r}")

    def _open_interval(
        self, kind: IntervalKind, symbol: str, start_ns: int
    ) -> None:
        frames = self._cur_frames
        if frames is None:
            raise TraceFormatError("interval record before any T record")
        if frames:
            top = frames[-1]
            if start_ns < top[3]:
                raise NestingError(
                    f"interval {kind.value}:{symbol} starts at {start_ns}, "
                    f"before its enclosing interval ({top[3]})"
                )
            if top[4] is not None and start_ns < top[4]:
                raise NestingError(
                    f"interval {kind.value}:{symbol} starts at {start_ns}, "
                    f"inside the previous sibling"
                )
            parent_row = top[0]
        else:
            last_end = self._last_root_end[self._current]
            if last_end is not None and start_ns < last_end:
                raise NestingError(
                    f"root interval {kind.value}:{symbol} starts at "
                    f"{start_ns}, inside the previous root"
                )
            parent_row = -1
        columns = self._cur_columns
        row = len(columns.start)
        columns.start.append(start_ns)
        columns.end.append(0)
        columns.kind.append(_KIND_CODES[kind])
        columns.symbol.append(self._intern(symbol))
        columns.parent.append(parent_row)
        columns.size.append(0)
        frames.append([row, kind, symbol, start_ns, None])

    def _close_interval(self, end_ns: int) -> None:
        frames = self._cur_frames
        if frames is None:
            raise TraceFormatError("interval record before any T record")
        if not frames:
            raise NestingError("close without a matching open")
        row, kind, symbol, start_ns, children_end = frames.pop()
        if children_end is not None and end_ns < children_end:
            raise NestingError(
                f"interval {kind.value}:{symbol} closes at "
                f"{end_ns}, before its last child ends"
            )
        if end_ns < start_ns:
            raise NestingError(
                f"interval {kind.value}:{symbol} ends before it starts "
                f"({end_ns} < {start_ns})"
            )
        columns = self._cur_columns
        columns.end[row] = end_ns
        columns.size[row] = len(columns.start) - row
        if frames:
            frames[-1][4] = end_ns
        else:
            self._last_root_end[self._current] = end_ns
            columns.root_rows.append(row)

    # -- finishing -----------------------------------------------------

    def flush_samples(self) -> None:
        """Seal the pending sampling tick, if any."""
        if self._pending_tick is not None:
            self._ticks.append((self._pending_tick, self._pending_entries))
            self._pending_tick = None
            self._pending_entries = []

    def check_required_meta(self) -> None:
        """Raise for metadata the format requires but the stream lacked."""
        for key in _REQUIRED_META:
            if key not in self.meta:
                raise TraceFormatError(f"missing required metadata {key!r}")

    def build_metadata(self) -> TraceMetadata:
        """Construct the validated :class:`TraceMetadata`."""
        try:
            return TraceMetadata(
                application=self.meta["application"],
                session_id=self.meta["session_id"],
                start_ns=int(self.meta["start_ns"]),
                end_ns=int(self.meta["end_ns"]),
                gui_thread=self.meta["gui_thread"],
                sample_period_ns=int(
                    self.meta.get("sample_period_ns", 10_000_000)
                ),
                filter_ms=float(self.meta.get("filter_ms", 3.0)),
                extra=self.extra,
            )
        except ValueError as error:
            raise TraceFormatError(f"bad metadata value: {error}") from None

    def finish(self, metadata: TraceMetadata) -> ColumnarTrace:
        """Seal the store: closure, ordering, and bounds invariants.

        Raises:
            NestingError: intervals left open at end of stream.
            AnalysisError: episodes outside the session bounds.
        """
        for frames in self._open:
            if frames:
                open_names = ", ".join(
                    f"{frame[1].value}:{frame[2]}" for frame in frames
                )
                raise NestingError(
                    f"unclosed intervals at end of trace: {open_names}"
                )

        self._ticks.sort(key=lambda tick: tick[0])
        sample_ts = array("q")
        sample_offsets = array("i", [0])
        entry_thread = array("i")
        entry_state = array("b")
        entry_stack = array("i")
        sample_runnable = array("i")
        for ts, entries in self._ticks:
            sample_ts.append(ts)
            runnable = 0
            for thread_id, state_code, stack_id in entries:
                entry_thread.append(thread_id)
                entry_state.append(state_code)
                entry_stack.append(stack_id)
                if state_code == _RUNNABLE_CODE:
                    runnable += 1
            sample_runnable.append(runnable)
            sample_offsets.append(len(entry_thread))

        gui_index = self._thread_map.get(metadata.gui_thread)
        if gui_index is not None:
            columns = self._threads[gui_index]
            episode_index = 0
            for row in columns.root_rows:
                if columns.kind[row] != _DISPATCH_CODE:
                    continue
                if columns.start[row] < metadata.start_ns or (
                    columns.end[row] > metadata.end_ns
                ):
                    raise AnalysisError(
                        f"episode #{episode_index} "
                        f"[{columns.start[row]}, {columns.end[row]}) lies "
                        f"outside the session bounds"
                    )
                episode_index += 1

        return ColumnarTrace(
            metadata=metadata,
            strings=self._strings,
            strings_map=self._strings_map,
            threads=self._threads,
            thread_map=self._thread_map,
            sample_ts=sample_ts,
            sample_offsets=sample_offsets,
            entry_thread=entry_thread,
            entry_state=entry_state,
            entry_stack=entry_stack,
            sample_runnable=sample_runnable,
            stacks=self._stacks,
            short_episode_count=self.short_count,
        )


class FacadeTrace(Trace):
    """A :class:`Trace` whose object graph is built only on demand.

    Construction stores just the columnar store and the metadata; the
    first access to ``thread_roots``, ``samples``, ``episodes``, or the
    per-thread episode table materializes the classic object model via
    :meth:`ColumnarTrace.to_trace` and caches it on the instance.
    Analyses that understand the columnar store (everything in
    :mod:`repro.core.analyses`) never trigger materialization.
    """

    _LAZY = frozenset(
        ("thread_roots", "samples", "episodes", "_episodes_by_thread")
    )

    def __init__(self, store: ColumnarTrace) -> None:
        # Deliberately not calling Trace.__init__: the whole point is
        # to defer building interval/sample objects.
        self.columnar = store
        self.metadata = store.metadata
        self.short_episode_count = store.short_episode_count

    def __getattr__(self, name: str):
        if name in FacadeTrace._LAZY:
            materialized = self.columnar.to_trace()
            self.__dict__["thread_roots"] = materialized.thread_roots
            self.__dict__["samples"] = materialized.samples
            self.__dict__["episodes"] = materialized.episodes
            self.__dict__["_episodes_by_thread"] = (
                materialized._episodes_by_thread
            )
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def is_materialized(self) -> bool:
        """True once the object graph has been built."""
        return "thread_roots" in self.__dict__

    def __reduce__(self):
        return (
            _restore_facade,
            (self.columnar, getattr(self, "_content_digest", None)),
        )

    def __repr__(self) -> str:
        state = "materialized" if self.is_materialized else "columnar"
        return (
            f"FacadeTrace({self.metadata.application!r}, "
            f"{self.columnar.interval_count} intervals, {state})"
        )


def _restore_facade(
    store: ColumnarTrace, digest: Optional[str]
) -> FacadeTrace:
    trace = FacadeTrace(store)
    if digest is not None:
        trace._content_digest = digest
    return trace


def as_columnar(trace: Trace) -> Trace:
    """``trace`` as a columnar-backed facade (no-op when it already is).

    Used by the study runner so simulated traces ship to workers as
    compact columns, with the memoized content digest carried over.
    """
    if getattr(trace, "columnar", None) is not None:
        return trace
    store = ColumnarTrace.from_trace(trace)
    facade = FacadeTrace(store)
    digest = getattr(trace, "_content_digest", None)
    if digest is not None:
        facade._content_digest = digest
    return facade
