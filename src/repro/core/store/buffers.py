"""Typed column buffers and the intern table behind the columnar store.

:class:`ColumnBuffer` is the one abstraction every numeric column of a
:class:`~repro.core.store.columns.ColumnarTrace` passes through: in
*build* mode it owns an appendable :class:`array.array`; in *view* mode
it wraps a zero-copy ``memoryview`` cast over an mmap'd `.lilac`
segment (see :mod:`repro.lila.colfile`). Both modes expose the same
``.data`` sequence — ``array`` and ``memoryview.cast(typecode)`` are
duck-type compatible for indexing, length, iteration, and ``bisect`` —
so the kernels never pay a wrapper call on the hot path: they read the
raw sequence directly.

:class:`InternTable` is the string/stack interning structure shared by
the builder, the store, and the `.lilac` intern-table block. It can be
passed to several :class:`~repro.core.store.build.ColumnarBuilder`
instances to share one pool across every trace of a study (symbol ids
are internal, so sharing never changes canonical serialization or
digests).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence

#: Struct/typecode sizes for the column typecodes the store uses.
ITEM_SIZES: Dict[str, int] = {"b": 1, "i": 4, "q": 8, "d": 8}


class ColumnBuffer:
    """One typed numeric column: an appendable array or a zero-copy view.

    Attributes:
        typecode: the ``array`` typecode (``"q"``, ``"i"``, ``"b"``,
            or ``"d"``).
        data: the raw sequence — an :class:`array.array` in build mode,
            a cast ``memoryview`` in view mode. Kernels index this
            directly; the buffer object is the construction /
            serialization boundary.
    """

    __slots__ = ("typecode", "data")

    def __init__(
        self, typecode: str, data: Optional[Sequence[int]] = None
    ) -> None:
        if typecode not in ITEM_SIZES:
            raise ValueError(f"unsupported column typecode {typecode!r}")
        self.typecode = typecode
        if data is None:
            self.data = array(typecode)
        elif isinstance(data, (array, memoryview)):
            self.data = data
        else:
            self.data = array(typecode, data)

    @classmethod
    def view(cls, typecode: str, raw: memoryview) -> "ColumnBuffer":
        """Zero-copy buffer over ``raw`` (a slice of an mmap'd file)."""
        buffer = cls.__new__(cls)
        buffer.typecode = typecode
        buffer.data = raw.cast(typecode)
        return buffer

    @property
    def writable(self) -> bool:
        """True in build mode (appendable array backing)."""
        return isinstance(self.data, array)

    @property
    def itemsize(self) -> int:
        return ITEM_SIZES[self.typecode]

    @property
    def nbytes(self) -> int:
        return len(self.data) * ITEM_SIZES[self.typecode]

    def append(self, value: int) -> None:
        self.data.append(value)

    def tobytes(self) -> bytes:
        """The column's raw little-to-native-endian bytes."""
        if isinstance(self.data, array):
            return self.data.tobytes()
        return bytes(memoryview(self.data))

    def materialize(self) -> "ColumnBuffer":
        """An owning (array-backed) copy of this buffer."""
        copied = array(self.typecode)
        copied.frombytes(self.tobytes())
        return ColumnBuffer(self.typecode, copied)

    def to_numpy(self) -> Any:
        """A zero-copy ndarray over the column (numpy mode only).

        Raises:
            RuntimeError: when numpy acceleration is off or unavailable.
        """
        from repro.core.store import accel

        np = accel.get_numpy()
        if np is None:
            raise RuntimeError(
                f"numpy acceleration is disabled (set {accel.ENV_FLAG}=1 "
                "with numpy installed)"
            )
        return accel.as_ndarray(np, self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, index: int) -> int:
        return self.data[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.data)

    def __repr__(self) -> str:
        mode = "array" if self.writable else "view"
        return (
            f"ColumnBuffer({self.typecode!r}, {len(self.data)} items, {mode})"
        )


class InternTable:
    """First-appearance interning of hashable values (strings, stacks).

    ``strings`` is the id → value list and ``ids`` the value → id map;
    both are plain containers shared *by reference* with the store (the
    kernels index ``store.strings`` directly, so the table adds zero
    hot-path overhead). One table may back several builders — a study's
    traces then share one pool; ids are internal, so sharing is
    invisible to serialization and digests.
    """

    __slots__ = ("strings", "ids")

    def __init__(
        self,
        values: Optional[Sequence[Hashable]] = None,
        ids: Optional[Dict[Hashable, int]] = None,
    ) -> None:
        self.strings: List[Any] = list(values) if values is not None else []
        if ids is not None:
            self.ids: Dict[Hashable, int] = ids
        else:
            self.ids = {
                value: index for index, value in enumerate(self.strings)
            }

    @classmethod
    def adopt(
        cls, values: List[Any], ids: Dict[Hashable, int]
    ) -> "InternTable":
        """A table over existing containers, taken by reference (not
        copied) — the store and its builder keep sharing one pool."""
        table = cls.__new__(cls)
        table.strings = values
        table.ids = ids
        return table

    def intern(self, value: Hashable) -> int:
        """The stable id of ``value``, assigning the next id when new."""
        index = self.ids.get(value)
        if index is None:
            index = len(self.strings)
            self.ids[value] = index
            self.strings.append(value)
        return index

    def __getitem__(self, index: int) -> Any:
        return self.strings[index]

    def __len__(self) -> int:
        return len(self.strings)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.strings)

    def __contains__(self, value: Hashable) -> bool:
        return value in self.ids

    def __repr__(self) -> str:
        return f"InternTable({len(self.strings)} entries)"
