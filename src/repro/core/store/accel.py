"""Optional numpy acceleration behind the ``REPRO_NUMPY=1`` flag.

The columnar kernels are pure-Python loops over typed ``array``/
``memoryview`` columns. When numpy is installed *and* the environment
opts in with ``REPRO_NUMPY=1``, a handful of whole-column reductions
(perceptible filtering, sample sums) run through numpy instead. The
accelerated paths are integer-exact twins of the Python loops — results
are converted back with ``int()`` so partials, summaries, and cached
bytes stay byte-identical either way (pinned by
``tests/test_columnar_parity.py`` in both modes).

The flag is read at call time, not import time, so tests can flip modes
with ``monkeypatch.setenv`` and benchmarks can compare both in one
process.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

#: Environment variable that opts into numpy kernels when set to ``1``.
ENV_FLAG = "REPRO_NUMPY"

#: Memoized import result; keyed so flipping the flag re-resolves.
_numpy_module: Any = None
_numpy_probed = False


def numpy_requested() -> bool:
    """True when the environment opts into numpy acceleration."""
    return os.environ.get(ENV_FLAG, "") == "1"


def get_numpy() -> Optional[Any]:
    """The numpy module when requested *and* importable, else ``None``.

    Missing numpy is not an error: the flag simply stays inert and the
    pure-Python kernels run (the container may not ship numpy at all).
    """
    global _numpy_module, _numpy_probed
    if not numpy_requested():
        return None
    if not _numpy_probed:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
        _numpy_probed = True
    return _numpy_module


def as_ndarray(np: Any, column: Sequence[int]) -> Any:
    """A zero-copy ndarray view of a typed column (array or memoryview).

    ``np.asarray`` honors the buffer's typecode, so an ``array('q')``
    and an mmap-backed ``memoryview.cast('q')`` both land as int64
    without copying.
    """
    return np.asarray(memoryview(column))


def span_sum(np: Optional[Any], column: Sequence[int], lo: int, hi: int) -> int:
    """``sum(column[lo:hi])`` — numpy when enabled, exact either way."""
    if np is not None and hi - lo > 32:
        return int(as_ndarray(np, column)[lo:hi].sum())
    total = 0
    for index in range(lo, hi):
        total += column[index]
    return total


def subtree_self_times(
    np: Optional[Any],
    start: Sequence[int],
    end: Sequence[int],
    parent: Sequence[int],
    row: int,
    n: int,
) -> Sequence[int]:
    """Self time of each row of the subtree rooted at ``row``.

    The masked per-episode range reduction behind the cause kernels: for
    the ``n`` contiguous rows of one episode subtree (pre-order), the
    time each interval spent outside its direct children. ``parent``
    holds thread-local parent row indices (as the builder stores them);
    entries are returned in row order as exact Python ints.

    The numpy leg stays int64 end to end (``np.subtract.at`` over the
    raw durations) and converts back with ``.tolist()``, so results are
    byte-identical to the pure-Python loop; small subtrees skip numpy —
    the crossover mirrors :func:`span_sum`.
    """
    if np is not None and n > 32:
        seg_start = as_ndarray(np, start)[row : row + n]
        seg_end = as_ndarray(np, end)[row : row + n]
        self_times = seg_end - seg_start
        child_parents = as_ndarray(np, parent)[row + 1 : row + n] - row
        np.subtract.at(self_times, child_parents, self_times[1:].copy())
        return self_times.tolist()
    self_times = [end[i] - start[i] for i in range(row, row + n)]
    for k in range(1, n):
        self_times[parent[row + k] - row] -= end[row + k] - start[row + k]
    return self_times
