"""Column kernels: the analysis implementations over the parallel arrays.

Each function here is the columnar twin of one object-model analysis
(:mod:`repro.core.triggers`, :mod:`repro.core.threadstates`, …): it
reads a :class:`~repro.core.store.columns.ColumnarTrace`'s arrays
directly and produces summaries bit-identical to running the classic
implementation over the materialized object graph. They are free
functions (not methods) so the fused plan executor
(:mod:`repro.core.plan`) can compose them and feed shared intermediate
results — e.g. :func:`session_stats_row` accepts a precomputed
pattern-count table so one tally pass serves statistics, occurrence,
and pattern mining alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.intervals import NS_PER_MS
from repro.core.store import accel
from repro.core.store.columns import (
    _GC_CODE,
    _KIND_CODES,
    _KIND_VALUES,
    _NATIVE_CODE,
    _PAINT_CODE,
    _STATES,
    _ThreadColumns,
)

#: One episode descriptor: ``(thread_idx, row, index, start, end)``.
EpisodeRow = Tuple[int, int, int, int, int]


# ----------------------------------------------------------------------
# Pattern mining on columns
# ----------------------------------------------------------------------


def pattern_key_of(
    store: Any, thread_idx: int, row: int, include_gc: bool = False
) -> str:
    """Canonical pattern key of the episode rooted at ``row``.

    Identical to :func:`repro.core.patterns.pattern_key` over the
    materialized tree: the dispatch root is implicit, GC subtrees are
    elided unless ``include_gc``. Keys are memoized on the store.
    """
    cache_key = (thread_idx, row, include_gc)
    cached = store._key_cache.get(cache_key)
    if cached is not None:
        return cached
    columns = store.threads[thread_idx]
    kind = columns.kind
    symbol = columns.symbol
    size = columns.size
    strings = store.strings
    parts: List[str] = []
    closes: List[int] = []
    i = row + 1
    stop = row + size[row]
    while i < stop:
        while closes and i >= closes[-1]:
            parts.append(")")
            closes.pop()
        code = kind[i]
        if code == _GC_CODE and not include_gc:
            i += size[i]
            continue
        parts.append("(")
        parts.append(_KIND_VALUES[code])
        parts.append("|")
        parts.append(strings[symbol[i]])
        closes.append(i + size[i])
        i += 1
    while closes:
        parts.append(")")
        closes.pop()
    key = "".join(parts)
    store._key_cache[cache_key] = key
    return key


def pattern_counts(
    store: Any,
    threshold_ms: float,
    include_gc: bool = False,
    all_dispatch_threads: bool = False,
    rows: Optional[Sequence[EpisodeRow]] = None,
) -> Tuple[Dict[str, Tuple[int, int]], int]:
    """Per-pattern ``key -> (count, perceptible)`` tallies plus the
    count of structure-less episodes, in first-appearance key order
    (the order that makes merged tables bit-identical to serial
    mining).

    ``rows`` overrides the episode population (the fused executor
    passes a contiguous shard of the full list); shard tallies merged
    in shard order reproduce the unsharded table exactly, because
    first appearance across concatenated contiguous shards is first
    appearance over the whole list.
    """
    if rows is None:
        rows = store.episode_rows(all_dispatch_threads=all_dispatch_threads)
    counts: Dict[str, Tuple[int, int]] = {}
    excluded = 0
    for thread_idx, row, _index, start, end in rows:
        if store.threads[thread_idx].size[row] <= 1:
            excluded += 1
            continue
        key = pattern_key_of(store, thread_idx, row, include_gc=include_gc)
        count, perceptible = counts.get(key, (0, 0))
        is_perceptible = (end - start) / NS_PER_MS >= threshold_ms
        counts[key] = (
            count + 1,
            perceptible + (1 if is_perceptible else 0),
        )
    return counts, excluded


# ----------------------------------------------------------------------
# Characterization analyses on columns
# ----------------------------------------------------------------------


def trigger_summary(store: Any, episode_rows: Sequence[EpisodeRow]) -> Any:
    """Columnar twin of :func:`repro.core.triggers.summarize`.

    The store's workload family supplies the kind-to-trigger vocabulary
    and whether the Swing repaint-manager reclassification applies; the
    default gui family reproduces the pre-family behavior exactly.
    """
    from repro.core.family import family_of
    from repro.core.triggers import Trigger, TriggerSummary

    family = family_of(store.metadata)
    trigger_codes = {
        _KIND_CODES[kind]: trig for kind, trig in family.trigger_map.items()
    }
    reclassify = family.reclassify_async_paint
    counts: Dict[Any, int] = {}
    for thread_idx, row, _index, _start, _end in episode_rows:
        columns = store.threads[thread_idx]
        kind = columns.kind
        size = columns.size
        trigger = Trigger.UNSPECIFIED
        stop = row + size[row]
        i = row + 1
        while i < stop:
            mapped = trigger_codes.get(kind[i])
            if mapped is not None:
                trigger = mapped
                if mapped is Trigger.ASYNC and reclassify:
                    for j in range(i + 1, i + size[i]):
                        if kind[j] == _PAINT_CODE:
                            trigger = Trigger.OUTPUT
                            break
                break
            i += 1
        counts[trigger] = counts.get(trigger, 0) + 1
    return TriggerSummary(counts)


def cause_tally(
    store: Any, episode_rows: Sequence[EpisodeRow]
) -> Dict[str, Tuple[int, int]]:
    """Columnar twin of :func:`repro.core.causegraph.tally_causes`.

    Rows of one episode subtree are stored in pre-order, so iterating
    them in row order reproduces the object path's first-appearance
    label order exactly; self times come from the masked per-episode
    range reduction (:func:`repro.core.store.accel.subtree_self_times`),
    which is integer-exact in both numpy modes.
    """
    np = accel.get_numpy()
    strings = store.strings
    totals: Dict[str, Tuple[int, int]] = {}
    for thread_idx, row, _index, _start, _end in episode_rows:
        columns = store.threads[thread_idx]
        n = columns.size[row]
        self_ns = accel.subtree_self_times(
            np, columns.start, columns.end, columns.parent, row, n
        )
        kind = columns.kind
        symbol = columns.symbol
        local: Dict[str, int] = {}
        for k in range(n):
            label = (
                _KIND_VALUES[kind[row + k]] + ":" + strings[symbol[row + k]]
            )
            local[label] = local.get(label, 0) + self_ns[k]
        for label, ns in local.items():
            total, count = totals.get(label, (0, 0))
            totals[label] = (total + ns, count + 1)
    return totals


def threadstate_summary(store: Any, episode_rows: Sequence[EpisodeRow]) -> Any:
    """Columnar twin of :func:`repro.core.threadstates.summarize`."""
    from repro.core.threadstates import ThreadStateSummary

    gui_id = store._strings_map.get(store.metadata.gui_thread, -1)
    tallies = [0] * len(_STATES)
    entry_state = store.entry_state
    for _thread_idx, _row, _index, start, end in episode_rows:
        lo, hi = store._tick_range(start, end)
        for tick in range(lo, hi):
            entry = store._gui_entry(tick, gui_id)
            if entry >= 0:
                tallies[entry_state[entry]] += 1
    counts = {
        state: tallies[code]
        for code, state in enumerate(_STATES)
        if tallies[code]
    }
    return ThreadStateSummary(counts)


def concurrency_summary(store: Any, episode_rows: Sequence[EpisodeRow]) -> Any:
    """Columnar twin of :func:`repro.core.concurrency.summarize`."""
    from repro.core.concurrency import ConcurrencySummary

    runnable_total = 0
    sample_count = 0
    sample_runnable = store.sample_runnable
    np = accel.get_numpy()
    for _thread_idx, _row, _index, start, end in episode_rows:
        lo, hi = store._tick_range(start, end)
        sample_count += hi - lo
        runnable_total += accel.span_sum(np, sample_runnable, lo, hi)
    return ConcurrencySummary(
        runnable_total=runnable_total, sample_count=sample_count
    )


def _merged_spans(
    columns: _ThreadColumns, row: int, code: int
) -> List[Tuple[int, int]]:
    """Merged (start, end) spans of ``code`` intervals under ``row``."""
    kind = columns.kind
    start = columns.start
    end = columns.end
    spans = [
        (start[i], end[i])
        for i in range(row + 1, row + columns.size[row])
        if kind[i] == code
    ]
    if not spans:
        return []
    spans.sort()
    merged = [spans[0]]
    for span_start, span_end in spans[1:]:
        last_start, last_end = merged[-1]
        if span_start <= last_end:
            merged[-1] = (last_start, max(last_end, span_end))
        else:
            merged.append((span_start, span_end))
    return merged


def location_summary(
    store: Any,
    episode_rows: Sequence[EpisodeRow],
    library_prefixes: Sequence[str],
) -> Any:
    """Columnar twin of :func:`repro.core.location.summarize`."""
    from repro.core.location import LocationSummary

    gui_id = store._strings_map.get(store.metadata.gui_thread, -1)
    app_samples = 0
    library_samples = 0
    gc_ns = 0
    native_ns = 0
    episode_ns = 0
    # 0 = excluded (empty or native leaf), 1 = library, 2 = app.
    classes: Dict[int, int] = {}
    stacks = store.stacks
    entry_stack = store.entry_stack
    for thread_idx, row, _index, start, end in episode_rows:
        episode_ns += end - start
        columns = store.threads[thread_idx]
        gc_spans = _merged_spans(columns, row, _GC_CODE)
        native_spans = _merged_spans(columns, row, _NATIVE_CODE)
        ep_gc = 0
        for span_start, span_end in gc_spans:
            lo = max(span_start, start)
            hi = min(span_end, end)
            if hi > lo:
                ep_gc += hi - lo
        ep_native = 0
        for span_start, span_end in native_spans:
            lo = max(span_start, start)
            hi = min(span_end, end)
            if hi > lo:
                ep_native += hi - lo
        overlap = 0
        for n_start, n_end in native_spans:
            for g_start, g_end in gc_spans:
                lo = max(n_start, g_start)
                hi = min(n_end, g_end)
                if hi > lo:
                    overlap += hi - lo
        gc_ns += ep_gc
        native_ns += ep_native - overlap
        lo, hi = store._tick_range(start, end)
        for tick in range(lo, hi):
            entry = store._gui_entry(tick, gui_id)
            if entry < 0:
                continue
            stack_id = entry_stack[entry]
            verdict = classes.get(stack_id)
            if verdict is None:
                stack = stacks[stack_id]
                leaf = stack.leaf
                if leaf is None or leaf.is_native:
                    verdict = 0
                elif leaf.is_library(library_prefixes):
                    verdict = 1
                else:
                    verdict = 2
                classes[stack_id] = verdict
            if verdict == 1:
                library_samples += 1
            elif verdict == 2:
                app_samples += 1
    return LocationSummary(
        app_samples=app_samples,
        library_samples=library_samples,
        gc_ns=gc_ns,
        native_ns=native_ns,
        episode_ns=episode_ns,
    )


@dataclass(frozen=True)
class SessionStatsShard:
    """Integer-exact intermediate of one (shard of a) Table III row.

    Everything float in :class:`~repro.core.statistics.SessionStats` is
    derived from these integer tallies in :func:`session_stats_finalize`
    with exactly the reference implementation's expressions, so
    ``finalize(merge(gathers))`` is bit-identical to
    ``finalize(gather(all rows))`` — the shard merge only ever adds
    integers and concatenates pattern tallies in shard order.

    The per-trace constants (application, duration, filtered count) ride
    along so the finalize step needs no store handle; they are identical
    across the shards of one trace and the merge keeps the first.
    """

    episode_count: int
    perceptible_count: int
    in_episode_ns: int
    counts: Dict[str, Tuple[int, int]]
    excluded: int
    application: str
    e2e_ns: int
    e2e_s: float
    short_episode_count: int


def session_stats_gather(
    store: Any,
    threshold_ms: float,
    rows: Optional[Sequence[EpisodeRow]] = None,
    precomputed_counts: Optional[Tuple[Dict[str, Tuple[int, int]], int]] = None,
) -> SessionStatsShard:
    """The integer tallies of one Table III row over ``rows``.

    ``rows`` defaults to the GUI thread's full episode population;
    shard executions pass a contiguous slice of that list (and a
    matching ``precomputed_counts`` tally over the same slice).
    """
    if rows is None:
        rows = store.episode_rows(all_dispatch_threads=False)
    perceptible_count = 0
    in_episode_ns = 0
    np = accel.get_numpy()
    if np is not None and len(rows) > 64:
        durations = np.fromiter(
            (item[4] - item[3] for item in rows),
            dtype=np.int64,
            count=len(rows),
        )
        in_episode_ns = int(durations.sum())
        perceptible_count = int(
            ((durations / NS_PER_MS) >= threshold_ms).sum()
        )
    else:
        for _thread_idx, _row, _index, start, end in rows:
            in_episode_ns += end - start
            if (end - start) / NS_PER_MS >= threshold_ms:
                perceptible_count += 1
    if precomputed_counts is not None:
        counts, excluded = precomputed_counts
    else:
        counts, excluded = pattern_counts(
            store, threshold_ms=threshold_ms, include_gc=False, rows=rows
        )
    return SessionStatsShard(
        episode_count=len(rows),
        perceptible_count=perceptible_count,
        in_episode_ns=in_episode_ns,
        counts=counts,
        excluded=excluded,
        application=store.metadata.application,
        e2e_ns=store.metadata.duration_ns,
        e2e_s=store.metadata.duration_s,
        short_episode_count=store.short_episode_count,
    )


def merge_stats_shards(
    shards: Sequence[SessionStatsShard],
) -> SessionStatsShard:
    """Associative merge of contiguous shard gathers, in shard order."""
    first = shards[0]
    if len(shards) == 1:
        return first
    counts: Dict[str, Tuple[int, int]] = {}
    excluded = 0
    episode_count = perceptible_count = in_episode_ns = 0
    for shard in shards:
        episode_count += shard.episode_count
        perceptible_count += shard.perceptible_count
        in_episode_ns += shard.in_episode_ns
        excluded += shard.excluded
        for key, (count, perceptible) in shard.counts.items():
            prev_count, prev_perceptible = counts.get(key, (0, 0))
            counts[key] = (prev_count + count, prev_perceptible + perceptible)
    return SessionStatsShard(
        episode_count=episode_count,
        perceptible_count=perceptible_count,
        in_episode_ns=in_episode_ns,
        counts=counts,
        excluded=excluded,
        application=first.application,
        e2e_ns=first.e2e_ns,
        e2e_s=first.e2e_s,
        short_episode_count=first.short_episode_count,
    )


def session_stats_finalize(shard: SessionStatsShard) -> Any:
    """The :class:`~repro.core.statistics.SessionStats` row of a gather.

    Expression-for-expression the reference implementation's float
    arithmetic, applied to the integer tallies.
    """
    from repro.core.patterns import key_depth, key_descendant_count
    from repro.core.statistics import SECONDS_PER_MINUTE, SessionStats

    in_episode_minutes = shard.in_episode_ns / 1e9 / SECONDS_PER_MINUTE
    if in_episode_minutes > 0:
        long_per_min = shard.perceptible_count / in_episode_minutes
    else:
        long_per_min = 0.0
    counts = shard.counts
    distinct = len(counts)
    covered = sum(count for count, _perceptible in counts.values())
    singletons = sum(
        1 for count, _perceptible in counts.values() if count == 1
    )
    if distinct:
        singleton_fraction = singletons / distinct
        mean_descendants = (
            sum(key_descendant_count(key) for key in counts) / distinct
        )
        mean_depth = sum(key_depth(key) for key in counts) / distinct
    else:
        singleton_fraction = 0.0
        mean_descendants = 0.0
        mean_depth = 0.0
    if shard.e2e_ns == 0:
        in_episode_fraction = 0.0
    else:
        in_episode_fraction = shard.in_episode_ns / shard.e2e_ns
    return SessionStats(
        application=shard.application,
        e2e_s=shard.e2e_s,
        in_episode_pct=100.0 * in_episode_fraction,
        below_filter=float(shard.short_episode_count),
        traced=float(shard.episode_count),
        perceptible=float(shard.perceptible_count),
        long_per_min=long_per_min,
        distinct_patterns=float(distinct),
        covered_episodes=float(covered),
        singleton_pct=100.0 * singleton_fraction,
        mean_descendants=mean_descendants,
        mean_depth=mean_depth,
    )


def session_stats_row(
    store: Any,
    threshold_ms: float,
    precomputed_counts: Optional[Tuple[Dict[str, Tuple[int, int]], int]] = None,
) -> Any:
    """Columnar twin of :func:`repro.core.statistics.session_stats`.

    Works over the GUI thread's episodes (the Table III population),
    reproducing the reference implementation's arithmetic expression by
    expression so rows compare equal to the object path.
    ``precomputed_counts`` lets the fused plan executor pass in the
    ``(counts, excluded)`` result of a :func:`pattern_counts` call it
    already made with the identical parameters (``threshold_ms``,
    ``include_gc=False``, ``all_dispatch_threads=False``) — the row is
    the same either way, one tally pass cheaper. Since the sharding
    refactor this is just ``gather → finalize`` over the full row list;
    shard executions run the same two halves around an integer merge.
    """
    return session_stats_finalize(
        session_stats_gather(
            store, threshold_ms, precomputed_counts=precomputed_counts
        )
    )
