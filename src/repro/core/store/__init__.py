"""The columnar trace store: one-pass ingestion, array-backed analysis.

The object model (:class:`~repro.core.trace.Trace` holding one
:class:`~repro.core.intervals.Interval` per traced interval and one
object per sample entry) is pleasant to program against but expensive to
build: parsing a large session allocates millions of small objects
before the first analysis runs. This package stores the same information
as parallel arrays instead:

- per thread, six columns over interval *rows* in open order (which is
  pre-order): ``start``/``end`` (ns, int64), ``kind`` (int8 code),
  ``symbol`` (interned string id), ``parent`` (thread-local row index,
  ``-1`` for roots) and ``size`` (rows in the subtree including the row
  itself, so a subtree is the contiguous slice ``[row, row + size)``);
- one global string intern pool shared by symbols and thread names;
- samples as a flat entry table (thread id, state code, stack id) with
  per-tick offsets, plus interned :class:`~repro.core.samples.StackTrace`
  objects (stacks repeat constantly, so each distinct stack is one
  shared object).

The package is split by role:

- :mod:`~repro.core.store.columns` — the ``REC_*`` record vocabulary,
  enum code tables, and :class:`ColumnarTrace` itself (the data);
- :mod:`~repro.core.store.kernels` — the analysis kernels reading the
  columns (pattern mining, triggers, thread states, concurrency,
  location, session statistics), as free functions the fused plan
  executor composes;
- :mod:`~repro.core.store.facade` — :class:`FacadeTrace`, the lazy
  ``Trace`` view (object graph materialized only when touched), plus
  canonical serialization;
- :mod:`~repro.core.store.build` — :class:`ColumnarBuilder`, streaming
  the record stream of a :class:`~repro.lila.source.TraceSource` into a
  store with exactly the invariants (and error messages) of
  :class:`~repro.core.intervals.IntervalTreeBuilder`.

Everything importable from the old single-module ``repro.core.store`` is
re-exported here, so existing imports keep working unchanged.
"""

from repro.core.store.buffers import ColumnBuffer, InternTable
from repro.core.store.columns import (
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
    SAMPLE_COLUMN_SPECS,
    THREAD_COLUMN_SPECS,
    ColumnarTrace,
    _ThreadColumns,
)
from repro.core.store.build import ColumnarBuilder
from repro.core.store.facade import (
    FacadeTrace,
    _restore_facade,
    as_columnar,
)
from repro.core.store import accel, kernels

__all__ = [
    "REC_META",
    "REC_FILTERED",
    "REC_THREAD",
    "REC_OPEN",
    "REC_CLOSE",
    "REC_GC",
    "REC_TICK",
    "REC_ENTRY",
    "SAMPLE_COLUMN_SPECS",
    "THREAD_COLUMN_SPECS",
    "ColumnBuffer",
    "ColumnarTrace",
    "ColumnarBuilder",
    "FacadeTrace",
    "InternTable",
    "accel",
    "as_columnar",
    "kernels",
]
