"""Streaming construction of the columnar store.

:class:`ColumnarBuilder` folds the flat record stream of a
:class:`~repro.lila.source.TraceSource` into a
:class:`~repro.core.store.columns.ColumnarTrace`, enforcing the
proper-nesting invariant while streaming; :func:`columnarize` drives it
from an already-materialized object-model :class:`Trace`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import AnalysisError, NestingError, TraceFormatError
from repro.core.intervals import Interval, IntervalKind
from repro.core.samples import StackTrace
from repro.core.store.buffers import InternTable
from repro.core.store.columns import (
    ColumnarTrace,
    REC_CLOSE,
    REC_ENTRY,
    REC_FILTERED,
    REC_GC,
    REC_META,
    REC_OPEN,
    REC_THREAD,
    REC_TICK,
    _KIND_CODES,
    _REQUIRED_META,
    _RUNNABLE_CODE,
    _STATE_CODES,
    _ThreadColumns,
)
from repro.core.trace import Trace, TraceMetadata


class ColumnarBuilder:
    """Streams :class:`TraceSource` records into a :class:`ColumnarTrace`.

    The builder enforces the proper-nesting invariant while streaming,
    with exactly the error messages of
    :class:`~repro.core.intervals.IntervalTreeBuilder` (nesting damage)
    and the classic reader (structural damage), so swapping it in is
    invisible to everything that matches on messages.
    """

    def __init__(
        self,
        interns: Optional[InternTable] = None,
        stack_interns: Optional[InternTable] = None,
    ) -> None:
        self.meta: Dict[str, Any] = {}
        self.extra: Dict[str, Any] = {}
        self.short_count = 0
        self.record_count = 0
        # One table may be shared across the builders of a whole study
        # (ids are internal, so sharing never changes serialization).
        self.interns = interns if interns is not None else InternTable()
        self._strings: List[str] = self.interns.strings
        self._strings_map: Dict[str, int] = self.interns.ids
        self._threads: List[_ThreadColumns] = []
        self._thread_map: Dict[str, int] = {}
        # Per thread: a stack of [row, kind, symbol, start_ns, children_end]
        # frames for the currently open intervals.
        self._open: List[List[list]] = []
        self._last_root_end: List[Optional[int]] = []
        self._current: Optional[int] = None
        # Bound per REC_THREAD so the per-interval hot path does no
        # list indexing: the current thread's columns and open frames.
        self._cur_columns: Optional[_ThreadColumns] = None
        self._cur_frames: Optional[List[list]] = None
        self._ticks: List[Tuple[int, List[Tuple[int, int, int]]]] = []
        self._pending_tick: Optional[int] = None
        self._pending_entries: List[Tuple[int, int, int]] = []
        self.stack_interns = (
            stack_interns if stack_interns is not None else InternTable()
        )
        self._stacks: List[StackTrace] = self.stack_interns.strings
        self._stacks_map: Dict[StackTrace, int] = self.stack_interns.ids

    # -- interning -----------------------------------------------------

    def _intern(self, text: str) -> int:
        index = self._strings_map.get(text)
        if index is None:
            index = len(self._strings)
            self._strings_map[text] = index
            self._strings.append(text)
        return index

    def _intern_stack(self, stack: StackTrace) -> int:
        index = self._stacks_map.get(stack)
        if index is None:
            index = len(self._stacks)
            self._stacks_map[stack] = index
            self._stacks.append(stack)
        return index

    # -- record intake -------------------------------------------------

    def feed(self, record: tuple) -> None:
        """Apply one source record to the store under construction."""
        self.record_count += 1
        tag = record[0]
        if tag == REC_OPEN:
            _, start_ns, kind, symbol = record
            self._open_interval(kind, symbol, start_ns)
        elif tag == REC_CLOSE:
            self._close_interval(record[1])
        elif tag == REC_GC:
            _, start_ns, end_ns, symbol = record
            self._open_interval(IntervalKind.GC, symbol, start_ns)
            self._close_interval(end_ns)
        elif tag == REC_ENTRY:
            if self._pending_tick is None:
                raise TraceFormatError("t record outside a tick")
            _, thread_name, state, stack = record
            self._pending_entries.append(
                (
                    self._intern(thread_name),
                    _STATE_CODES[state],
                    self._intern_stack(stack),
                )
            )
        elif tag == REC_TICK:
            self.flush_samples()
            self._pending_tick = record[1]
        elif tag == REC_THREAD:
            self.flush_samples()
            name = record[1]
            index = self._thread_map.get(name)
            if index is None:
                index = len(self._threads)
                self._thread_map[name] = index
                self._threads.append(_ThreadColumns(name))
                self._open.append([])
                self._last_root_end.append(None)
                self._intern(name)
            self._current = index
            self._cur_columns = self._threads[index]
            self._cur_frames = self._open[index]
        elif tag == REC_META:
            _, key, value, is_extra = record
            if is_extra:
                self.extra[key] = value
            else:
                self.meta[key] = value
        elif tag == REC_FILTERED:
            self.short_count = record[1]
        else:
            raise TraceFormatError(f"unknown source record tag {tag!r}")

    def _open_interval(
        self, kind: IntervalKind, symbol: str, start_ns: int
    ) -> None:
        frames = self._cur_frames
        if frames is None:
            raise TraceFormatError("interval record before any T record")
        if frames:
            top = frames[-1]
            if start_ns < top[3]:
                raise NestingError(
                    f"interval {kind.value}:{symbol} starts at {start_ns}, "
                    f"before its enclosing interval ({top[3]})"
                )
            if top[4] is not None and start_ns < top[4]:
                raise NestingError(
                    f"interval {kind.value}:{symbol} starts at {start_ns}, "
                    f"inside the previous sibling"
                )
            parent_row = top[0]
        else:
            last_end = self._last_root_end[self._current]
            if last_end is not None and start_ns < last_end:
                raise NestingError(
                    f"root interval {kind.value}:{symbol} starts at "
                    f"{start_ns}, inside the previous root"
                )
            parent_row = -1
        columns = self._cur_columns
        row = len(columns.start)
        columns.start.append(start_ns)
        columns.end.append(0)
        columns.kind.append(_KIND_CODES[kind])
        columns.symbol.append(self._intern(symbol))
        columns.parent.append(parent_row)
        columns.size.append(0)
        frames.append([row, kind, symbol, start_ns, None])

    def _close_interval(self, end_ns: int) -> None:
        frames = self._cur_frames
        if frames is None:
            raise TraceFormatError("interval record before any T record")
        if not frames:
            raise NestingError("close without a matching open")
        row, kind, symbol, start_ns, children_end = frames.pop()
        if children_end is not None and end_ns < children_end:
            raise NestingError(
                f"interval {kind.value}:{symbol} closes at "
                f"{end_ns}, before its last child ends"
            )
        if end_ns < start_ns:
            raise NestingError(
                f"interval {kind.value}:{symbol} ends before it starts "
                f"({end_ns} < {start_ns})"
            )
        columns = self._cur_columns
        columns.end[row] = end_ns
        columns.size[row] = len(columns.start) - row
        if frames:
            frames[-1][4] = end_ns
        else:
            self._last_root_end[self._current] = end_ns
            columns.root_rows.append(row)

    # -- finishing -----------------------------------------------------

    def flush_samples(self) -> None:
        """Seal the pending sampling tick, if any."""
        if self._pending_tick is not None:
            self._ticks.append((self._pending_tick, self._pending_entries))
            self._pending_tick = None
            self._pending_entries = []

    def check_required_meta(self) -> None:
        """Raise for metadata the format requires but the stream lacked."""
        for key in _REQUIRED_META:
            if key not in self.meta:
                raise TraceFormatError(f"missing required metadata {key!r}")

    def build_metadata(self) -> TraceMetadata:
        """Construct the validated :class:`TraceMetadata`."""
        try:
            return TraceMetadata(
                application=self.meta["application"],
                session_id=self.meta["session_id"],
                start_ns=int(self.meta["start_ns"]),
                end_ns=int(self.meta["end_ns"]),
                gui_thread=self.meta["gui_thread"],
                sample_period_ns=int(
                    self.meta.get("sample_period_ns", 10_000_000)
                ),
                filter_ms=float(self.meta.get("filter_ms", 3.0)),
                extra=self.extra,
            )
        except ValueError as error:
            raise TraceFormatError(f"bad metadata value: {error}") from None

    def finish(self, metadata: TraceMetadata) -> ColumnarTrace:
        """Seal the store: closure, ordering, and bounds invariants.

        Raises:
            NestingError: intervals left open at end of stream.
            AnalysisError: episodes outside the session bounds.
        """
        for frames in self._open:
            if frames:
                open_names = ", ".join(
                    f"{frame[1].value}:{frame[2]}" for frame in frames
                )
                raise NestingError(
                    f"unclosed intervals at end of trace: {open_names}"
                )

        self._ticks.sort(key=lambda tick: tick[0])
        sample_ts = array("q")
        sample_offsets = array("i", [0])
        entry_thread = array("i")
        entry_state = array("b")
        entry_stack = array("i")
        sample_runnable = array("i")
        for ts, entries in self._ticks:
            sample_ts.append(ts)
            runnable = 0
            for thread_id, state_code, stack_id in entries:
                entry_thread.append(thread_id)
                entry_state.append(state_code)
                entry_stack.append(stack_id)
                if state_code == _RUNNABLE_CODE:
                    runnable += 1
            sample_runnable.append(runnable)
            sample_offsets.append(len(entry_thread))

        gui_index = self._thread_map.get(metadata.gui_thread)
        if gui_index is not None:
            from repro.core.family import family_of

            root_code = _KIND_CODES[family_of(metadata).root_kind]
            columns = self._threads[gui_index]
            episode_index = 0
            for row in columns.root_rows:
                if columns.kind[row] != root_code:
                    continue
                if columns.start[row] < metadata.start_ns or (
                    columns.end[row] > metadata.end_ns
                ):
                    raise AnalysisError(
                        f"episode #{episode_index} "
                        f"[{columns.start[row]}, {columns.end[row]}) lies "
                        f"outside the session bounds"
                    )
                episode_index += 1

        return ColumnarTrace(
            metadata=metadata,
            strings=self.interns,
            strings_map=None,
            threads=self._threads,
            thread_map=self._thread_map,
            sample_ts=sample_ts,
            sample_offsets=sample_offsets,
            entry_thread=entry_thread,
            entry_state=entry_state,
            entry_stack=entry_stack,
            sample_runnable=sample_runnable,
            stacks=self._stacks,
            short_episode_count=self.short_count,
        )


def columnarize(
    trace: Trace,
    interns: Optional[InternTable] = None,
    stack_interns: Optional[InternTable] = None,
) -> ColumnarTrace:
    """Columnarize an existing object-model trace.

    Threads keep the ``thread_roots`` iteration order and samples
    their sorted order, so ``to_trace`` round-trips and
    ``canonical_lines`` matches ``trace_to_lines(trace)`` exactly.
    ``interns``/``stack_interns`` let a study run share one string and
    one stack table across all of its traces (ids are internal, so
    sharing never changes what any store serializes to).
    """
    builder = ColumnarBuilder(interns=interns, stack_interns=stack_interns)
    meta = trace.metadata
    feed = builder.feed
    feed((REC_META, "application", meta.application, False))
    feed((REC_META, "session_id", meta.session_id, False))
    feed((REC_META, "start_ns", meta.start_ns, False))
    feed((REC_META, "end_ns", meta.end_ns, False))
    feed((REC_META, "gui_thread", meta.gui_thread, False))
    feed((REC_META, "sample_period_ns", meta.sample_period_ns, False))
    feed((REC_META, "filter_ms", meta.filter_ms, False))
    for key, value in meta.extra.items():
        feed((REC_META, key, value, True))
    feed((REC_FILTERED, trace.short_episode_count))

    def emit(interval: Interval) -> None:
        feed((REC_OPEN, interval.start_ns, interval.kind, interval.symbol))
        for child in interval.children:
            emit(child)
        feed((REC_CLOSE, interval.end_ns))

    for name, roots in trace.thread_roots.items():
        feed((REC_THREAD, name))
        for root in roots:
            emit(root)

    for sample in trace.samples:
        feed((REC_TICK, sample.timestamp_ns))
        for entry in sample.threads:
            feed((REC_ENTRY, entry.thread_name, entry.state, entry.stack))

    builder.flush_samples()
    builder.check_required_meta()
    return builder.finish(builder.build_metadata())
