"""Incremental appends into the columnar store.

The one-shot :class:`~repro.core.store.build.ColumnarBuilder` consumes
a complete record stream and only then seals a
:class:`~repro.core.store.columns.ColumnarTrace`. The ingest daemon
feeds the same records *as they arrive* over the wire and needs to know,
mid-stream, which interval trees are already complete — every root
interval that has closed is final (the nesting invariant guarantees
nothing can reopen it), so episode splitting and pattern tallies can
advance per completed episode instead of per completed trace.

:class:`IncrementalColumnarBuilder` is the one-shot builder plus that
completion signal: :meth:`take_completed_roots` drains the roots closed
since the last call, and :meth:`materialize_root` builds the classic
:class:`~repro.core.intervals.Interval` tree for one completed root
straight from the columns (the arrays are append-only, so rows of a
closed subtree never change afterwards). Sealing via ``finish`` is
unchanged, which is what makes incremental-mode final summaries
byte-identical to a one-shot build over the same records.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.intervals import Interval
from repro.core.store.build import ColumnarBuilder
from repro.core.store.columns import _KINDS


class IncrementalColumnarBuilder(ColumnarBuilder):
    """A :class:`ColumnarBuilder` that reports root completions."""

    def __init__(self) -> None:
        super().__init__()
        #: (thread index, row) of roots closed since the last drain.
        self._completed_roots: List[Tuple[int, int]] = []

    def _close_interval(self, end_ns: int) -> None:
        frames = self._cur_frames
        closes_root = frames is not None and len(frames) == 1
        super()._close_interval(end_ns)
        if closes_root:
            self._completed_roots.append(
                (self._current, self._cur_columns.root_rows[-1])
            )

    def take_completed_roots(self) -> List[Tuple[int, int]]:
        """Drain ``(thread index, row)`` of roots completed so far."""
        completed = self._completed_roots
        self._completed_roots = []
        return completed

    def thread_name(self, thread_index: int) -> str:
        """The name of the thread at ``thread_index``."""
        return self._threads[thread_index].name

    def materialize_root(self, thread_index: int, row: int) -> Interval:
        """The :class:`Interval` tree of one *completed* root.

        Only valid for rows returned by :meth:`take_completed_roots`:
        a still-open subtree has placeholder end timestamps.
        """
        columns = self._threads[thread_index]
        strings = self._strings
        kind = columns.kind
        start = columns.start
        end = columns.end
        symbol = columns.symbol
        parent = columns.parent
        size = columns.size[row]
        nodes: dict = {}
        for index in range(row, row + size):
            node = Interval(
                _KINDS[kind[index]],
                strings[symbol[index]],
                start[index],
                end[index],
            )
            nodes[index] = node
            if index != row:
                parent_node = nodes[parent[index]]
                parent_node.children.append(node)
                node.parent = parent_node
        return nodes[row]
