"""The lazy Trace facade and column↔object materialization.

:class:`FacadeTrace` keeps the classic ``Trace``/``Episode``/``Interval``
API alive over a :class:`~repro.core.store.columns.ColumnarTrace`
without building the object graph up front; :func:`to_trace` and
:func:`canonical_lines` are the materialization and serialization halves
that back it (both bit-identical to the pre-columnar reader/writer).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.intervals import Interval
from repro.core.samples import Sample, ThreadSample
from repro.core.store.columns import (
    ColumnarTrace,
    _GC_CODE,
    _KINDS,
    _KIND_VALUES,
    _STATES,
)
from repro.core.trace import Trace

# ----------------------------------------------------------------------
# Canonical serialization (digest) without materializing objects
# ----------------------------------------------------------------------


def canonical_lines(store: ColumnarTrace) -> List[str]:
    """The canonical text serialization, byte-identical to
    :func:`repro.lila.writer.trace_to_lines` over the materialized
    trace — computed straight from the columns."""
    from repro.lila.format import check_symbol, encode_stack, header_line

    meta = store.metadata
    lines = [header_line()]
    lines.append(
        f"M application {check_symbol(meta.application, 'application')}"
    )
    lines.append(
        f"M session_id {check_symbol(meta.session_id, 'session id')}"
    )
    lines.append(f"M start_ns {meta.start_ns}")
    lines.append(f"M end_ns {meta.end_ns}")
    lines.append(
        f"M gui_thread {check_symbol(meta.gui_thread, 'thread name')}"
    )
    lines.append(f"M sample_period_ns {meta.sample_period_ns}")
    lines.append(f"M filter_ms {meta.filter_ms!r}")
    for key in sorted(meta.extra):
        lines.append(
            f"M x.{check_symbol(key, 'metadata key')} "
            f"{check_symbol(meta.extra[key], 'metadata value')}"
        )
    lines.append(f"F {store.short_episode_count}")

    names = sorted(store._thread_map)
    gui = meta.gui_thread
    if gui in names:
        names.remove(gui)
        names.insert(0, gui)
    checked: Dict[int, str] = {}
    strings = store.strings

    def symbol_text(symbol_id: int) -> str:
        text = checked.get(symbol_id)
        if text is None:
            text = check_symbol(strings[symbol_id])
            checked[symbol_id] = text
        return text

    for name in names:
        columns = store.threads[store._thread_map[name]]
        lines.append(f"T {check_symbol(name, 'thread name')}")
        kind = columns.kind
        start = columns.start
        end = columns.end
        symbol = columns.symbol
        size = columns.size
        closes: List[Tuple[int, int]] = []
        for row in range(len(columns)):
            while closes and row >= closes[-1][0]:
                lines.append(f"C {closes.pop()[1]}")
            if kind[row] == _GC_CODE and size[row] == 1:
                lines.append(
                    f"G {start[row]} {end[row]} {symbol_text(symbol[row])}"
                )
            else:
                lines.append(
                    f"O {start[row]} {_KIND_VALUES[kind[row]]} "
                    f"{symbol_text(symbol[row])}"
                )
                closes.append((row + size[row], end[row]))
        while closes:
            lines.append(f"C {closes.pop()[1]}")

    encoded_stacks: Dict[int, str] = {}
    entry_thread = store.entry_thread
    entry_state = store.entry_state
    entry_stack = store.entry_stack
    for tick in range(len(store.sample_ts)):
        lines.append(f"P {store.sample_ts[tick]}")
        for entry in range(store.sample_offsets[tick],
                           store.sample_offsets[tick + 1]):
            stack_id = entry_stack[entry]
            encoded = encoded_stacks.get(stack_id)
            if encoded is None:
                encoded = encode_stack(store.stacks[stack_id])
                encoded_stacks[stack_id] = encoded
            lines.append(
                f"t {check_symbol(strings[entry_thread[entry]], 'thread name')} "
                f"{_STATES[entry_state[entry]].value} {encoded}"
            )
    return lines


# ----------------------------------------------------------------------
# Materialization (the facade's backing)
# ----------------------------------------------------------------------


def to_trace(store: ColumnarTrace) -> Trace:
    """Materialize the classic object model from the columns.

    The result is exactly what the pre-columnar reader produced:
    same tree shapes, same thread order, same samples.
    """
    thread_roots: Dict[str, List[Interval]] = {}
    for columns in store.threads:
        nodes: List[Interval] = []
        roots: List[Interval] = []
        kind = columns.kind
        start = columns.start
        end = columns.end
        symbol = columns.symbol
        parent = columns.parent
        strings = store.strings
        for row in range(len(columns)):
            node = Interval(
                _KINDS[kind[row]],
                strings[symbol[row]],
                start[row],
                end[row],
            )
            nodes.append(node)
            parent_row = parent[row]
            if parent_row < 0:
                roots.append(node)
            else:
                parent_node = nodes[parent_row]
                parent_node.children.append(node)
                node.parent = parent_node
        thread_roots[columns.name] = roots

    samples: List[Sample] = []
    strings = store.strings
    stacks = store.stacks
    for tick in range(len(store.sample_ts)):
        entries = [
            ThreadSample(
                strings[store.entry_thread[entry]],
                _STATES[store.entry_state[entry]],
                stacks[store.entry_stack[entry]],
            )
            for entry in range(store.sample_offsets[tick],
                               store.sample_offsets[tick + 1])
        ]
        samples.append(Sample(store.sample_ts[tick], entries))

    return Trace(
        store.metadata,
        thread_roots,
        samples=samples,
        short_episode_count=store.short_episode_count,
    )


class FacadeTrace(Trace):
    """A :class:`Trace` whose object graph is built only on demand.

    Construction stores just the columnar store and the metadata; the
    first access to ``thread_roots``, ``samples``, ``episodes``, or the
    per-thread episode table materializes the classic object model via
    :meth:`ColumnarTrace.to_trace` and caches it on the instance.
    Analyses that understand the columnar store (everything in
    :mod:`repro.core.analyses`) never trigger materialization.
    """

    _LAZY = frozenset(
        ("thread_roots", "samples", "episodes", "_episodes_by_thread")
    )

    def __init__(self, store: ColumnarTrace) -> None:
        # Deliberately not calling Trace.__init__: the whole point is
        # to defer building interval/sample objects.
        self.columnar = store
        self.metadata = store.metadata
        self.short_episode_count = store.short_episode_count

    def __getattr__(self, name: str) -> Any:
        if name in FacadeTrace._LAZY:
            materialized = self.columnar.to_trace()
            self.__dict__["thread_roots"] = materialized.thread_roots
            self.__dict__["samples"] = materialized.samples
            self.__dict__["episodes"] = materialized.episodes
            self.__dict__["_episodes_by_thread"] = (
                materialized._episodes_by_thread
            )
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def is_materialized(self) -> bool:
        """True once the object graph has been built."""
        return "thread_roots" in self.__dict__

    def __reduce__(self) -> tuple:
        return (
            _restore_facade,
            (self.columnar, getattr(self, "_content_digest", None)),
        )

    def __repr__(self) -> str:
        state = "materialized" if self.is_materialized else "columnar"
        return (
            f"FacadeTrace({self.metadata.application!r}, "
            f"{self.columnar.interval_count} intervals, {state})"
        )


def _restore_facade(
    store: ColumnarTrace, digest: Optional[str]
) -> FacadeTrace:
    trace = FacadeTrace(store)
    if digest is not None:
        trace._content_digest = digest
    return trace


def as_columnar(
    trace: Trace,
    interns: Optional[Any] = None,
    stack_interns: Optional[Any] = None,
) -> Trace:
    """``trace`` as a columnar-backed facade (no-op when it already is).

    Used by the study runner so simulated traces ship to workers as
    compact columns, with the memoized content digest carried over.
    ``interns``/``stack_interns`` (:class:`InternTable`) let one study
    run share its string and stack tables across every trace it
    columnarizes — ids are store-internal, so sharing never changes
    what any store serializes (or pickles) to.
    """
    if getattr(trace, "columnar", None) is not None:
        return trace
    store = ColumnarTrace.from_trace(
        trace, interns=interns, stack_interns=stack_interns
    )
    facade = FacadeTrace(store)
    digest = getattr(trace, "_content_digest", None)
    if digest is not None:
        facade._content_digest = digest
    return facade
