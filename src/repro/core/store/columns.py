"""Column containers: the record vocabulary and the parallel arrays.

This module holds the *data* half of the columnar store — the
``REC_*`` record vocabulary every :class:`~repro.lila.source.TraceSource`
yields, the stable integer codes for the enum vocabularies, the
per-thread :class:`_ThreadColumns` arrays, and :class:`ColumnarTrace`
itself (construction, pickling, size accounting, and episode
enumeration). The analysis kernels that *read* the columns live in
:mod:`repro.core.store.kernels`; the lazy ``Trace`` facade in
:mod:`repro.core.store.facade`; the streaming builder in
:mod:`repro.core.store.build`.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.intervals import IntervalKind, NS_PER_MS
from repro.core.samples import StackTrace, ThreadState
from repro.core.store.buffers import ColumnBuffer, InternTable
from repro.core.trace import Trace, TraceMetadata

# ----------------------------------------------------------------------
# The record vocabulary every TraceSource yields.
# ----------------------------------------------------------------------

REC_META = 0
"""``(REC_META, key, value, is_extra)`` — one metadata entry."""
REC_FILTERED = 1
"""``(REC_FILTERED, count)`` — episodes filtered at trace time."""
REC_THREAD = 2
"""``(REC_THREAD, name)`` — start (or resumption) of a thread section."""
REC_OPEN = 3
"""``(REC_OPEN, start_ns, kind, symbol)`` — open an interval."""
REC_CLOSE = 4
"""``(REC_CLOSE, end_ns)`` — close the innermost open interval."""
REC_GC = 5
"""``(REC_GC, start_ns, end_ns, symbol)`` — a complete GC interval."""
REC_TICK = 6
"""``(REC_TICK, ns)`` — a sampling tick."""
REC_ENTRY = 7
"""``(REC_ENTRY, thread_name, state, stack)`` — one thread's tick entry."""

_REQUIRED_META = (
    "application",
    "session_id",
    "start_ns",
    "end_ns",
    "gui_thread",
)

#: Stable integer codes for the enum vocabularies (enumeration order,
#: identical to the binary encoding's codes).
_KIND_CODES: Dict[IntervalKind, int] = {
    kind: index for index, kind in enumerate(IntervalKind)
}
_KINDS: List[IntervalKind] = list(IntervalKind)
_KIND_VALUES: List[str] = [kind.value for kind in IntervalKind]
_STATE_CODES: Dict[ThreadState, int] = {
    state: index for index, state in enumerate(ThreadState)
}
_STATES: List[ThreadState] = list(ThreadState)

_DISPATCH_CODE = _KIND_CODES[IntervalKind.DISPATCH]
_GC_CODE = _KIND_CODES[IntervalKind.GC]
_NATIVE_CODE = _KIND_CODES[IntervalKind.NATIVE]
_LISTENER_CODE = _KIND_CODES[IntervalKind.LISTENER]
_PAINT_CODE = _KIND_CODES[IntervalKind.PAINT]
_ASYNC_CODE = _KIND_CODES[IntervalKind.ASYNC]
_REQUEST_CODE = _KIND_CODES[IntervalKind.REQUEST]
_IOWAIT_CODE = _KIND_CODES[IntervalKind.IOWAIT]
_STAGE_CODE = _KIND_CODES[IntervalKind.STAGE]
_TRIGGER_CODES = (_LISTENER_CODE, _PAINT_CODE, _ASYNC_CODE)
_RUNNABLE_CODE = _STATE_CODES[ThreadState.RUNNABLE]


#: ``(attribute, typecode)`` of every per-thread column, in the `.lilac`
#: segment serialization order.
THREAD_COLUMN_SPECS: Tuple[Tuple[str, str], ...] = (
    ("start", "q"),
    ("end", "q"),
    ("kind", "b"),
    ("symbol", "i"),
    ("parent", "i"),
    ("size", "i"),
    ("root_rows", "i"),
)

#: ``(attribute, typecode)`` of every trace-level sample column, in the
#: `.lilac` segment serialization order.
SAMPLE_COLUMN_SPECS: Tuple[Tuple[str, str], ...] = (
    ("sample_ts", "q"),
    ("sample_offsets", "i"),
    ("entry_thread", "i"),
    ("entry_state", "b"),
    ("entry_stack", "i"),
    ("sample_runnable", "i"),
)


class _ThreadColumns:
    """One thread's interval rows as parallel arrays (rows in pre-order).

    The column attributes hold the *raw* typed sequence of a
    :class:`~repro.core.store.buffers.ColumnBuffer` — an appendable
    ``array`` when built by the streaming builder, a zero-copy
    ``memoryview`` cast when opened from an mmap'd `.lilac` file. The
    two are duck-type compatible for every kernel access pattern
    (indexing, ``len``, iteration, ``bisect``), so the hot paths never
    pay a wrapper call.
    """

    __slots__ = ("name", "start", "end", "kind", "symbol", "parent", "size",
                 "root_rows")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = array("q")
        self.end = array("q")
        self.kind = array("b")
        self.symbol = array("i")
        self.parent = array("i")
        self.size = array("i")
        self.root_rows = array("i")

    @classmethod
    def from_buffers(
        cls, name: str, buffers: Dict[str, ColumnBuffer]
    ) -> "_ThreadColumns":
        """Wire a thread's columns straight onto existing buffers."""
        columns = cls.__new__(cls)
        columns.name = name
        for attr, _typecode in THREAD_COLUMN_SPECS:
            setattr(columns, attr, buffers[attr].data)
        return columns

    def buffers(self) -> Dict[str, ColumnBuffer]:
        """This thread's columns wrapped as typed buffers."""
        return {
            attr: ColumnBuffer(typecode, getattr(self, attr))
            for attr, typecode in THREAD_COLUMN_SPECS
        }

    def __len__(self) -> int:
        return len(self.start)

    @property
    def nbytes(self) -> int:
        return sum(
            len(column) * column.itemsize
            for column in (self.start, self.end, self.kind, self.symbol,
                           self.parent, self.size, self.root_rows)
        )


class ColumnarTrace:
    """One session trace stored as columns (see the package docstring).

    Instances are immutable once built (like :class:`Trace`); every
    accessor is safe to call from any number of analyses, and caches on
    the instance never need invalidation. The analysis kernels
    (pattern mining, triggers, thread states, concurrency, location,
    session statistics) are implemented as functions over the columns in
    :mod:`repro.core.store.kernels`; the methods here are thin
    delegations kept for API stability.
    """

    def __init__(
        self,
        metadata: TraceMetadata,
        strings: Union[List[str], InternTable],
        strings_map: Optional[Dict[str, int]],
        threads: List[_ThreadColumns],
        thread_map: Dict[str, int],
        sample_ts: "array[int]",
        sample_offsets: "array[int]",
        entry_thread: "array[int]",
        entry_state: "array[int]",
        entry_stack: "array[int]",
        sample_runnable: "array[int]",
        stacks: List[StackTrace],
        short_episode_count: int = 0,
    ) -> None:
        self.metadata = metadata
        if isinstance(strings, InternTable):
            interns = strings
        else:
            interns = InternTable.adopt(
                strings,
                strings_map
                if strings_map is not None
                else {text: index for index, text in enumerate(strings)},
            )
        #: The string intern table; ``strings``/``_strings_map`` alias
        #: its list and id map so kernels index plain containers.
        self.interns = interns
        self.strings = interns.strings
        self._strings_map = interns.ids
        self.threads = threads
        self._thread_map = thread_map
        self.sample_ts = sample_ts
        self.sample_offsets = sample_offsets
        self.entry_thread = entry_thread
        self.entry_state = entry_state
        self.entry_stack = entry_stack
        self.sample_runnable = sample_runnable
        self.stacks = stacks
        self.short_episode_count = short_episode_count
        #: The on-disk `.lilac` file backing this store's columns, or
        #: ``None`` for in-memory (array-backed) stores. Set by
        #: :func:`repro.lila.colfile.open_column_store`.
        self.backing: Optional[Any] = None
        self._episode_rows_cache: Dict[bool, List[Tuple[int, int, int, int, int]]] = {}
        self._key_cache: Dict[Tuple[int, int, bool], str] = {}

    # -- pickling ------------------------------------------------------
    #
    # File-backed stores pickle as just their `.lilac` path: the worker
    # re-opens the file via mmap (zero copied column bytes, shared page
    # cache) instead of receiving the columns by value. In-memory
    # stores ship their columns as before, minus derived caches.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_episode_rows_cache"] = {}
        state["_key_cache"] = {}
        state["backing"] = None
        # The intern table is pure aliasing over ``strings`` /
        # ``_strings_map``; rebuilding it on restore keeps the pickle
        # byte-stable (and smaller) across pickling round-trips.
        state.pop("interns", None)
        return state

    def __reduce__(self) -> tuple:
        if self.backing is not None:
            return (_reopen_store, (str(self.backing.path),))
        return (_restore_store, (self.__getstate__(),))

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    @property
    def interval_count(self) -> int:
        return sum(len(columns) for columns in self.threads)

    @property
    def sample_count(self) -> int:
        return len(self.sample_ts)

    @property
    def thread_order(self) -> List[str]:
        """Thread names in first-appearance (T record) order."""
        return [columns.name for columns in self.threads]

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the columns (not the facade)."""
        total = sum(columns.nbytes for columns in self.threads)
        for arr in (self.sample_ts, self.sample_offsets, self.entry_thread,
                    self.entry_state, self.entry_stack, self.sample_runnable):
            total += len(arr) * arr.itemsize
        total += sum(len(text) for text in self.strings)
        return total

    # ------------------------------------------------------------------
    # Episode enumeration (columnar twin of Trace episode splitting)
    # ------------------------------------------------------------------

    def episode_rows(
        self, all_dispatch_threads: bool = False
    ) -> List[Tuple[int, int, int, int, int]]:
        """Episode descriptors ``(thread_idx, row, index, start, end)``.

        With ``all_dispatch_threads`` False, only the GUI thread's
        episodes; otherwise every dispatch thread's, merged in time
        order with the same (stable) sort the object model uses.
        """
        cached = self._episode_rows_cache.get(all_dispatch_threads)
        if cached is not None:
            return cached
        gui = self.metadata.gui_thread
        root_code = _KIND_CODES[_family.family_of(self.metadata).root_kind]
        merged: List[Tuple[int, int, int, int, int]] = []
        for thread_idx, columns in enumerate(self.threads):
            if not all_dispatch_threads and columns.name != gui:
                continue
            index = 0
            kind = columns.kind
            start = columns.start
            end = columns.end
            for row in columns.root_rows:
                if kind[row] != root_code:
                    continue
                merged.append((thread_idx, row, index, start[row], end[row]))
                index += 1
        if all_dispatch_threads:
            merged.sort(key=lambda item: item[3])
        self._episode_rows_cache[all_dispatch_threads] = merged
        return merged

    def split_episode_rows(
        self,
        config: Any,
        rows: Optional[Sequence[Tuple[int, int, int, int, int]]] = None,
    ) -> Tuple[list, list]:
        """(all episode rows, perceptible episode rows) under ``config``.

        ``rows`` overrides the population (the fused executor passes a
        contiguous shard of the full row list); the perceptible filter
        then applies to exactly that subset, so shard splits concatenate
        to the unsharded split.
        """
        if rows is None:
            rows = self.episode_rows(
                all_dispatch_threads=config.all_dispatch_threads
            )
        threshold = config.perceptible_threshold_ms
        np = _accel.get_numpy()
        if np is not None and len(rows) > 64:
            durations = np.fromiter(
                (item[4] - item[3] for item in rows),
                dtype=np.int64,
                count=len(rows),
            )
            mask = (durations / NS_PER_MS) >= threshold
            perceptible = [
                rows[index] for index in np.nonzero(mask)[0].tolist()
            ]
            return list(rows), perceptible
        perceptible = [
            item for item in rows
            if (item[4] - item[3]) / NS_PER_MS >= threshold
        ]
        return list(rows), perceptible

    def _tick_range(self, start_ns: int, end_ns: int) -> Tuple[int, int]:
        """Sample tick indices in ``[start_ns, end_ns)``."""
        lo = bisect_left(self.sample_ts, start_ns)
        hi = bisect_left(self.sample_ts, end_ns, lo)
        return lo, hi

    def _gui_entry(self, tick: int, gui_id: int) -> int:
        """Entry index of the GUI thread in one tick, or -1."""
        entry_thread = self.entry_thread
        for entry in range(self.sample_offsets[tick],
                           self.sample_offsets[tick + 1]):
            if entry_thread[entry] == gui_id:
                return entry
        return -1

    # ------------------------------------------------------------------
    # Analysis kernels (delegations; implementations in .kernels)
    # ------------------------------------------------------------------

    def pattern_key_of(
        self, thread_idx: int, row: int, include_gc: bool = False
    ) -> str:
        return _kernels.pattern_key_of(self, thread_idx, row, include_gc)

    def pattern_counts(
        self,
        threshold_ms: float,
        include_gc: bool = False,
        all_dispatch_threads: bool = False,
    ) -> Tuple[Dict[str, Tuple[int, int]], int]:
        return _kernels.pattern_counts(
            self, threshold_ms, include_gc, all_dispatch_threads
        )

    def trigger_summary(
        self, episode_rows: List[Tuple[int, int, int, int, int]]
    ) -> Any:
        return _kernels.trigger_summary(self, episode_rows)

    def cause_tally(
        self, episode_rows: List[Tuple[int, int, int, int, int]]
    ) -> Any:
        return _kernels.cause_tally(self, episode_rows)

    def threadstate_summary(
        self, episode_rows: List[Tuple[int, int, int, int, int]]
    ) -> Any:
        return _kernels.threadstate_summary(self, episode_rows)

    def concurrency_summary(
        self, episode_rows: List[Tuple[int, int, int, int, int]]
    ) -> Any:
        return _kernels.concurrency_summary(self, episode_rows)

    def location_summary(
        self,
        episode_rows: List[Tuple[int, int, int, int, int]],
        library_prefixes: Tuple[str, ...],
    ) -> Any:
        return _kernels.location_summary(self, episode_rows, library_prefixes)

    def session_stats_row(self, threshold_ms: float) -> Any:
        return _kernels.session_stats_row(self, threshold_ms)

    # ------------------------------------------------------------------
    # Serialization and materialization (implementations in .facade)
    # ------------------------------------------------------------------

    def canonical_lines(self) -> List[str]:
        from repro.core.store import facade

        return facade.canonical_lines(self)

    def to_trace(self) -> Trace:
        from repro.core.store import facade

        return facade.to_trace(self)

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        interns: Optional[InternTable] = None,
        stack_interns: Optional[InternTable] = None,
    ) -> "ColumnarTrace":
        from repro.core.store import build

        return build.columnarize(
            trace, interns=interns, stack_interns=stack_interns
        )

    def sample_buffers(self) -> Dict[str, ColumnBuffer]:
        """The trace-level sample columns wrapped as typed buffers."""
        return {
            attr: ColumnBuffer(typecode, getattr(self, attr))
            for attr, typecode in SAMPLE_COLUMN_SPECS
        }

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace({self.metadata.application!r}, "
            f"{self.interval_count} intervals, {self.sample_count} samples, "
            f"{len(self.strings)} strings)"
        )


def _reopen_store(path: str) -> ColumnarTrace:
    """Unpickle hook: re-open a file-backed store from its `.lilac` path.

    The receiving process maps the column file instead of copying the
    columns; damage (or a vanished file) surfaces as the same typed
    :class:`~repro.core.errors.TraceFormatError` the reader raises, so
    the engine's quarantine path handles it like any other bad trace.
    """
    from repro.lila.colfile import open_column_store

    return open_column_store(path)


def _restore_store(state: dict) -> ColumnarTrace:
    """Unpickle hook: rebuild an in-memory store from its state dict."""
    store = ColumnarTrace.__new__(ColumnarTrace)
    # Intern attribute names like pickle's BUILD opcode does, so a
    # round-tripped store repickles byte-identically to a fresh one.
    store.__dict__.update(
        (sys.intern(key), value) for key, value in state.items()
    )
    store.interns = InternTable.adopt(store.strings, store._strings_map)
    return store


# Bound after the class definitions so the kernels module (which imports
# the code tables above) can resolve this module from sys.modules; the
# delegation methods then pay one attribute lookup, not an import, per
# call.
from repro.core import family as _family  # noqa: E402
from repro.core.store import accel as _accel  # noqa: E402
from repro.core.store import kernels as _kernels  # noqa: E402
