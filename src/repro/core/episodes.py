"""Episodes: the unit of perceptible performance.

An *episode* (Section II) is the time interval from the point a user
request is dispatched until the point the request is completed. Episodes
longer than a threshold (100 ms in the paper) are *perceptible* and hurt
perceived performance. Each episode owns the dispatch interval tree of
the GUI thread plus the call-stack samples taken while it ran.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.errors import AnalysisError
from repro.core.intervals import Interval, IntervalKind
from repro.core.samples import Sample, ThreadSample, samples_in_range

#: The perceptibility threshold the paper uses throughout (Shneiderman's
#: 100 ms rule).
DEFAULT_PERCEPTIBLE_MS = 100.0

#: Interval kinds that may root an episode — one per workload family
#: (``dispatch``/gui, ``request``/io_service, ``stage``/async_pipeline).
#: :func:`repro.core.family.register_family` adds to this set.
EPISODE_ROOT_KINDS = {
    IntervalKind.DISPATCH,
    IntervalKind.REQUEST,
    IntervalKind.STAGE,
}


class Episode:
    """One handled user request, with its interval tree and samples.

    Attributes:
        root: the DISPATCH interval spanning the episode; its children
            are the listener/paint/native/async/GC intervals observed
            while the request was handled.
        index: ordinal of this episode within its session trace (0-based,
            in time order). Used e.g. to spot "first episode of a
            pattern was slow" initialization effects.
        gui_thread: name of the event dispatch thread the episode ran on.
        samples: the sampling ticks (of all threads) taken during the
            episode, in time order.
    """

    __slots__ = ("root", "index", "gui_thread", "samples")

    def __init__(
        self,
        root: Interval,
        index: int,
        gui_thread: str,
        samples: Sequence[Sample] = (),
    ) -> None:
        if root.kind not in EPISODE_ROOT_KINDS:
            raise AnalysisError(
                f"episode root must be a dispatch interval, got {root.kind.value}"
            )
        self.root = root
        self.index = index
        self.gui_thread = gui_thread
        self.samples: List[Sample] = list(samples)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    @property
    def start_ns(self) -> int:
        return self.root.start_ns

    @property
    def end_ns(self) -> int:
        return self.root.end_ns

    @property
    def duration_ns(self) -> int:
        return self.root.duration_ns

    @property
    def duration_ms(self) -> float:
        """Episode latency in milliseconds — the "lag" of the paper."""
        return self.root.duration_ms

    def is_perceptible(self, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS) -> bool:
        """True if this episode's lag exceeds the perceptibility threshold."""
        return self.duration_ms >= threshold_ms

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def has_structure(self) -> bool:
        """True if the dispatch interval has any children.

        Episodes without internal structure are excluded from pattern
        coverage statistics (Table III, column "#Eps").
        """
        return bool(self.root.children)

    def descendant_count(self, include_gc: bool = True) -> int:
        """Number of descendants of the dispatch interval ("Descs")."""
        return self.root.descendant_count(include_gc=include_gc)

    def tree_depth(self, include_gc: bool = True) -> int:
        """Depth of the interval tree ("Depth"); a bare dispatch is 1."""
        return self.root.depth(include_gc=include_gc)

    def intervals_of_kind(self, kind: IntervalKind) -> List[Interval]:
        """All intervals of ``kind`` in this episode, pre-order."""
        return self.root.find_all(lambda node: node.kind is kind)

    # ------------------------------------------------------------------
    # Samples
    # ------------------------------------------------------------------

    def gui_samples(self) -> List[ThreadSample]:
        """The GUI thread's entries of this episode's sampling ticks."""
        result = []
        for sample in self.samples:
            entry = sample.thread(self.gui_thread)
            if entry is not None:
                result.append(entry)
        return result

    def attach_samples(self, session_samples: Sequence[Sample]) -> None:
        """Populate :attr:`samples` from a session-wide sample list.

        Args:
            session_samples: all sampling ticks of the session, sorted by
                timestamp.
        """
        self.samples = samples_in_range(
            session_samples, self.start_ns, self.end_ns
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Episode(#{self.index}, {self.duration_ms:.1f} ms, "
            f"{self.descendant_count()} descendants, "
            f"{len(self.samples)} samples)"
        )


def episodes_from_roots(
    roots: Sequence[Interval],
    gui_thread: str,
    session_samples: Sequence[Sample] = (),
    root_kind: IntervalKind = IntervalKind.DISPATCH,
) -> List[Episode]:
    """Build episodes from a thread's root episode-boundary intervals.

    Roots of other kinds (e.g. a GC that fell between episodes) are
    ignored.

    Args:
        roots: root intervals of the GUI thread's tree, in time order.
        gui_thread: name of the GUI thread.
        session_samples: all sampling ticks, sorted by time; each episode
            receives the slice that falls within it.
        root_kind: the workload family's episode-boundary kind
            (``dispatch`` for the default gui family).
    """
    episodes = []
    for root in roots:
        if root.kind is not root_kind:
            continue
        episode = Episode(root, index=len(episodes), gui_thread=gui_thread)
        if session_samples:
            episode.attach_samples(session_samples)
        episodes.append(episode)
    return episodes


def perceptible(
    episodes: Sequence[Episode], threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
) -> List[Episode]:
    """The subsequence of episodes whose lag meets ``threshold_ms``."""
    return [ep for ep in episodes if ep.is_perceptible(threshold_ms)]


def total_in_episode_ns(episodes: Sequence[Episode]) -> int:
    """Total time spent handling user requests ("In-Eps" numerator)."""
    return sum(ep.duration_ns for ep in episodes)


def longest(episodes: Sequence[Episode]) -> Optional[Episode]:
    """The episode with the largest lag, or None if empty."""
    if not episodes:
        return None
    return max(episodes, key=lambda ep: ep.duration_ns)


def lag_ms(episodes: Sequence[Episode]) -> List[float]:
    """The lags of ``episodes`` in milliseconds, preserving order."""
    return [ep.duration_ms for ep in episodes]


def trace_episodes(trace, config) -> List[Episode]:
    """The episode population one trace contributes under ``config``.

    ``config`` is any object with an ``all_dispatch_threads`` attribute
    (in practice an :class:`~repro.study.config.AnalysisConfig`); when
    set, episodes of every dispatch-capable thread are merged in time
    order instead of only the GUI thread's.
    """
    if config.all_dispatch_threads:
        return trace.all_episodes()
    return trace.episodes


class IncrementalEpisodeSplitter:
    """Episode splitting for a trace that is still arriving.

    The batch path (:func:`split_episodes`) sees a finished trace and
    splits it once; a live ingest session instead completes one root
    interval at a time. Push each completed root of the event dispatch
    thread here, in time order, and the splitter maintains exactly the
    populations the batch split would produce over the records so far:
    the full episode list (dispatch roots only, indexed in completion
    order — the same ordinals :func:`episodes_from_roots` assigns) and
    the perceptible subsequence under the configured threshold.

    Samples are *not* attached (ticks for an episode may still be in
    flight when its root closes); rolling consumers that need per-episode
    structure — pattern keys, lag statistics — don't use them, and the
    sealed-store path recomputes the final summaries with samples in
    place.
    """

    def __init__(
        self,
        gui_thread: str,
        threshold_ms: float = DEFAULT_PERCEPTIBLE_MS,
        root_kind: IntervalKind = IntervalKind.DISPATCH,
    ) -> None:
        self.gui_thread = gui_thread
        self.threshold_ms = threshold_ms
        self.root_kind = root_kind
        self.episodes: List[Episode] = []
        self.perceptible: List[Episode] = []

    def push_root(self, root: Interval) -> Optional[Episode]:
        """Register one completed root; the new episode, if it is one.

        Roots of other kinds (a GC between episodes) return ``None``,
        mirroring the batch splitter's filter.
        """
        if root.kind is not self.root_kind:
            return None
        episode = Episode(
            root, index=len(self.episodes), gui_thread=self.gui_thread
        )
        self.episodes.append(episode)
        if episode.is_perceptible(self.threshold_ms):
            self.perceptible.append(episode)
        return episode

    def split(self) -> Tuple[List[Episode], List[Episode]]:
        """(all episodes, perceptible episodes) over the roots so far."""
        return list(self.episodes), list(self.perceptible)


def split_episodes(trace, config) -> Tuple[List[Episode], List[Episode]]:
    """(all episodes, perceptible episodes) of one trace.

    The split every per-episode analysis shares: the full population and
    the subsequence meeting ``config.perceptible_threshold_ms``.
    """
    episodes = trace_episodes(trace, config)
    threshold = config.perceptible_threshold_ms
    return episodes, [ep for ep in episodes if ep.is_perceptible(threshold)]
