"""Pattern mining: grouping episodes into structural equivalence classes.

Looking at an individual episode is usually not enough to determine the
cause of long latency (Section II-C). LagAlyzer therefore groups episodes
into equivalence classes — *patterns* — based on the structure of their
interval trees: the kind of each interval and its symbolic information
(class/method names), but **not** its timing, and with GC intervals
elided (a collection may or may not be the fault of the code it happens
to interrupt; Section II-D).

The pattern key is a canonical pre-order string encoding of the GC-blind
tree, so two episodes are equivalent iff their keys compare equal, and
keys are stable across runs and processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS, Episode
from repro.core.intervals import Interval, IntervalKind

#: Separators for the canonical key encoding. Chosen outside the
#: character set of Java identifiers so keys cannot be ambiguous.
_OPEN = "("
_CLOSE = ")"
_SEP = "|"


def _encode(node: Interval, parts: List[str], include_gc: bool) -> None:
    parts.append(_OPEN)
    parts.append(node.kind.value)
    parts.append(_SEP)
    parts.append(node.symbol)
    for child in node.children:
        if include_gc or child.kind is not IntervalKind.GC:
            _encode(child, parts, include_gc)
    parts.append(_CLOSE)


def pattern_key(episode: Episode, include_gc: bool = False) -> str:
    """Canonical structural key of an episode's interval tree.

    The dispatch root is implicit (every episode has one), so the key
    encodes only the dispatch's descendants. Timing is excluded by
    construction; GC nodes are elided unless ``include_gc`` is set
    (exposed for the GC-blindness ablation).

    Returns:
        The canonical key; the empty string for an episode whose
        dispatch interval has no (non-GC) children.
    """
    parts: List[str] = []
    for child in episode.root.children:
        if include_gc or child.kind is not IntervalKind.GC:
            _encode(child, parts, include_gc)
    return "".join(parts)


def key_descendant_count(key: str) -> int:
    """Number of intervals encoded in a pattern key."""
    return key.count(_OPEN)


def key_depth(key: str) -> int:
    """Depth of the tree encoded in a pattern key.

    The implicit dispatch root counts as depth 1, matching
    :meth:`Episode.tree_depth`; an empty key therefore has depth 1.
    """
    depth = 1
    best = 1
    for char in key:
        if char == _OPEN:
            depth += 1
            if depth > best:
                best = depth
        elif char == _CLOSE:
            depth -= 1
    return best


class Pattern:
    """One equivalence class of episodes and its lag statistics.

    The Pattern Browser (Section II-E) shows, for each pattern, the
    number of episodes and the minimum, average, maximum, and total lag
    over all of the pattern's episodes.
    """

    __slots__ = ("key", "episodes")

    def __init__(self, key: str, episodes: Optional[List[Episode]] = None) -> None:
        self.key = key
        self.episodes: List[Episode] = episodes if episodes is not None else []

    # ------------------------------------------------------------------
    # Lag statistics
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of episodes in this pattern."""
        return len(self.episodes)

    @property
    def is_singleton(self) -> bool:
        """True if the pattern contains exactly one episode."""
        return len(self.episodes) == 1

    @property
    def min_lag_ms(self) -> float:
        return min(ep.duration_ms for ep in self.episodes)

    @property
    def max_lag_ms(self) -> float:
        return max(ep.duration_ms for ep in self.episodes)

    @property
    def avg_lag_ms(self) -> float:
        return self.total_lag_ms / len(self.episodes)

    @property
    def total_lag_ms(self) -> float:
        return sum(ep.duration_ms for ep in self.episodes)

    def perceptible_count(
        self, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
    ) -> int:
        """How many of this pattern's episodes are perceptible."""
        return sum(1 for ep in self.episodes if ep.is_perceptible(threshold_ms))

    def has_perceptible(
        self, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
    ) -> bool:
        return any(ep.is_perceptible(threshold_ms) for ep in self.episodes)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def representative(self) -> Episode:
        """The first episode of the pattern (what the browser sketches)."""
        return self.episodes[0]

    @property
    def descendant_count(self) -> int:
        """Size of the pattern's (GC-blind) tree ("Descs")."""
        return key_descendant_count(self.key)

    @property
    def depth(self) -> int:
        """Depth of the pattern's (GC-blind) tree ("Depth")."""
        return key_depth(self.key)

    def gc_episode_count(self) -> int:
        """Episodes of this pattern that contain at least one GC interval.

        Because pattern keys are GC-blind, a developer uses this to tell
        whether a class *always* or *rarely* contains collections — the
        diagnostic the paper motivates in Section II-D.
        """
        return sum(
            1
            for ep in self.episodes
            if ep.root.find(lambda n: n.kind is IntervalKind.GC) is not None
        )

    def __repr__(self) -> str:
        return (
            f"Pattern({self.count} episodes, "
            f"max {self.max_lag_ms:.1f} ms, key={self.key[:40]!r}...)"
        )


def cumulative_distribution_from_counts(
    counts: Sequence[int], points: int = 100
) -> List[float]:
    """The Figure 3 curve from per-pattern episode counts alone.

    The curve depends only on the multiset of counts (patterns are
    ranked most-frequent first; ties contribute identical values), so
    it can be computed from merged per-trace tallies without ever
    materializing Pattern objects.
    """
    ranked = sorted(counts, reverse=True)
    total = sum(ranked)
    if total == 0 or not ranked:
        return [0.0] * (points + 1)
    cumulative = []
    running = 0
    for count in ranked:
        running += count
        cumulative.append(running)
    result = []
    n = len(ranked)
    for i in range(points + 1):
        # Number of patterns included at this x-axis position.
        k = round(i * n / points)
        if k <= 0:
            result.append(0.0)
        else:
            result.append(100.0 * cumulative[min(k, n) - 1] / total)
    return result


class PatternTable:
    """The pattern browser's table: all patterns mined from episodes.

    Episodes without internal structure (a dispatch interval with no
    children at all) are excluded, matching Table III's "#Eps" column.
    """

    def __init__(
        self, patterns: Sequence[Pattern], excluded_episodes: int = 0
    ) -> None:
        self._patterns: List[Pattern] = list(patterns)
        self.excluded_episodes = excluded_episodes

    @classmethod
    def from_episodes(
        cls, episodes: Iterable[Episode], include_gc: bool = False
    ) -> "PatternTable":
        """Mine patterns from ``episodes``.

        Args:
            episodes: episodes from one or more sessions (the paper's
                analysis integrates multiple traces).
            include_gc: include GC nodes in pattern keys (ablation knob;
                the paper's tool always excludes them).
        """
        by_key: Dict[str, Pattern] = {}
        excluded = 0
        for episode in episodes:
            if not episode.has_structure:
                excluded += 1
                continue
            key = pattern_key(episode, include_gc=include_gc)
            pattern = by_key.get(key)
            if pattern is None:
                pattern = Pattern(key)
                by_key[key] = pattern
            pattern.episodes.append(episode)
        return cls(list(by_key.values()), excluded_episodes=excluded)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def rows(self) -> List[Pattern]:
        """Patterns ordered by total lag, worst first (browser default)."""
        return sorted(
            self._patterns, key=lambda p: p.total_lag_ms, reverse=True
        )

    def by_count(self) -> List[Pattern]:
        """Patterns ordered by episode count, most frequent first."""
        return sorted(self._patterns, key=lambda p: p.count, reverse=True)

    def get(self, key: str) -> Optional[Pattern]:
        """The pattern with exactly this key, or None."""
        for pattern in self._patterns:
            if pattern.key == key:
                return pattern
        return None

    def perceptible_only(
        self, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
    ) -> "PatternTable":
        """Filtered table keeping patterns with ≥1 perceptible episode.

        This is the browser's "elide patterns without perceptible
        episodes" filter.
        """
        kept = [p for p in self._patterns if p.has_perceptible(threshold_ms)]
        return PatternTable(kept, excluded_episodes=self.excluded_episodes)

    # ------------------------------------------------------------------
    # Aggregate statistics (Table III "Patterns" block)
    # ------------------------------------------------------------------

    @property
    def distinct_count(self) -> int:
        """Number of distinct patterns ("Dist")."""
        return len(self._patterns)

    @property
    def covered_episodes(self) -> int:
        """Episodes covered by some pattern ("#Eps")."""
        return sum(p.count for p in self._patterns)

    @property
    def singleton_count(self) -> int:
        """Patterns containing only a single episode."""
        return sum(1 for p in self._patterns if p.is_singleton)

    @property
    def singleton_fraction(self) -> float:
        """Fraction of patterns that are singletons ("One-Ep")."""
        if not self._patterns:
            return 0.0
        return self.singleton_count / len(self._patterns)

    @property
    def singleton_episode_fraction(self) -> float:
        """Fraction of covered episodes that live in singleton patterns.

        The paper notes singletons are 56% of patterns but only account
        for about 10% of episodes.
        """
        covered = self.covered_episodes
        if covered == 0:
            return 0.0
        return self.singleton_count / covered

    @property
    def mean_descendants(self) -> float:
        """Average pattern-tree size over all patterns ("Descs")."""
        if not self._patterns:
            return 0.0
        return sum(p.descendant_count for p in self._patterns) / len(
            self._patterns
        )

    @property
    def mean_depth(self) -> float:
        """Average pattern-tree depth over all patterns ("Depth")."""
        if not self._patterns:
            return 0.0
        return sum(p.depth for p in self._patterns) / len(self._patterns)

    def cumulative_episode_distribution(self, points: int = 100) -> List[float]:
        """The Figure 3 curve: cumulative episode coverage by pattern rank.

        Patterns are ranked by episode count (most frequent first). The
        returned list has ``points + 1`` values: entry *i* is the
        percentage of episodes covered by the top ``i / points`` fraction
        of patterns. With Pareto-like data, entry at 20% of patterns is
        near 80% of episodes.
        """
        return cumulative_distribution_from_counts(
            [p.count for p in self._patterns], points=points
        )

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __repr__(self) -> str:
        return (
            f"PatternTable({len(self._patterns)} patterns, "
            f"{self.covered_episodes} episodes, "
            f"{self.excluded_episodes} excluded)"
        )
