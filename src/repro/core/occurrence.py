"""Occurrence classification: always, sometimes, once, or never slow.

Section IV-B characterizes how problematic each pattern is by how many of
its episodes are perceptible. A pattern whose episodes are *always*
perceptible is a deterministic problem; *sometimes* suggests
non-determinism; *once* (especially if it is the pattern's first episode)
suggests initialization effects such as class loading; *never* is the
ideal. Singleton patterns whose only episode is perceptible are
classified "always".
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS
from repro.core.patterns import Pattern, PatternTable


class Occurrence(enum.Enum):
    """How often a pattern's episodes are perceptible (Figure 4)."""

    ALWAYS = "always"
    SOMETIMES = "sometimes"
    ONCE = "once"
    NEVER = "never"


def classify_pattern(
    pattern: Pattern, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
) -> Occurrence:
    """Classify a single pattern per the Section IV-B rules."""
    n_perceptible = pattern.perceptible_count(threshold_ms)
    if n_perceptible == 0:
        return Occurrence.NEVER
    if n_perceptible == pattern.count:
        # Covers singletons with a perceptible episode: "We classify
        # singleton patterns as 'always' if their only episode was
        # perceptible."
        return Occurrence.ALWAYS
    if n_perceptible == 1:
        return Occurrence.ONCE
    return Occurrence.SOMETIMES


class OccurrenceSummary:
    """Distribution of patterns over occurrence classes for one app."""

    def __init__(self, counts: Dict[Occurrence, int]) -> None:
        self.counts: Dict[Occurrence, int] = {
            occurrence: counts.get(occurrence, 0) for occurrence in Occurrence
        }

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, occurrence: Occurrence) -> float:
        """Fraction of patterns in ``occurrence`` (0 if no patterns)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.counts[occurrence] / total

    def percentages(self) -> Dict[Occurrence, float]:
        """Percentages per class, in Figure 4's bar order."""
        return {
            occurrence: 100.0 * self.fraction(occurrence)
            for occurrence in Occurrence
        }

    @property
    def consistent_fraction(self) -> float:
        """Patterns that are consistently slow or consistently fast.

        The paper reports that on average 96% of patterns are either
        "always" or "never" perceptible.
        """
        total = self.total
        if total == 0:
            return 0.0
        consistent = (
            self.counts[Occurrence.ALWAYS] + self.counts[Occurrence.NEVER]
        )
        return consistent / total

    @property
    def ever_perceptible_fraction(self) -> float:
        """Patterns that are once, sometimes, or always perceptible.

        The paper reports this is a relatively small fraction (22% on
        average).
        """
        total = self.total
        if total == 0:
            return 0.0
        ever = total - self.counts[Occurrence.NEVER]
        return ever / total

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{occ.value}={count}" for occ, count in self.counts.items()
        )
        return f"OccurrenceSummary({parts})"


def summarize(
    table: PatternTable, threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
) -> OccurrenceSummary:
    """Classify every pattern of ``table`` and tally the classes."""
    counts: Dict[Occurrence, int] = {}
    for pattern in table:
        occurrence = classify_pattern(pattern, threshold_ms)
        counts[occurrence] = counts.get(occurrence, 0) + 1
    return OccurrenceSummary(counts)


def patterns_by_occurrence(
    table: PatternTable,
    occurrence: Occurrence,
    threshold_ms: float = DEFAULT_PERCEPTIBLE_MS,
) -> List[Pattern]:
    """All patterns of ``table`` in the given occurrence class."""
    return [
        pattern
        for pattern in table
        if classify_pattern(pattern, threshold_ms) is occurrence
    ]
