"""Lag distributions: percentiles, histograms, and duration bands.

Table III summarizes episode durations with three coarse bands (below
the trace filter, traced, perceptible). Real latency work needs the
full distribution — medians move rarely, tails move first — so this
module provides percentile summaries, logarithmic histograms, and the
band decomposition for any episode population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS, Episode


@dataclass(frozen=True)
class LagSummary:
    """Percentile summary of one episode population's lags (ms)."""

    count: int
    min_ms: float
    p25_ms: float
    median_ms: float
    p75_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float
    mean_ms: float
    total_ms: float

    def describe(self) -> str:
        """One-line summary for reports."""
        if self.count == 0:
            return "no episodes"
        return (
            f"n={self.count}  min={self.min_ms:.1f}  "
            f"p50={self.median_ms:.1f}  p90={self.p90_ms:.1f}  "
            f"p99={self.p99_ms:.1f}  max={self.max_ms:.1f}  "
            f"mean={self.mean_ms:.1f} ms"
        )


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of pre-sorted values.

    Args:
        sorted_values: non-empty ascending values.
        fraction: in [0, 1].
    """
    if not sorted_values:
        raise ValueError("percentile of empty population")
    if len(sorted_values) == 1:
        return sorted_values[0]
    fraction = min(max(fraction, 0.0), 1.0)
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def summarize_lags(episodes: Sequence[Episode]) -> LagSummary:
    """Percentile summary over ``episodes``; zeros when empty."""
    lags = sorted(ep.duration_ms for ep in episodes)
    if not lags:
        return LagSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = sum(lags)
    return LagSummary(
        count=len(lags),
        min_ms=lags[0],
        p25_ms=percentile(lags, 0.25),
        median_ms=percentile(lags, 0.50),
        p75_ms=percentile(lags, 0.75),
        p90_ms=percentile(lags, 0.90),
        p99_ms=percentile(lags, 0.99),
        max_ms=lags[-1],
        mean_ms=total / len(lags),
        total_ms=total,
    )


def log_histogram(
    episodes: Sequence[Episode],
    bins_per_decade: int = 3,
    floor_ms: float = 1.0,
) -> List[Tuple[float, float, int]]:
    """Logarithmically binned histogram of episode lags.

    Log bins match how lag matters perceptually: the difference between
    10 and 20 ms is as meaningful as between 100 and 200 ms.

    Returns:
        (bin_low_ms, bin_high_ms, count) triples, low bins first; empty
        leading/trailing bins are trimmed.
    """
    if bins_per_decade <= 0:
        raise ValueError("bins_per_decade must be positive")
    counts: Dict[int, int] = {}
    for episode in episodes:
        lag = max(episode.duration_ms, floor_ms)
        index = math.floor(math.log10(lag / floor_ms) * bins_per_decade)
        counts[index] = counts.get(index, 0) + 1
    if not counts:
        return []
    result = []
    for index in range(min(counts), max(counts) + 1):
        low = floor_ms * 10 ** (index / bins_per_decade)
        high = floor_ms * 10 ** ((index + 1) / bins_per_decade)
        result.append((low, high, counts.get(index, 0)))
    return result


@dataclass(frozen=True)
class DurationBands:
    """Table III's episode-duration decomposition for one population."""

    below_filter: int
    traced_fast: int
    perceptible: int

    @property
    def traced(self) -> int:
        return self.traced_fast + self.perceptible


def duration_bands(
    episodes: Sequence[Episode],
    filtered_count: int,
    threshold_ms: float = DEFAULT_PERCEPTIBLE_MS,
) -> DurationBands:
    """Band decomposition matching Table III's three count columns.

    Args:
        episodes: traced episodes (the sub-filter ones never reach us).
        filtered_count: the tracer's sub-filter count.
    """
    perceptible = sum(
        1 for ep in episodes if ep.is_perceptible(threshold_ms)
    )
    return DurationBands(
        below_filter=filtered_count,
        traced_fast=len(episodes) - perceptible,
        perceptible=perceptible,
    )
