"""Location analysis: application, library, garbage collector, or native.

Section IV-D attributes episode time to where it was spent, along two
independent axes:

1. **Application vs runtime library** — estimated from the call-stack
   samples taken of the GUI thread while it was executing Java code
   during episodes. A sample counts as "library" when the fully
   qualified class name of the executing (leaf) method matches a runtime
   library prefix.
2. **GC vs native code** — computed exactly from the trace's GC and
   native *intervals* as a fraction of total episode time. Native time
   that encloses a GC is attributed to the GC (the paper's Figure 1
   discussion shows the native method is not to blame for the time the
   collector stole from it), so the two fractions are disjoint.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.core.episodes import Episode
from repro.core.intervals import Interval, IntervalKind, merge_adjacent
from repro.core.samples import DEFAULT_LIBRARY_PREFIXES


class LocationSummary:
    """Where time went for one population of episodes (Figure 6)."""

    __slots__ = (
        "app_samples",
        "library_samples",
        "gc_ns",
        "native_ns",
        "episode_ns",
    )

    def __init__(
        self,
        app_samples: int,
        library_samples: int,
        gc_ns: int,
        native_ns: int,
        episode_ns: int,
    ) -> None:
        self.app_samples = app_samples
        self.library_samples = library_samples
        self.gc_ns = gc_ns
        self.native_ns = native_ns
        self.episode_ns = episode_ns

    # -- first stack: application vs runtime library -------------------

    @property
    def app_fraction(self) -> float:
        """Fraction of sampled Java time spent in application code."""
        total = self.app_samples + self.library_samples
        if total == 0:
            return 0.0
        return self.app_samples / total

    @property
    def library_fraction(self) -> float:
        """Fraction of sampled Java time spent in the runtime library."""
        total = self.app_samples + self.library_samples
        if total == 0:
            return 0.0
        return self.library_samples / total

    # -- second stack: GC and native ------------------------------------

    @property
    def gc_fraction(self) -> float:
        """Fraction of episode time spent in garbage collection."""
        if self.episode_ns == 0:
            return 0.0
        return self.gc_ns / self.episode_ns

    @property
    def native_fraction(self) -> float:
        """Fraction of episode time spent in native code (GC excluded)."""
        if self.episode_ns == 0:
            return 0.0
        return self.native_ns / self.episode_ns

    def percentages(self) -> dict:
        """All four percentages keyed by Figure 6's legend labels."""
        return {
            "Application": 100.0 * self.app_fraction,
            "RT Library": 100.0 * self.library_fraction,
            "GC": 100.0 * self.gc_fraction,
            "Native": 100.0 * self.native_fraction,
        }

    def __repr__(self) -> str:
        return (
            f"LocationSummary(app={100 * self.app_fraction:.0f}%, "
            f"lib={100 * self.library_fraction:.0f}%, "
            f"gc={100 * self.gc_fraction:.0f}%, "
            f"native={100 * self.native_fraction:.0f}%)"
        )


def _covered_ns_within(
    intervals: Sequence[Interval], start_ns: int, end_ns: int
) -> int:
    """Time covered by ``intervals``, clipped to [start_ns, end_ns)."""
    total = 0
    for span_start, span_end in merge_adjacent(intervals):
        lo = max(span_start, start_ns)
        hi = min(span_end, end_ns)
        if hi > lo:
            total += hi - lo
    return total


def episode_gc_native_ns(episode: Episode) -> Tuple[int, int]:
    """(gc_ns, native_ns) for one episode, disjoint by construction.

    GC time is the union of the episode's GC intervals. Native time is
    the union of native intervals minus any GC time nested inside them.
    """
    gc_intervals = episode.intervals_of_kind(IntervalKind.GC)
    native_intervals = episode.intervals_of_kind(IntervalKind.NATIVE)
    gc_ns = _covered_ns_within(gc_intervals, episode.start_ns, episode.end_ns)
    native_ns = _covered_ns_within(
        native_intervals, episode.start_ns, episode.end_ns
    )
    # Subtract GC time that falls inside native intervals so the two
    # fractions never double count.
    overlap = 0
    native_spans = merge_adjacent(native_intervals)
    gc_spans = merge_adjacent(gc_intervals)
    for n_start, n_end in native_spans:
        for g_start, g_end in gc_spans:
            lo = max(n_start, g_start)
            hi = min(n_end, g_end)
            if hi > lo:
                overlap += hi - lo
    return gc_ns, native_ns - overlap


def summarize(
    episodes: Iterable[Episode],
    library_prefixes: Sequence[str] = DEFAULT_LIBRARY_PREFIXES,
) -> LocationSummary:
    """Compute the Figure 6 breakdown for ``episodes``.

    Samples taken while the GUI thread was in native code are excluded
    from the application-vs-library split (the paper analyzes "call
    stack samples taken in Java code"); GC blackout means no samples
    exist during collections.
    """
    app_samples = 0
    library_samples = 0
    gc_ns = 0
    native_ns = 0
    episode_ns = 0
    for episode in episodes:
        episode_ns += episode.duration_ns
        ep_gc, ep_native = episode_gc_native_ns(episode)
        gc_ns += ep_gc
        native_ns += ep_native
        for entry in episode.gui_samples():
            stack = entry.stack
            if stack.leaf is None or stack.in_native():
                continue
            if stack.in_library(library_prefixes):
                library_samples += 1
            else:
                app_samples += 1
    return LocationSummary(
        app_samples=app_samples,
        library_samples=library_samples,
        gc_ns=gc_ns,
        native_ns=native_ns,
        episode_ns=episode_ns,
    )
