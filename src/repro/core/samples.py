"""Call-stack samples and thread states.

Besides intervals, LiLa traces carry periodically captured call stacks of
*all* threads, each annotated with the thread's scheduling state. These
samples let LagAlyzer estimate, for perceptibly slow episodes, whether the
GUI thread was runnable, blocked, waiting, or sleeping; how much time was
spent in native versus Java code; and how much in the runtime library
versus the application (Sections II-B and IV-D/IV-E of the paper).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

#: Fully-qualified class-name prefixes treated as "runtime library" when
#: partitioning samples into application vs library time (Section IV-D).
DEFAULT_LIBRARY_PREFIXES: Tuple[str, ...] = (
    "java.",
    "javax.",
    "sun.",
    "com.sun.",
    "com.apple.",
    "apple.",
    "org.w3c.",
    "org.xml.",
    "jdk.",
)


class ThreadState(enum.Enum):
    """Scheduling state of a thread at sampling time.

    The paper's cause analysis (Section IV-E) distinguishes a GUI thread
    that is blocked entering a contended monitor, waiting in
    ``Object.wait()``/``LockSupport.park()``, voluntarily sleeping in
    ``Thread.sleep()``, or runnable (doing — or ready to do — work).
    """

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    WAITING = "waiting"
    SLEEPING = "sleeping"

    @classmethod
    def from_name(cls, name: str) -> "ThreadState":
        """Return the state whose trace-file name is ``name``."""
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(state.value for state in cls)
            raise ValueError(
                f"unknown thread state {name!r}; expected one of: {valid}"
            ) from None


class StackFrame:
    """One frame of a call stack: a method of a class, Java or native."""

    __slots__ = ("class_name", "method_name", "is_native")

    def __init__(self, class_name: str, method_name: str, is_native: bool = False) -> None:
        self.class_name = class_name
        self.method_name = method_name
        self.is_native = is_native

    @property
    def qualified_name(self) -> str:
        """``package.Class.method`` form used in sketches and reports."""
        return f"{self.class_name}.{self.method_name}"

    def is_library(
        self, prefixes: Sequence[str] = DEFAULT_LIBRARY_PREFIXES
    ) -> bool:
        """True if this frame belongs to the runtime library.

        Classification is by fully qualified class name, exactly as the
        paper does for its application-vs-library split.
        """
        return any(self.class_name.startswith(prefix) for prefix in prefixes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackFrame):
            return NotImplemented
        return (
            self.class_name == other.class_name
            and self.method_name == other.method_name
            and self.is_native == other.is_native
        )

    def __hash__(self) -> int:
        return hash((self.class_name, self.method_name, self.is_native))

    def __repr__(self) -> str:
        suffix = " [native]" if self.is_native else ""
        return f"StackFrame({self.qualified_name}{suffix})"


class StackTrace:
    """An immutable call stack, leaf frame first."""

    __slots__ = ("frames",)

    def __init__(self, frames: Iterable[StackFrame]) -> None:
        self.frames: Tuple[StackFrame, ...] = tuple(frames)

    @property
    def leaf(self) -> Optional[StackFrame]:
        """The currently executing frame, or None for an empty stack."""
        return self.frames[0] if self.frames else None

    @property
    def depth(self) -> int:
        return len(self.frames)

    def in_native(self) -> bool:
        """True if execution was inside native code when sampled."""
        leaf = self.leaf
        return leaf is not None and leaf.is_native

    def in_library(
        self, prefixes: Sequence[str] = DEFAULT_LIBRARY_PREFIXES
    ) -> bool:
        """True if the executing (leaf) frame is runtime-library code."""
        leaf = self.leaf
        return leaf is not None and leaf.is_library(prefixes)

    def __iter__(self) -> Iterator[StackFrame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StackTrace):
            return NotImplemented
        return self.frames == other.frames

    def __hash__(self) -> int:
        return hash(self.frames)

    def __repr__(self) -> str:
        if not self.frames:
            return "StackTrace(<empty>)"
        return f"StackTrace({self.leaf.qualified_name} +{len(self.frames) - 1})"


EMPTY_STACK = StackTrace(())


class ThreadSample:
    """State and stack of a single thread within one sampling tick."""

    __slots__ = ("thread_name", "state", "stack")

    def __init__(
        self, thread_name: str, state: ThreadState, stack: StackTrace = EMPTY_STACK
    ) -> None:
        self.thread_name = thread_name
        self.state = state
        self.stack = stack

    def __repr__(self) -> str:
        return f"ThreadSample({self.thread_name}, {self.state.value}, {self.stack!r})"


class Sample:
    """One sampling tick: the states and stacks of all threads.

    The tracer captures all threads at (roughly) periodic intervals;
    during a stop-the-world garbage collection no samples are taken at
    all (the JVMTI sampling blackout discussed with Figure 1).
    """

    __slots__ = ("timestamp_ns", "threads")

    def __init__(
        self, timestamp_ns: int, threads: Iterable[ThreadSample]
    ) -> None:
        self.timestamp_ns = timestamp_ns
        self.threads: Tuple[ThreadSample, ...] = tuple(threads)

    def thread(self, thread_name: str) -> Optional[ThreadSample]:
        """The sample entry for ``thread_name``, or None if absent."""
        for entry in self.threads:
            if entry.thread_name == thread_name:
                return entry
        return None

    def runnable_count(self) -> int:
        """Number of threads in the RUNNABLE state at this tick (Fig 7)."""
        return sum(
            1 for entry in self.threads if entry.state is ThreadState.RUNNABLE
        )

    def states_by_thread(self) -> Dict[str, ThreadState]:
        """Mapping thread name -> state for this tick."""
        return {entry.thread_name: entry.state for entry in self.threads}

    def __repr__(self) -> str:
        return f"Sample(t={self.timestamp_ns}, {len(self.threads)} threads)"


def samples_in_range(
    samples: Sequence[Sample], start_ns: int, end_ns: int
) -> list:
    """Samples whose timestamps fall in ``[start_ns, end_ns)``.

    ``samples`` must be sorted by timestamp; a binary search keeps episode
    slicing cheap even for long sessions.
    """
    lo, hi = 0, len(samples)
    while lo < hi:
        mid = (lo + hi) // 2
        if samples[mid].timestamp_ns < start_ns:
            lo = mid + 1
        else:
            hi = mid
    first = lo
    lo, hi = first, len(samples)
    while lo < hi:
        mid = (lo + hi) // 2
        if samples[mid].timestamp_ns < end_ns:
            lo = mid + 1
        else:
            hi = mid
    return list(samples[first:lo])
