"""The LagAlyzer facade: one object that runs every analysis.

The paper's core "provides the basis for the visualizations and analyses"
and exposes "a straightforward API" for developers writing their own
analyses. :class:`LagAlyzer` is that API: construct it from one or more
session traces (the tool integrates multiple traces in its analysis) and
query episodes, patterns, and the four characterization axes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.core import analyses as analyses_mod
from repro.core import causegraph
from repro.core.concurrency import ConcurrencySummary
from repro.core.episodes import DEFAULT_PERCEPTIBLE_MS, Episode
from repro.core.errors import AnalysisError
from repro.core.location import LocationSummary
from repro.core.occurrence import OccurrenceSummary
from repro.core.patterns import Pattern, PatternTable
from repro.core.samples import DEFAULT_LIBRARY_PREFIXES
from repro.core.statistics import SessionStats, average_stats
from repro.core.threadstates import ThreadStateSummary
from repro.core.trace import Trace
from repro.core.triggers import TriggerSummary
from repro.obs import runtime as obs_runtime


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable knobs shared by every analysis.

    Attributes:
        perceptible_threshold_ms: lag beyond which an episode is deemed
            perceptible. The paper uses Shneiderman's 100 ms; Dabrowski &
            Munson suggest 150 ms (keyboard) / 195 ms (mouse) — exposed
            for the threshold ablation.
        library_prefixes: fully-qualified class-name prefixes classified
            as "runtime library" in the location analysis.
        include_gc_in_patterns: include GC nodes in pattern keys. The
            paper's tool never does; this is an ablation knob.
    """

    perceptible_threshold_ms: float = DEFAULT_PERCEPTIBLE_MS
    library_prefixes: Tuple[str, ...] = DEFAULT_LIBRARY_PREFIXES
    include_gc_in_patterns: bool = False
    all_dispatch_threads: bool = False
    """Analyze episodes from every event dispatch thread, not just the
    primary GUI thread. The paper's study has one GUI thread; the tool
    supports multiple (Section V)."""

    def __post_init__(self) -> None:
        threshold = self.perceptible_threshold_ms
        if not isinstance(threshold, (int, float)) or math.isnan(threshold):
            raise AnalysisError(
                f"perceptible_threshold_ms must be a number, got {threshold!r}"
            )
        if threshold < 0:
            raise AnalysisError(
                "perceptible_threshold_ms must be >= 0, got "
                f"{threshold!r} (a negative cut would mark every episode "
                "perceptible)"
            )
        # Normalize to a tuple so configs hash/fingerprint stably no
        # matter what sequence type the caller passed.
        if not isinstance(self.library_prefixes, tuple):
            object.__setattr__(
                self, "library_prefixes", tuple(self.library_prefixes)
            )

    def with_threshold(self, threshold_ms: float) -> "AnalysisConfig":
        """A copy of this config with a different perceptibility cut."""
        return replace(self, perceptible_threshold_ms=threshold_ms)

    def fingerprint(self) -> str:
        """Stable content hash of this config (engine cache key part)."""
        from repro.engine.cache import config_fingerprint

        return config_fingerprint(self)


class LagAlyzer:
    """Offline analyzer over one or more session traces.

    All analyses are lazy and cached: the pattern table is mined once on
    first use and reused by every analysis that needs it.
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        config: Optional[AnalysisConfig] = None,
        obs: Optional[Any] = None,
    ) -> None:
        if not traces:
            raise AnalysisError("LagAlyzer needs at least one trace")
        applications = {trace.application for trace in traces}
        if len(applications) > 1:
            raise AnalysisError(
                "all traces passed to one LagAlyzer must come from the "
                f"same application; got {sorted(applications)}"
            )
        self.traces: List[Trace] = list(traces)
        self.config = config or AnalysisConfig()
        self.obs = obs
        """Optional :class:`repro.obs.Observer` this analyzer reports
        into (falls back to the ambiently installed observer)."""
        self._pattern_table: Optional[PatternTable] = None
        self._episodes: Optional[List[Episode]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_traces(
        cls,
        traces: Sequence[Trace],
        config: Optional[AnalysisConfig] = None,
        obs: Optional[Any] = None,
    ) -> "LagAlyzer":
        """Build an analyzer from already-loaded traces."""
        return cls(traces, config=config, obs=obs)

    @classmethod
    def load(
        cls,
        paths: Union[str, Path, Sequence[Any]],
        config: Optional[AnalysisConfig] = None,
        workers: Optional[int] = 1,
        obs: Optional[Any] = None,
    ) -> "LagAlyzer":
        """Build an analyzer by reading LiLa-style traces.

        ``paths`` may be explicit file paths, directories (all
        ``*.lila``/``*.lilb`` files inside), glob patterns, open
        :class:`~repro.lila.source.TraceSource` objects, or a mix —
        a single entry or a sequence. Both the text and the binary
        encodings are accepted; the format is detected per file. With
        ``workers > 1`` files are parsed in parallel processes via the
        engine (``0`` means one worker per CPU).
        """
        from repro.engine.engine import AnalysisEngine
        from repro.lila.autodetect import expand_trace_paths
        from repro.lila.source import TraceSource

        if isinstance(paths, (str, Path, TraceSource)):
            paths = [paths]
        entries: List[Any] = []
        for item in paths:
            if isinstance(item, TraceSource):
                entries.append(item)
            else:
                entries.extend(expand_trace_paths(item))
        engine = AnalysisEngine(workers=workers, use_cache=False, obs=obs)
        traces = engine.load_traces(entries)
        return cls(traces, config=config, obs=obs)

    # ------------------------------------------------------------------
    # Episode access
    # ------------------------------------------------------------------

    @property
    def application(self) -> str:
        return self.traces[0].application

    @property
    def episodes(self) -> List[Episode]:
        """All episodes of all sessions, session order then time order.

        Built once on first access and reused by every summary call;
        traces are immutable, so the cache never needs invalidation.
        """
        if self._episodes is None:
            with obs_runtime.installed(self.obs):
                with obs_runtime.maybe_span(
                    "api.episodes", traces=len(self.traces)
                ):
                    result: List[Episode] = []
                    for trace in self.traces:
                        result.extend(
                            analyses_mod.trace_episodes(trace, self.config)
                        )
            self._episodes = result
        return self._episodes

    def perceptible_episodes(self) -> List[Episode]:
        """Episodes beyond the configured perceptibility threshold."""
        threshold = self.config.perceptible_threshold_ms
        return [ep for ep in self.episodes if ep.is_perceptible(threshold)]

    # ------------------------------------------------------------------
    # Patterns (Sections II-C to II-E)
    # ------------------------------------------------------------------

    def pattern_table(self) -> PatternTable:
        """The mined pattern table, integrating all sessions."""
        if self._pattern_table is None:
            episodes = self.episodes
            with obs_runtime.installed(self.obs):
                with obs_runtime.maybe_span(
                    "api.pattern_table", episodes=len(episodes)
                ):
                    self._pattern_table = PatternTable.from_episodes(
                        episodes,
                        include_gc=self.config.include_gc_in_patterns,
                    )
        return self._pattern_table

    def pattern_of(self, episode: Episode) -> Optional[Pattern]:
        """The pattern containing ``episode`` (None for empty episodes)."""
        if not episode.has_structure:
            return None
        from repro.core.patterns import pattern_key

        key = pattern_key(
            episode, include_gc=self.config.include_gc_in_patterns
        )
        return self.pattern_table().get(key)

    # ------------------------------------------------------------------
    # Characterization analyses (Section IV)
    # ------------------------------------------------------------------

    def summary(
        self,
        name: str,
        perceptible_only: bool = False,
        engine: Optional[Any] = None,
    ) -> Any:
        """Run any registered analysis by name.

        ``name`` is a key of :data:`repro.core.analyses.REGISTRY`
        (``"occurrence"``, ``"triggers"``, ``"location"``,
        ``"concurrency"``, ``"threadstates"``, ``"statistics"``,
        ``"patterns"``, or anything registered downstream). With an
        :class:`~repro.engine.AnalysisEngine` the per-trace map work
        runs through its worker pool and result cache; without one it
        is the plain serial composition. Both paths produce identical
        summaries.

        Raises:
            AnalysisError: unknown name, or ``perceptible_only=True``
                for an analysis without that variant.
        """
        if engine is not None:
            return engine.summarize(
                name, self.traces, self.config, perceptible_only=perceptible_only
            )
        with obs_runtime.installed(self.obs):
            with obs_runtime.maybe_span(
                "api.summary", analysis=name, perceptible_only=perceptible_only
            ):
                return analyses_mod.get_analysis(name).summarize(
                    self.traces, self.config, perceptible_only=perceptible_only
                )

    def summaries(
        self,
        names: Optional[Sequence[str]] = None,
        engine: Optional[Any] = None,
    ) -> dict:
        """Summaries of several analyses from **one fused pass per trace**.

        The requested ``names`` (default: every registered analysis, in
        registration order) are compiled into one
        :class:`~repro.core.plan.AnalysisPlan`; each trace is then
        mapped once, with shared stages (the episode split, pattern
        tallies) computed a single time and reused by every analysis
        that needs them. Results are byte-identical to calling
        :meth:`summary` once per name — just without re-scanning each
        trace N times.

        With an :class:`~repro.engine.AnalysisEngine` the fused passes
        additionally run through its worker pool and bundle cache
        (``engine.summarize_all``); without one they run serially
        in-process.
        """
        if names is None:
            names = tuple(analyses_mod.REGISTRY)
        if engine is not None:
            return engine.summarize_all(names, self.traces, self.config)
        from repro.core.plan import build_plan

        plan = build_plan(names)
        with obs_runtime.installed(self.obs):
            with obs_runtime.maybe_span(
                "api.summaries", analyses=len(plan.operators),
                traces=len(self.traces),
            ):
                per_trace = [
                    plan.execute(trace, self.config) for trace in self.traces
                ]
                return {
                    name: analyses_mod.get_analysis(name).reduce(
                        [partials[name] for partials in per_trace]
                    )
                    for name in plan.names
                }

    def occurrence_summary(self) -> OccurrenceSummary:
        """Always/sometimes/once/never distribution over patterns (Fig 4)."""
        return self.summary("occurrence")

    def trigger_summary(self, perceptible_only: bool = False) -> TriggerSummary:
        """Input/output/async/unspecified episode counts (Fig 5)."""
        return self.summary("triggers", perceptible_only=perceptible_only)

    def location_summary(self, perceptible_only: bool = False) -> LocationSummary:
        """App/library and GC/native time breakdown (Fig 6)."""
        return self.summary("location", perceptible_only=perceptible_only)

    def concurrency_summary(
        self, perceptible_only: bool = False
    ) -> ConcurrencySummary:
        """Mean runnable threads during episodes (Fig 7)."""
        return self.summary("concurrency", perceptible_only=perceptible_only)

    def threadstate_summary(
        self, perceptible_only: bool = False
    ) -> ThreadStateSummary:
        """GUI-thread blocked/wait/sleep/runnable split (Fig 8)."""
        return self.summary("threadstates", perceptible_only=perceptible_only)

    # ------------------------------------------------------------------
    # Cause analysis (dependency graphs and run diffing)
    # ------------------------------------------------------------------

    def cause_summary(
        self, perceptible_only: bool = False
    ) -> causegraph.CauseSummary:
        """Self-time attribution by cause label over all episodes."""
        return self.summary("causes", perceptible_only=perceptible_only)

    def cause_graph(self, episode: Episode) -> causegraph.EpisodeCauseGraph:
        """One episode's interval tree as a dependency graph."""
        return causegraph.build_graph(episode)

    def critical_path(
        self, episode: Episode
    ) -> Tuple[causegraph.CauseNode, ...]:
        """The heaviest dependency chain of one episode."""
        return causegraph.critical_path(causegraph.build_graph(episode))

    def rank_outlier_causes(
        self, threshold_ms: Optional[float] = None
    ) -> List[Tuple[str, float]]:
        """Causes ranked by their concentration in outlier episodes.

        ``threshold_ms`` defaults to the config's perceptibility cut.
        """
        if threshold_ms is None:
            threshold_ms = self.config.perceptible_threshold_ms
        return causegraph.rank_outliers(self.episodes, threshold_ms)

    @classmethod
    def diff(
        cls,
        study_a: str,
        study_b: str,
        warehouse: Union[str, Path, Any],
        apps: Optional[Sequence[str]] = None,
        perceptible_only: bool = False,
    ) -> causegraph.DiffReport:
        """Attribute the latency delta between two warehouse runs.

        ``study_a`` and ``study_b`` are run ids of a study warehouse
        (a path or an open
        :class:`~repro.warehouse.StudyWarehouse`); the report ranks
        every cause label by how much self time it gained from A to B,
        regressions first.
        """
        from repro.warehouse import StudyWarehouse

        store = warehouse
        if not isinstance(store, StudyWarehouse):
            store = StudyWarehouse(warehouse)
        return store.diff(
            study_a, study_b, apps=apps, perceptible_only=perceptible_only
        )

    # ------------------------------------------------------------------
    # Session statistics (Table III)
    # ------------------------------------------------------------------

    def session_stats(self) -> List[SessionStats]:
        """One Table III row per session."""
        return list(self.summary("statistics").rows)

    def mean_session_stats(self) -> SessionStats:
        """Table III row averaged over this application's sessions."""
        return average_stats(self.session_stats(), self.application)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"LagAlyzer({self.application!r}, {len(self.traces)} sessions, "
            f"{len(self.episodes)} episodes)"
        )
