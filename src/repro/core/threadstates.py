"""Cause analysis: synchronization, sleep, and work in the GUI thread.

Section IV-E partitions the time the GUI thread spent in episodes into
four components, using the fraction of call-stack samples taken in each
thread state: blocked entering contended monitors, waiting in
``Object.wait()``/``LockSupport.park()``, sleeping in ``Thread.sleep()``,
and runnable (the remainder — actual or pending work). Figure 8 plots
the first three; the paper stresses that aggregate (all-episode)
numbers hide what perceptible episodes reveal.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.samples import ThreadState


class ThreadStateSummary:
    """GUI-thread state distribution over one population of episodes."""

    def __init__(self, counts: Dict[ThreadState, int]) -> None:
        self.counts: Dict[ThreadState, int] = {
            state: counts.get(state, 0) for state in ThreadState
        }

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, state: ThreadState) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts[state] / total

    def percentages(self) -> Dict[ThreadState, float]:
        """Percentage of episode time per state (Figure 8 bars)."""
        return {
            state: 100.0 * self.fraction(state) for state in ThreadState
        }

    @property
    def blocked_fraction(self) -> float:
        return self.fraction(ThreadState.BLOCKED)

    @property
    def waiting_fraction(self) -> float:
        return self.fraction(ThreadState.WAITING)

    @property
    def sleeping_fraction(self) -> float:
        return self.fraction(ThreadState.SLEEPING)

    @property
    def runnable_fraction(self) -> float:
        return self.fraction(ThreadState.RUNNABLE)

    @property
    def synchronization_fraction(self) -> float:
        """Blocked + waiting: the synchronization share of episode time."""
        return self.blocked_fraction + self.waiting_fraction

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{state.value}={100 * self.fraction(state):.0f}%"
            for state in ThreadState
        )
        return f"ThreadStateSummary({parts})"


def summarize(episodes: Iterable) -> ThreadStateSummary:
    """Tally the GUI thread's sampled states over ``episodes``."""
    counts: Dict[ThreadState, int] = {}
    for episode in episodes:
        for entry in episode.gui_samples():
            counts[entry.state] = counts.get(entry.state, 0) + 1
    return ThreadStateSummary(counts)
