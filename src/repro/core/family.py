"""Workload families: pluggable episode boundaries and trigger vocabularies.

The paper's pipeline is hard-wired to the Swing GUI shape — episodes are
``dispatch`` roots on the event dispatch thread, triggers are the first
listener/paint/async interval, and the repaint-manager quirk reclassifies
async-wrapping-paint episodes as output. All of that is really one
*workload family*: a boundary kind that delimits episodes, a mapping from
interval kinds to trigger classes, and family-specific classification
quirks. This module makes the family an explicit, registered object so
the same episode/pattern/cause machinery serves genuinely different
workloads:

- ``gui`` — the paper's Swing shape, the default. Byte-identical to the
  pre-family pipeline: traces that carry no family marker are ``gui``.
- ``io_service`` — request/response services whose episodes are sliced
  along ``request`` roots with ``iowait`` dependency intervals (episodes
  à la ReLayTracer, PAPERS.md).
- ``async_pipeline`` — thread-pool stage chains: each ``stage`` root is
  one unit of pipeline work handed between workers.

A trace declares its family in the metadata extra space under
:data:`FAMILY_KEY` (``M x.family <name>`` in the text format); the key
rides the columnar store header, the ``.lilac`` column file, ingest
HELLO metadata, and the content digest, so mixed-family studies stay
first-class everywhere downstream. A missing key means ``gui``, which is
what keeps every pre-family trace, digest, and cache key unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core import episodes as episodes_mod
from repro.core.errors import AnalysisError
from repro.core.intervals import IntervalKind
from repro.core.triggers import Trigger

#: Metadata-extra key that names a trace's workload family.
FAMILY_KEY = "family"

#: Family of traces that carry no :data:`FAMILY_KEY` marker.
DEFAULT_FAMILY_NAME = "gui"


@dataclass(frozen=True)
class EpisodeFamily:
    """One workload family's episode vocabulary.

    Attributes:
        name: stable registry name (and the on-disk ``x.family`` value).
        root_kind: interval kind whose thread-tree roots delimit
            episodes — the family's boundary detector.
        trigger_map: interval kind -> :class:`~repro.core.triggers.Trigger`
            for the first matching interval of an episode's pre-order
            walk; episodes with no match are ``UNSPECIFIED``.
        reclassify_async_paint: apply the Swing repaint-manager quirk
            (footnote 3): an ``async`` trigger that wraps a ``paint``
            is reclassified as output. GUI only.
        description: one line for docs and CLI listings.
    """

    name: str
    root_kind: IntervalKind
    trigger_map: Mapping[IntervalKind, Trigger]
    reclassify_async_paint: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "trigger_map", dict(self.trigger_map))

    @property
    def trigger_kinds(self) -> Tuple[IntervalKind, ...]:
        """The kinds that can classify an episode, in map order."""
        return tuple(self.trigger_map)


#: Registered families by name. Registration order is stable; ``gui``
#: is always first.
FAMILIES: Dict[str, EpisodeFamily] = {}


def register_family(family: EpisodeFamily, replace: bool = False) -> EpisodeFamily:
    """Add ``family`` to the registry (downstream extension point).

    The family's root kind joins
    :data:`~repro.core.episodes.EPISODE_ROOT_KINDS`, so
    :class:`~repro.core.episodes.Episode` construction accepts it.
    """
    if not family.name:
        raise AnalysisError("an EpisodeFamily must have a non-empty name")
    if family.name in FAMILIES and not replace:
        raise AnalysisError(
            f"episode family {family.name!r} is already registered "
            "(pass replace=True to override)"
        )
    FAMILIES[family.name] = family
    episodes_mod.EPISODE_ROOT_KINDS.add(family.root_kind)
    return family


def get_family(name: str) -> EpisodeFamily:
    """Look a family up by name.

    Raises:
        AnalysisError: for unknown names, listing what is registered.
    """
    try:
        return FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise AnalysisError(
            f"unknown episode family {name!r}; registered: {known}"
        ) from None


def family_of(metadata: Optional[object]) -> EpisodeFamily:
    """The family a trace's metadata declares (default ``gui``).

    ``metadata`` is any object with an ``extra`` mapping (in practice a
    :class:`~repro.core.trace.TraceMetadata`); ``None`` means ``gui``.
    """
    if metadata is None:
        return FAMILIES[DEFAULT_FAMILY_NAME]
    extra = getattr(metadata, "extra", None) or {}
    return get_family(extra.get(FAMILY_KEY, DEFAULT_FAMILY_NAME))


def family_name_of(metadata: Optional[object]) -> str:
    """The declared family name without a registry lookup (default gui)."""
    if metadata is None:
        return DEFAULT_FAMILY_NAME
    extra = getattr(metadata, "extra", None) or {}
    return extra.get(FAMILY_KEY, DEFAULT_FAMILY_NAME)


GUI = register_family(
    EpisodeFamily(
        name="gui",
        root_kind=IntervalKind.DISPATCH,
        trigger_map={
            IntervalKind.LISTENER: Trigger.INPUT,
            IntervalKind.PAINT: Trigger.OUTPUT,
            IntervalKind.ASYNC: Trigger.ASYNC,
        },
        reclassify_async_paint=True,
        description="Swing GUI sessions: dispatch-rooted episodes on the "
        "event dispatch thread (the paper's workload).",
    )
)

IO_SERVICE = register_family(
    EpisodeFamily(
        name="io_service",
        root_kind=IntervalKind.REQUEST,
        trigger_map={
            IntervalKind.LISTENER: Trigger.INPUT,
            IntervalKind.PAINT: Trigger.OUTPUT,
            IntervalKind.IOWAIT: Trigger.ASYNC,
        },
        reclassify_async_paint=False,
        description="Request/response services: request-rooted episodes "
        "sliced along iowait dependency intervals.",
    )
)

ASYNC_PIPELINE = register_family(
    EpisodeFamily(
        name="async_pipeline",
        root_kind=IntervalKind.STAGE,
        trigger_map={
            IntervalKind.ASYNC: Trigger.ASYNC,
            IntervalKind.LISTENER: Trigger.INPUT,
            IntervalKind.PAINT: Trigger.OUTPUT,
        },
        reclassify_async_paint=False,
        description="Thread-pool pipelines: stage-rooted episodes handed "
        "between pool workers.",
    )
)
