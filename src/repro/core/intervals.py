"""Typed nested intervals — the backbone of LagAlyzer's trace model.

The paper (Table I) models all traced activity as *intervals* of six
kinds: the episode dispatch itself, listener notifications, paint
operations, JNI native calls, background-thread event handling ("async"),
and garbage collections. For a given thread, intervals are guaranteed to
be *properly nested*: any two intervals either nest or do not overlap at
all. This module provides the :class:`Interval` tree node, the
:class:`IntervalKind` vocabulary, and a builder that enforces the nesting
invariant while a trace is loaded.

All timestamps are integers in **nanoseconds** of virtual (or profiled)
time; durations in milliseconds are exposed as floats for reporting.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import NestingError

NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class IntervalKind(enum.Enum):
    """The six interval types of Table I, plus workload-family kinds.

    The enum value is the short name used in trace files and in pattern
    keys, so it is part of the stable on-disk vocabulary. The numeric
    column codes are the enumeration-order indices, so new kinds are
    only ever **appended** — inserting one would silently re-key every
    existing column file.
    """

    DISPATCH = "dispatch"
    """Start to end of a given episode."""

    LISTENER = "listener"
    """A listener notification call (handling of user input)."""

    PAINT = "paint"
    """A graphics rendering operation (output to the screen)."""

    NATIVE = "native"
    """A JNI native call."""

    ASYNC = "async"
    """The handling of an event posted in a background thread."""

    GC = "gc"
    """A garbage collection (stop-the-world)."""

    REQUEST = "request"
    """One request/response episode of the ``io_service`` family."""

    IOWAIT = "iowait"
    """Time blocked on an IO dependency (socket, disk, downstream RPC)."""

    STAGE = "stage"
    """One stage-chain episode of the ``async_pipeline`` family."""

    @classmethod
    def from_name(cls, name: str) -> "IntervalKind":
        """Return the kind whose trace-file name is ``name``.

        Raises:
            ValueError: if ``name`` is not a known kind name.
        """
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(kind.value for kind in cls)
            raise ValueError(
                f"unknown interval kind {name!r}; expected one of: {valid}"
            ) from None

    @property
    def is_structural(self) -> bool:
        """True for kinds that participate in pattern keys.

        GC intervals are excluded from pattern comparison (Section II-D):
        a collection may or may not be the fault of the interval that
        happens to surround it.
        """
        return self is not IntervalKind.GC


class Interval:
    """One node of a thread's interval tree.

    An interval has a :class:`IntervalKind`, a symbol (the class/method
    name that identifies it — e.g. ``javax.swing.JFrame.paint`` for a
    paint interval), a start and end timestamp in nanoseconds, and
    properly nested children.
    """

    __slots__ = ("kind", "symbol", "start_ns", "end_ns", "children", "parent")

    def __init__(
        self,
        kind: IntervalKind,
        symbol: str,
        start_ns: int,
        end_ns: int,
        children: Optional[List["Interval"]] = None,
    ) -> None:
        if end_ns < start_ns:
            raise NestingError(
                f"interval {kind.value}:{symbol} ends before it starts "
                f"({end_ns} < {start_ns})"
            )
        self.kind = kind
        self.symbol = symbol
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.children: List[Interval] = children if children is not None else []
        self.parent: Optional[Interval] = None
        for child in self.children:
            child.parent = self

    # ------------------------------------------------------------------
    # Durations and geometry
    # ------------------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        """Length of the interval in nanoseconds."""
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        """Length of the interval in milliseconds."""
        return self.duration_ns / NS_PER_MS

    def contains_time(self, t_ns: int) -> bool:
        """True if timestamp ``t_ns`` falls inside this interval.

        The start bound is inclusive and the end bound exclusive, so that
        adjacent siblings never both claim a timestamp.
        """
        return self.start_ns <= t_ns < self.end_ns

    def encloses(self, other: "Interval") -> bool:
        """True if ``other`` lies fully within this interval."""
        return self.start_ns <= other.start_ns and other.end_ns <= self.end_ns

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share any time."""
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns

    # ------------------------------------------------------------------
    # Tree traversal
    # ------------------------------------------------------------------

    def preorder(self) -> Iterator["Interval"]:
        """Yield this interval and all descendants in pre-order.

        Pre-order (node before children, children left to right) is the
        traversal the paper uses to determine an episode's trigger.
        """
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["Interval"]:
        """Yield all proper descendants in pre-order."""
        iterator = self.preorder()
        next(iterator)  # skip self
        return iterator

    def descendant_count(self, include_gc: bool = True) -> int:
        """Number of proper descendants.

        Args:
            include_gc: when False, GC intervals are not counted
                (matching the GC-blind pattern structure).
        """
        return sum(
            1
            for node in self.descendants()
            if include_gc or node.kind is not IntervalKind.GC
        )

    def depth(self, include_gc: bool = True) -> int:
        """Height of the tree rooted here; a leaf has depth 1."""
        best = 0
        stack: List[Tuple[Interval, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                if include_gc or child.kind is not IntervalKind.GC:
                    stack.append((child, level + 1))
        return best

    def find(
        self, predicate: Callable[["Interval"], bool]
    ) -> Optional["Interval"]:
        """Return the first interval (pre-order) matching ``predicate``."""
        for node in self.preorder():
            if predicate(node):
                return node
        return None

    def find_all(
        self, predicate: Callable[["Interval"], bool]
    ) -> List["Interval"]:
        """Return every interval (pre-order) matching ``predicate``."""
        return [node for node in self.preorder() if predicate(node)]

    def self_time_ns(self) -> int:
        """Time spent in this interval excluding its direct children."""
        return self.duration_ns - sum(c.duration_ns for c in self.children)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the proper-nesting invariant for the whole subtree.

        Raises:
            NestingError: if any child escapes its parent or two siblings
                overlap.
        """
        for node in self.preorder():
            previous_end = node.start_ns
            for child in node.children:
                if not node.encloses(child):
                    raise NestingError(
                        f"child {child.kind.value}:{child.symbol} "
                        f"[{child.start_ns}, {child.end_ns}) escapes parent "
                        f"{node.kind.value}:{node.symbol} "
                        f"[{node.start_ns}, {node.end_ns})"
                    )
                if child.start_ns < previous_end:
                    raise NestingError(
                        f"siblings overlap at {child.start_ns} under "
                        f"{node.kind.value}:{node.symbol}"
                    )
                previous_end = child.end_ns

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Interval({self.kind.value}, {self.symbol!r}, "
            f"{self.start_ns}..{self.end_ns}, "
            f"{len(self.children)} children)"
        )


class IntervalTreeBuilder:
    """Builds a properly nested interval tree from open/close events.

    The builder mirrors how a tracer observes a thread: calls open
    intervals, returns close them, and closures must match the most
    recently opened interval (LIFO). Complete intervals (e.g. a GC whose
    start and end are both known when it is reported) can be inserted with
    :meth:`add_complete` as long as they nest into the currently open
    interval.
    """

    def __init__(self) -> None:
        self._roots: List[Interval] = []
        self._stack: List[_OpenInterval] = []
        self._last_close_ns: int = 0

    @property
    def open_depth(self) -> int:
        """Number of currently open (unclosed) intervals."""
        return len(self._stack)

    def open(self, kind: IntervalKind, symbol: str, start_ns: int) -> None:
        """Open a new interval at ``start_ns``.

        Raises:
            NestingError: if ``start_ns`` precedes the enclosing
                interval's start or the previous sibling's end.
        """
        if self._stack:
            top = self._stack[-1]
            if start_ns < top.start_ns:
                raise NestingError(
                    f"interval {kind.value}:{symbol} starts at {start_ns}, "
                    f"before its enclosing interval ({top.start_ns})"
                )
            if top.children and start_ns < top.children[-1].end_ns:
                raise NestingError(
                    f"interval {kind.value}:{symbol} starts at {start_ns}, "
                    f"inside the previous sibling"
                )
        elif self._roots and start_ns < self._roots[-1].end_ns:
            raise NestingError(
                f"root interval {kind.value}:{symbol} starts at {start_ns}, "
                f"inside the previous root"
            )
        self._stack.append(_OpenInterval(kind, symbol, start_ns))

    def close(self, end_ns: int) -> Interval:
        """Close the most recently opened interval at ``end_ns``.

        Returns:
            The completed :class:`Interval`.

        Raises:
            NestingError: if no interval is open or ``end_ns`` precedes
                the last nested activity.
        """
        if not self._stack:
            raise NestingError("close without a matching open")
        pending = self._stack.pop()
        if pending.children and end_ns < pending.children[-1].end_ns:
            raise NestingError(
                f"interval {pending.kind.value}:{pending.symbol} closes at "
                f"{end_ns}, before its last child ends"
            )
        interval = Interval(
            pending.kind, pending.symbol, pending.start_ns, end_ns,
            children=pending.children,
        )
        if self._stack:
            self._stack[-1].children.append(interval)
        else:
            self._roots.append(interval)
        return interval

    def add_complete(
        self, kind: IntervalKind, symbol: str, start_ns: int, end_ns: int
    ) -> Interval:
        """Insert an already-complete interval (typically a GC).

        The interval becomes a child of the innermost open interval, or a
        root if nothing is open. It must not overlap previously closed
        siblings.
        """
        self.open(kind, symbol, start_ns)
        return self.close(end_ns)

    def finish(self) -> List[Interval]:
        """Return the completed root intervals.

        Raises:
            NestingError: if intervals are still open.
        """
        if self._stack:
            open_names = ", ".join(
                f"{p.kind.value}:{p.symbol}" for p in self._stack
            )
            raise NestingError(f"unclosed intervals at end of trace: {open_names}")
        return self._roots


class _OpenInterval:
    """Bookkeeping for an interval whose end is not yet known."""

    __slots__ = ("kind", "symbol", "start_ns", "children")

    def __init__(self, kind: IntervalKind, symbol: str, start_ns: int) -> None:
        self.kind = kind
        self.symbol = symbol
        self.start_ns = start_ns
        self.children: List[Interval] = []


def merge_adjacent(
    intervals: Sequence[Interval], gap_ns: int = 0
) -> List[Tuple[int, int]]:
    """Merge interval spans that touch or are within ``gap_ns`` of each other.

    Utility used by time-accounting analyses to avoid double counting
    when summing e.g. total GC time within an episode.

    Args:
        intervals: intervals to merge; need not be sorted.
        gap_ns: two spans closer than this are coalesced.

    Returns:
        Sorted, disjoint (start_ns, end_ns) spans.
    """
    if not intervals:
        return []
    spans = sorted((iv.start_ns, iv.end_ns) for iv in intervals)
    merged = [spans[0]]
    for start, end in spans[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end + gap_ns:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def total_span_ns(intervals: Sequence[Interval]) -> int:
    """Total time covered by ``intervals``, counting overlaps once."""
    return sum(end - start for start, end in merge_adjacent(intervals))
