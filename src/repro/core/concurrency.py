"""Concurrency analysis: runnable threads during episodes.

Section IV-E ("Concurrent Activity") measures, for each call-stack
sample taken during episodes, how many threads were runnable (not
necessarily running). A mean of exactly 1 means only the GUI thread was
runnable; below 1 means the GUI thread itself was sometimes blocked;
above 1 means background threads competed with the GUI thread for the
CPU (Figure 7).
"""

from __future__ import annotations

from typing import Iterable, List


class ConcurrencySummary:
    """Mean number of runnable threads over a population of samples."""

    __slots__ = ("runnable_total", "sample_count")

    def __init__(self, runnable_total: int, sample_count: int) -> None:
        self.runnable_total = runnable_total
        self.sample_count = sample_count

    @property
    def mean_runnable(self) -> float:
        """Average runnable-thread count per sample (Figure 7 x-value)."""
        if self.sample_count == 0:
            return 0.0
        return self.runnable_total / self.sample_count

    def __repr__(self) -> str:
        return (
            f"ConcurrencySummary(mean={self.mean_runnable:.2f}, "
            f"n={self.sample_count})"
        )


def summarize(episodes: Iterable) -> ConcurrencySummary:
    """Compute the mean runnable-thread count over episode samples.

    Args:
        episodes: :class:`~repro.core.episodes.Episode` objects; every
            sampling tick inside each episode contributes one data point.
    """
    runnable_total = 0
    sample_count = 0
    for episode in episodes:
        for sample in episode.samples:
            runnable_total += sample.runnable_count()
            sample_count += 1
    return ConcurrencySummary(runnable_total, sample_count)


def per_episode_means(episodes: Iterable) -> List[float]:
    """Mean runnable-thread count per individual episode.

    Episodes that received no samples (shorter than the sampling period,
    or fully inside a GC blackout) are skipped.
    """
    means = []
    for episode in episodes:
        if not episode.samples:
            continue
        total = sum(sample.runnable_count() for sample in episode.samples)
        means.append(total / len(episode.samples))
    return means
