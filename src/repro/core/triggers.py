"""Trigger classification: input, output, or asynchronous events.

Section IV-C classifies each episode by what triggered it. A pre-order
traversal of the interval tree finds the first "listener", "paint", or
"async" interval:

- a *listener* interval means the episode was triggered by user input,
- a *paint* interval means it was triggered by an output (repaint)
  request,
- an *async* interval means a background thread posted the triggering
  event.

Episodes with no such child (or none long enough to pass the tracer's
3 ms filter) are *unspecified*.

Footnote 3 of the paper describes a quirk of Swing's repaint manager: it
sometimes produces an "async" interval that directly wraps a "paint"
interval even though no background thread is involved. Episodes whose
first trigger interval is such an async-wrapping-paint are reclassified
as output episodes.

Those rules are the **gui** family's vocabulary. Other workload
families (:mod:`repro.core.family`) supply their own kind-to-trigger
mapping and opt out of the repaint-manager reclassification; every
function below accepts an optional ``family`` and defaults to gui, so
the pre-family call sites classify byte-identically.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Sequence

from repro.core.episodes import Episode
from repro.core.intervals import Interval, IntervalKind

_TRIGGER_KINDS = (IntervalKind.LISTENER, IntervalKind.PAINT, IntervalKind.ASYNC)


class Trigger(enum.Enum):
    """What caused an episode to be dispatched (Figure 5)."""

    INPUT = "input"
    OUTPUT = "output"
    ASYNC = "asynchronous"
    UNSPECIFIED = "unspecified"


def _default_family():
    """The gui family (imported lazily — family.py imports this module)."""
    from repro.core.family import GUI

    return GUI


def _first_trigger_interval(episode: Episode, trigger_kinds) -> Interval:
    for node in episode.root.preorder():
        if node.kind in trigger_kinds:
            return node
    return None


def _async_wraps_paint(async_interval: Interval) -> bool:
    """True for the repaint-manager pattern: an async containing a paint."""
    return (
        async_interval.find(
            lambda node: node.kind is IntervalKind.PAINT
            and node is not async_interval
        )
        is not None
    )


def classify_episode(episode: Episode, family=None) -> Trigger:
    """Determine the trigger of one episode (Section IV-C rules).

    ``family`` is an :class:`~repro.core.family.EpisodeFamily` supplying
    the kind-to-trigger mapping; ``None`` means the gui family, whose
    rules are exactly the pre-family behavior.
    """
    if family is None:
        family = _default_family()
    trigger_map = family.trigger_map
    first = _first_trigger_interval(episode, trigger_map)
    if first is None:
        return Trigger.UNSPECIFIED
    trigger = trigger_map[first.kind]
    # ASYNC: apply the repaint-manager reclassification (gui only).
    if (
        trigger is Trigger.ASYNC
        and family.reclassify_async_paint
        and _async_wraps_paint(first)
    ):
        return Trigger.OUTPUT
    return trigger


class TriggerSummary:
    """Episode counts per trigger class for one population of episodes."""

    def __init__(self, counts: Dict[Trigger, int]) -> None:
        self.counts: Dict[Trigger, int] = {
            trigger: counts.get(trigger, 0) for trigger in Trigger
        }

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, trigger: Trigger) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts[trigger] / total

    def percentages(self) -> Dict[Trigger, float]:
        """Percentages per trigger, in Figure 5's bar order."""
        return {
            trigger: 100.0 * self.fraction(trigger) for trigger in Trigger
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{trig.value}={count}" for trig, count in self.counts.items()
        )
        return f"TriggerSummary({parts})"


def summarize(episodes: Iterable[Episode], family=None) -> TriggerSummary:
    """Classify every episode and tally the trigger classes."""
    if family is None:
        family = _default_family()
    counts: Dict[Trigger, int] = {}
    for episode in episodes:
        trigger = classify_episode(episode, family=family)
        counts[trigger] = counts.get(trigger, 0) + 1
    return TriggerSummary(counts)


def episodes_by_trigger(
    episodes: Sequence[Episode], trigger: Trigger, family=None
) -> List[Episode]:
    """The episodes classified as ``trigger``."""
    if family is None:
        family = _default_family()
    return [
        ep for ep in episodes if classify_episode(ep, family=family) is trigger
    ]
