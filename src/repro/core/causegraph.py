"""Per-episode dependency graphs and latency cause analysis.

The characterization axes answer *how much* lag a workload has and what
shape it takes; this module answers *why one run is slower than
another*. Three layers build on each other:

1. **Cause vectors** — every interval of an episode contributes its
   *self time* (duration minus direct children) under a stable label
   ``"<kind>:<symbol>"``. Folding those per-episode vectors over a
   population yields a ``label -> (total self ns, episode count)``
   tally: an exact, integer decomposition of in-episode time by cause.
   GC pauses (``gc:<collector>``) and IO dependencies
   (``iowait:<resource>``) land in the same vocabulary as compute, so
   one tally spans intervals, threads, GC, and IO waits.
2. **Dependency graphs** — :func:`build_graph` materializes one
   episode's interval tree as an explicit :class:`EpisodeCauseGraph`
   whose nodes carry self times and dependency categories;
   :func:`critical_path` walks the heaviest chain from the root,
   :func:`rank_outliers` contrasts the per-episode mean cause vectors
   of outlier episodes against the rest.
3. **Run diffing** — :func:`diff_cause_totals` attributes a latency
   delta between two runs' cause tallies to ranked per-label deltas
   (regressions first). ``LagAlyzer.diff`` and ``repro study diff``
   feed it aggregated ``causes`` rows from the study warehouse.

The tally is exposed to the engine as the ``causes`` analysis
(:mod:`repro.core.analyses`), with a columnar kernel twin
(:func:`repro.core.store.kernels.cause_tally`) that is byte-identical
to the object path here — both iterate episodes in population order and
labels in first-appearance pre-order, so partials merge and pickle
deterministically across worker counts and shard layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.episodes import Episode
from repro.core.intervals import Interval, IntervalKind

#: ``label -> (total self ns, episodes containing the label)``.
CauseTally = Dict[str, Tuple[int, int]]

#: Dependency category per interval kind: how a node's self time blocks
#: the episode. Everything not listed is on-thread compute.
_CATEGORIES = {
    IntervalKind.GC: "gc",
    IntervalKind.IOWAIT: "io",
    IntervalKind.ASYNC: "async",
    IntervalKind.NATIVE: "native",
}


def cause_label(interval: Interval) -> str:
    """The stable cause label of one interval: ``"<kind>:<symbol>"``."""
    return f"{interval.kind.value}:{interval.symbol}"


def episode_cause_items(episode: Episode) -> List[Tuple[str, int]]:
    """``(label, self ns)`` per distinct label of one episode.

    Labels appear in first-appearance pre-order — the order the
    columnar kernel reproduces from the row layout — and self times sum
    exactly to the episode's duration (self time is a partition of the
    subtree's span).
    """
    local: Dict[str, int] = {}
    for node in episode.root.preorder():
        label = cause_label(node)
        local[label] = local.get(label, 0) + node.self_time_ns()
    return list(local.items())


def tally_causes(episodes: Iterable[Episode]) -> CauseTally:
    """Fold per-episode cause vectors over a population.

    The returned dict is in first-appearance order over episodes in
    population order; the episode count of a label counts episodes in
    which the label appears at least once.
    """
    totals: CauseTally = {}
    for episode in episodes:
        for label, self_ns in episode_cause_items(episode):
            total, count = totals.get(label, (0, 0))
            totals[label] = (total + self_ns, count + 1)
    return totals


def merge_cause_tallies(tallies: Sequence[CauseTally]) -> CauseTally:
    """Associative add-merge of tallies, in the given order.

    Merging contiguous shard tallies in shard order (or per-trace
    tallies in trace order) preserves first-appearance label order, so
    merged results are byte-identical to one unsharded pass.
    """
    merged: CauseTally = {}
    for tally in tallies:
        for label, (total, count) in tally.items():
            prev_total, prev_count = merged.get(label, (0, 0))
            merged[label] = (prev_total + total, prev_count + count)
    return merged


@dataclass(frozen=True)
class CauseSummary:
    """The ``causes`` analysis summary: one population's cause tally.

    Attributes:
        entries: ``(label, total self ns, episode count)`` rows in
            first-appearance order — stable across worker counts and
            shard layouts, so summaries pickle deterministically.
    """

    entries: Tuple[Tuple[str, int, int], ...]

    @classmethod
    def from_tally(cls, tally: CauseTally) -> "CauseSummary":
        return cls(
            entries=tuple(
                (label, total, count)
                for label, (total, count) in tally.items()
            )
        )

    def as_tally(self) -> CauseTally:
        return {label: (total, count) for label, total, count in self.entries}

    @property
    def total_ns(self) -> int:
        """Total attributed self time — the population's in-episode ns."""
        return sum(total for _label, total, _count in self.entries)

    def top(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """The ``n`` heaviest causes, by total self time (ties by label)."""
        ranked = sorted(self.entries, key=lambda e: (-e[1], e[0]))
        return ranked[:n]

    def __repr__(self) -> str:
        return (
            f"CauseSummary({len(self.entries)} causes, "
            f"{self.total_ns} ns attributed)"
        )


# ----------------------------------------------------------------------
# Per-episode dependency graphs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CauseNode:
    """One interval of an episode, as a dependency-graph node."""

    index: int
    label: str
    kind: IntervalKind
    symbol: str
    start_ns: int
    end_ns: int
    self_ns: int
    parent: int
    """Index of the parent node, ``-1`` for the episode root."""
    children: Tuple[int, ...]
    category: str
    """``compute``, ``gc``, ``io``, ``async``, or ``native``."""

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class EpisodeCauseGraph:
    """One episode's interval tree as an explicit dependency graph.

    Nodes are in pre-order (node 0 is the episode root); edges are the
    nesting structure, and each node's ``category`` says whether its
    self time was compute on the episode's thread or a dependency the
    thread waited on (GC pause, IO wait, async hand-off, native call).
    """

    episode_index: int
    thread: str
    nodes: Tuple[CauseNode, ...]

    @property
    def root(self) -> CauseNode:
        return self.nodes[0]

    @property
    def duration_ns(self) -> int:
        return self.root.duration_ns

    def blocked_ns(self) -> int:
        """Self time spent in dependency (non-compute) nodes."""
        return sum(
            node.self_ns for node in self.nodes if node.category != "compute"
        )


def build_graph(episode: Episode) -> EpisodeCauseGraph:
    """Materialize one episode's dependency graph."""
    nodes: List[CauseNode] = []
    children: Dict[int, List[int]] = {}
    stack: List[Tuple[Interval, int]] = [(episode.root, -1)]
    order: List[Tuple[Interval, int]] = []
    while stack:
        interval, parent = stack.pop()
        index = len(order)
        order.append((interval, parent))
        children[index] = []
        if parent >= 0:
            children[parent].append(index)
        for child in reversed(interval.children):
            stack.append((child, index))
    for index, (interval, parent) in enumerate(order):
        nodes.append(
            CauseNode(
                index=index,
                label=cause_label(interval),
                kind=interval.kind,
                symbol=interval.symbol,
                start_ns=interval.start_ns,
                end_ns=interval.end_ns,
                self_ns=interval.self_time_ns(),
                parent=parent,
                children=tuple(children[index]),
                category=_CATEGORIES.get(interval.kind, "compute"),
            )
        )
    return EpisodeCauseGraph(
        episode_index=episode.index,
        thread=episode.gui_thread,
        nodes=tuple(nodes),
    )


def critical_path(graph: EpisodeCauseGraph) -> Tuple[CauseNode, ...]:
    """The heaviest root-to-leaf chain of the dependency graph.

    From each node, descend into the child with the largest duration
    (ties break toward the earlier child, which is deterministic because
    pre-order fixes child order). The returned chain starts at the
    episode root; summing the chain's self times plus the leaf's
    duration bounds the episode's latency floor under infinite
    parallelism of everything off the chain.
    """
    path: List[CauseNode] = []
    node = graph.root
    while True:
        path.append(node)
        if not node.children:
            return tuple(path)
        node = max(
            (graph.nodes[child] for child in node.children),
            key=lambda child: (child.duration_ns, -child.start_ns),
        )


def rank_outliers(
    episodes: Sequence[Episode], threshold_ms: float
) -> List[Tuple[str, float]]:
    """Rank causes by how much more they cost in outlier episodes.

    Episodes at or above ``threshold_ms`` are outliers; the rest are the
    baseline. For each label, the score is the difference of per-episode
    mean self times (outlier mean minus baseline mean, in ns). Positive
    scores mark causes concentrated in the slow tail. Ranked by
    ``(-score, label)``, so the ranking is deterministic.
    """
    outliers = [ep for ep in episodes if ep.is_perceptible(threshold_ms)]
    baseline = [ep for ep in episodes if not ep.is_perceptible(threshold_ms)]
    out_tally = tally_causes(outliers)
    base_tally = tally_causes(baseline)
    scores: Dict[str, float] = {}
    for label, (total, _count) in out_tally.items():
        scores[label] = total / len(outliers)
    for label, (total, _count) in base_tally.items():
        scores[label] = scores.get(label, 0.0) - total / len(baseline)
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))


# ----------------------------------------------------------------------
# Run diffing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CauseDelta:
    """One label's contribution to a latency delta between two runs."""

    label: str
    delta_ns: int
    """``b - a`` total self time; positive means run B is slower here."""
    a_total_ns: int
    b_total_ns: int
    a_episodes: int
    b_episodes: int


@dataclass(frozen=True)
class DiffReport:
    """A latency delta between two runs, attributed to ranked causes."""

    run_a: str
    run_b: str
    total_delta_ns: int
    """Sum of all per-label deltas — the total in-episode ns shift."""
    deltas: Tuple[CauseDelta, ...]
    """Every label of either run, ranked regressions first
    (``(-delta_ns, label)`` order)."""

    def regressions(self, n: int = 10) -> List[CauseDelta]:
        """The ``n`` heaviest regressions (positive deltas only)."""
        return [d for d in self.deltas if d.delta_ns > 0][:n]

    def improvements(self, n: int = 10) -> List[CauseDelta]:
        """The ``n`` heaviest improvements (negative deltas only)."""
        improved = [d for d in self.deltas if d.delta_ns < 0]
        improved.sort(key=lambda d: (d.delta_ns, d.label))
        return improved[:n]

    def __repr__(self) -> str:
        return (
            f"DiffReport({self.run_a!r} -> {self.run_b!r}, "
            f"{self.total_delta_ns} ns, {len(self.deltas)} causes)"
        )


def diff_cause_totals(
    tally_a: CauseTally, tally_b: CauseTally, run_a: str, run_b: str
) -> DiffReport:
    """Attribute the latency delta from run A to run B to causes.

    Labels missing from one run contribute their full total from the
    other (a cause that appeared, or vanished, is itself the delta).
    """
    labels = sorted(set(tally_a) | set(tally_b))
    deltas = []
    for label in labels:
        a_total, a_count = tally_a.get(label, (0, 0))
        b_total, b_count = tally_b.get(label, (0, 0))
        deltas.append(
            CauseDelta(
                label=label,
                delta_ns=b_total - a_total,
                a_total_ns=a_total,
                b_total_ns=b_total,
                a_episodes=a_count,
                b_episodes=b_count,
            )
        )
    deltas.sort(key=lambda d: (-d.delta_ns, d.label))
    return DiffReport(
        run_a=run_a,
        run_b=run_b,
        total_delta_ns=sum(d.delta_ns for d in deltas),
        deltas=tuple(deltas),
    )
