"""Pattern drill-down: why is *this* pattern slow?

Every per-application finding in the paper's Section IV ends the same
way: "a look at the call stack samples during these episodes shows..."
— Euclide's sleeps resolve to Apple's combo-box blink, jEdit's waits to
its modal dialogs, JHotDraw's time to its bezier-outline code. This
module packages that drill-down: given a pattern (or any episode
population), it reports the hottest sampled methods, the location and
cause summaries, and the GC burden — the facts a developer needs to
name the culprit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core import location as location_mod
from repro.core import threadstates as threadstates_mod
from repro.core.episodes import Episode
from repro.core.intervals import IntervalKind
from repro.core.location import LocationSummary
from repro.core.patterns import Pattern
from repro.core.samples import DEFAULT_LIBRARY_PREFIXES, ThreadState
from repro.core.threadstates import ThreadStateSummary


@dataclass(frozen=True)
class HotMethod:
    """One method ranked by how often it was executing when sampled."""

    qualified_name: str
    samples: int
    share: float
    """Fraction of the population's GUI-thread samples."""
    state: str
    """Dominant thread state when sampled here (runnable/sleeping/...)."""
    is_library: bool

    def describe(self) -> str:
        where = "library" if self.is_library else "app"
        return (
            f"{100 * self.share:5.1f}%  {self.qualified_name}  "
            f"[{where}, mostly {self.state}]"
        )


@dataclass
class DrilldownReport:
    """Everything the drill-down gathered for one episode population."""

    episode_count: int
    total_lag_ms: float
    hot_methods: List[HotMethod]
    location: LocationSummary
    causes: ThreadStateSummary
    gc_episode_count: int
    gc_time_ms: float

    def headline(self) -> str:
        """The one-line diagnosis a developer reads first."""
        if not self.hot_methods:
            if self.gc_time_ms > 0:
                return (
                    f"no samples — time dominated by garbage collection "
                    f"({self.gc_time_ms:.0f} ms across "
                    f"{self.gc_episode_count} episodes)"
                )
            return "no samples available for this population"
        top = self.hot_methods[0]
        parts = [
            f"{100 * top.share:.0f}% of sampled time in "
            f"{top.qualified_name}"
        ]
        if top.state != ThreadState.RUNNABLE.value:
            parts.append(f"mostly {top.state}")
        if self.location.gc_fraction > 0.2:
            parts.append(
                f"{100 * self.location.gc_fraction:.0f}% of episode time "
                f"in GC"
            )
        return "; ".join(parts)


def drill_down(
    episodes: Sequence[Episode],
    top: int = 10,
    library_prefixes: Sequence[str] = DEFAULT_LIBRARY_PREFIXES,
) -> DrilldownReport:
    """Aggregate the drill-down facts for ``episodes``.

    Hot methods are ranked by GUI-thread sample count at the executing
    (leaf) frame; each carries its dominant thread state so a developer
    immediately sees "this is a sleep", not just "this is hot".
    """
    method_counts: Dict[Tuple[str, bool], int] = {}
    method_states: Dict[Tuple[str, bool], Dict[ThreadState, int]] = {}
    total_samples = 0
    gc_episodes = 0
    gc_ms = 0.0

    for episode in episodes:
        gcs = episode.intervals_of_kind(IntervalKind.GC)
        if gcs:
            gc_episodes += 1
            gc_ms += sum(gc.duration_ms for gc in gcs)
        for entry in episode.gui_samples():
            leaf = entry.stack.leaf
            if leaf is None:
                continue
            total_samples += 1
            key = (leaf.qualified_name, leaf.is_library(library_prefixes))
            method_counts[key] = method_counts.get(key, 0) + 1
            states = method_states.setdefault(key, {})
            states[entry.state] = states.get(entry.state, 0) + 1

    ranked = sorted(
        method_counts.items(), key=lambda item: item[1], reverse=True
    )
    hot = []
    for (name, is_library), count in ranked[:top]:
        states = method_states[(name, is_library)]
        dominant = max(states, key=states.get)
        hot.append(
            HotMethod(
                qualified_name=name,
                samples=count,
                share=count / total_samples if total_samples else 0.0,
                state=dominant.value,
                is_library=is_library,
            )
        )

    return DrilldownReport(
        episode_count=len(episodes),
        total_lag_ms=sum(ep.duration_ms for ep in episodes),
        hot_methods=hot,
        location=location_mod.summarize(episodes, library_prefixes),
        causes=threadstates_mod.summarize(episodes),
        gc_episode_count=gc_episodes,
        gc_time_ms=gc_ms,
    )


def drill_down_pattern(pattern: Pattern, top: int = 10) -> DrilldownReport:
    """Drill into one pattern's episodes."""
    return drill_down(pattern.episodes, top=top)


def format_drilldown(report: DrilldownReport) -> str:
    """A compact text rendering for terminals and reports."""
    lines = [
        f"{report.episode_count} episodes, "
        f"{report.total_lag_ms:.0f} ms total lag",
        f"diagnosis: {report.headline()}",
    ]
    if report.hot_methods:
        lines.append("hot methods (by GUI-thread samples):")
        for method in report.hot_methods:
            lines.append(f"  {method.describe()}")
    pct = report.location.percentages()
    lines.append(
        f"location: app {pct['Application']:.0f}% / "
        f"lib {pct['RT Library']:.0f}% / gc {pct['GC']:.0f}% / "
        f"native {pct['Native']:.0f}%"
    )
    causes = report.causes.percentages()
    lines.append(
        f"causes: blocked {causes[ThreadState.BLOCKED]:.0f}% / "
        f"waiting {causes[ThreadState.WAITING]:.0f}% / "
        f"sleeping {causes[ThreadState.SLEEPING]:.0f}%"
    )
    if report.gc_episode_count:
        lines.append(
            f"GC: {report.gc_episode_count}/{report.episode_count} episodes "
            f"contain a collection ({report.gc_time_ms:.0f} ms)"
        )
    return "\n".join(lines)
