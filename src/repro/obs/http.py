"""The live health surface: a tiny stdlib HTTP server on the daemon.

:class:`HealthServer` wraps ``http.server.ThreadingHTTPServer`` in a
background thread and answers three endpoints, all computed from
callables the host process supplies (no state of its own, nothing to
go stale):

- ``GET /metrics`` — Prometheus text via the existing
  :func:`~repro.obs.export.metrics_to_prometheus` exporter;
- ``GET /healthz`` — the configured :class:`~repro.obs.slo.SloPolicy`
  evaluated against live stats; HTTP 200 with a JSON report when every
  threshold holds, 503 with the same report (violations included) when
  any is breached — load-balancer-ready semantics;
- ``GET /sessions`` — per-session JSON (accepted/flushed/pending/
  nacks), the fleet operator's ``who is talking to me right now``.

The server thread is a daemon and every handler is wrapped: an
exception in a probe endpoint returns a 500 to the prober and touches
nothing in the ingest path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.obs.slo import DEFAULT_INGEST_SLO, SloPolicy

StatsFn = Callable[[], Mapping[str, Any]]
MetricsFn = Callable[[], str]
SessionsFn = Callable[[], Any]


class _HealthHandler(BaseHTTPRequestHandler):
    server: "_HealthHTTPServer"

    # Probes come every few seconds; stay quiet on stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/metrics":
                self._send(200, self.server.health.metrics_text(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                status, report = self.server.health.healthz()
                self._send_json(status, report)
            elif path == "/sessions":
                self._send_json(200, self.server.health.sessions_json())
            elif path == "/":
                self._send_json(200, {
                    "endpoints": ["/healthz", "/metrics", "/sessions"],
                })
            else:
                self._send_json(404, {"error": f"unknown path {path}"})
        except Exception as error:  # noqa: BLE001 - probe must not kill us
            try:
                self._send_json(500, {"error": str(error)})
            except OSError:
                pass  # prober went away mid-answer

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: Any) -> None:
        self._send(
            status,
            json.dumps(body, indent=2, sort_keys=True) + "\n",
            "application/json",
        )


class _HealthHTTPServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True
    health: "HealthServer"


class HealthServer:
    """Serves ``/metrics``, ``/healthz``, and ``/sessions`` for a daemon.

    Args:
        stats_fn: live stats mapping the SLO policy is evaluated
            against (e.g. :func:`repro.obs.slo.ingest_stats_for_slo`
            output).
        metrics_fn: Prometheus text body for ``/metrics``.
        sessions_fn: JSON-able payload for ``/sessions``.
        slo: policy behind ``/healthz``; defaults to
            :data:`~repro.obs.slo.DEFAULT_INGEST_SLO`.
        host/port: bind address; port 0 picks a free port.
    """

    def __init__(
        self,
        stats_fn: StatsFn,
        metrics_fn: Optional[MetricsFn] = None,
        sessions_fn: Optional[SessionsFn] = None,
        slo: Optional[SloPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.stats_fn = stats_fn
        self.metrics_fn = metrics_fn or (lambda: "")
        self.sessions_fn = sessions_fn or (lambda: [])
        self.slo = DEFAULT_INGEST_SLO if slo is None else slo
        self._server = _HealthHTTPServer((host, port), _HealthHandler)
        self._server.health = self
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    def start(self) -> "HealthServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="obs-health",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HealthServer":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Endpoint bodies (also callable directly, e.g. from tests)
    # ------------------------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """``(http_status, report_json)`` for the current stats."""
        stats = dict(self.stats_fn())
        report = self.slo.evaluate(stats)
        body = report.as_dict()
        body["stats"] = stats
        return (200 if report.healthy else 503), body

    def metrics_text(self) -> str:
        return self.metrics_fn()

    def sessions_json(self) -> Any:
        return self.sessions_fn()

    def __repr__(self) -> str:
        host, port = self.address
        return f"HealthServer({host}:{port}, policy={self.slo.name!r})"
