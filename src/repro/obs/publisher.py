"""The telemetry publisher: periodic Observer deltas into the warehouse.

A :class:`TelemetryPublisher` is a background thread that, every
``interval_s``, diffs the observer's current state against the last
flush — counter increments, gauge values, per-cell histogram deltas,
and rollups of the spans that finished since — and records the delta
via :meth:`Warehouse.record_delta`.

Telemetry is **best-effort by construction**:

- a failed flush (the warehouse file deleted mid-run, disk full, an
  injected ``obs.publish`` fault) is *counted* in the
  ``obs.publisher.lost_flushes`` counter and retried whole next cycle
  — the un-flushed delta stays in the baseline diff, so nothing is
  dropped unless the run ends while the warehouse stays unreachable;
- no exception ever escapes the publisher thread into the host
  process; the ingest daemon keeps serving with telemetry dark.

The ``obs.publish`` fault site makes that promise testable: a chaos
plan can fail every flush of a run and the ingest path must not notice.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Mapping, Optional

from repro.faults import runtime as faults_runtime
from repro.obs.observer import Observer
from repro.obs.warehouse import Warehouse

#: Counter bumped once per failed warehouse flush.
LOST_FLUSHES = "obs.publisher.lost_flushes"
#: Counter bumped once per successful warehouse flush.
FLUSHES = "obs.publisher.flushes"


def snapshot_delta(
    current: Mapping[str, Any], previous: Mapping[str, Any]
) -> Dict[str, Any]:
    """The metrics delta between two ``MetricsRegistry.as_dict`` states.

    Counters and histogram cells subtract (never below zero — a
    restarted registry just re-publishes from scratch); gauges report
    their current value.
    """
    counters: Dict[str, float] = {}
    for name, value in current.get("counters", {}).items():
        change = value - previous.get("counters", {}).get(name, 0)
        if change > 0:
            counters[name] = change
    gauges = dict(current.get("gauges", {}))
    histograms: Dict[str, Any] = {}
    for name, raw in current.get("histograms", {}).items():
        old = previous.get("histograms", {}).get(name)
        counts = [int(cell) for cell in raw.get("counts", ())]
        total = float(raw.get("sum", 0.0))
        count = int(raw.get("count", 0))
        if old is not None and list(old.get("buckets", ())) == list(
            raw.get("buckets", ())
        ):
            old_counts = [int(cell) for cell in old.get("counts", ())]
            if len(old_counts) == len(counts):
                counts = [
                    max(0, a - b) for a, b in zip(counts, old_counts)
                ]
                total = max(0.0, total - float(old.get("sum", 0.0)))
                count = max(0, count - int(old.get("count", 0)))
        if count > 0:
            histograms[name] = {
                "buckets": list(raw.get("buckets", ())),
                "counts": counts,
                "sum": total,
                "count": count,
            }
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


class TelemetryPublisher:
    """Flushes one observer's telemetry into a warehouse periodically.

    Args:
        observer: the observer whose metrics and spans are published.
        warehouse: destination store.
        run_id: the warehouse partition key for this process's run.
        interval_s: flush cadence; :meth:`stop` always flushes once
            more, so short-lived runs publish even with a long interval.
        host: recorded with the run; defaults to this machine's
            hostname.
    """

    def __init__(
        self,
        observer: Observer,
        warehouse: Warehouse,
        run_id: str,
        interval_s: float = 2.0,
        host: Optional[str] = None,
    ) -> None:
        self.observer = observer
        self.warehouse = warehouse
        self.run_id = run_id
        self.interval_s = max(0.05, float(interval_s))
        self.host = socket.gethostname() if host is None else host
        self.flushes = 0
        self.lost_flushes = 0
        self._previous: Dict[str, Any] = {}
        self._spans_seen = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "TelemetryPublisher":
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"obs-publisher-{self.run_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop the thread and flush one final delta."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        self.publish_once()

    def __enter__(self) -> "TelemetryPublisher":
        return self.start()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.stop()
        return False

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.interval_s):
            self.publish_once()

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish_once(self) -> bool:
        """Diff, flush, advance the baseline; True when the flush stuck.

        Never raises: a failed flush bumps :data:`LOST_FLUSHES` (and
        :attr:`lost_flushes`) and leaves the baseline unchanged, so the
        same delta rides along with the next attempt.
        """
        with self._lock:
            current = self.observer.metrics.as_dict()
            spans = self.observer.spans()
            new_spans = spans[self._spans_seen:]
            delta = snapshot_delta(current, self._previous)
            delta["spans"] = self._rollup(new_spans)
            if not (
                delta["counters"] or delta["gauges"]
                or delta["histograms"] or delta["spans"]
            ):
                return True  # nothing to say is a successful flush
            try:
                faults_runtime.check(
                    "obs.publish",
                    key=self.run_id,
                    attempt=self.lost_flushes,
                )
                self.warehouse.record_delta(
                    self.run_id, delta, host=self.host
                )
            except Exception:
                # Telemetry loss is counted, never fatal; the baseline
                # stays put so the delta retries next cycle.
                self.lost_flushes += 1
                self.observer.metrics.inc(LOST_FLUSHES)
                return False
            self.flushes += 1
            self.observer.metrics.inc(FLUSHES)
            self._previous = current
            self._spans_seen = len(spans)
            return True

    @staticmethod
    def _rollup(spans: Any) -> Dict[str, Dict[str, float]]:
        """Aggregate finished spans by name: count / total_ms / max_ms."""
        rollup: Dict[str, Dict[str, float]] = {}
        for span in spans:
            entry = rollup.get(span.name)
            duration = span.duration_ms
            if entry is None:
                rollup[span.name] = {
                    "count": 1,
                    "total_ms": duration,
                    "max_ms": duration,
                }
            else:
                entry["count"] += 1
                entry["total_ms"] += duration
                entry["max_ms"] = max(entry["max_ms"], duration)
        return rollup

    def __repr__(self) -> str:
        return (
            f"TelemetryPublisher({self.run_id!r} -> {self.warehouse.path},"
            f" {self.flushes} flushes, {self.lost_flushes} lost)"
        )
