"""Cross-process trace context: propagate span parentage over the wire.

Spans nest automatically inside one process (a thread-local stack) and
merge across engine workers (snapshots re-parented on ``absorb``), but
the live ingest path crosses a *protocol* boundary: the client's send
span and the daemon's frame/flush spans live in different processes
connected only by frames. A :class:`TraceContext` is the piece of span
identity small enough to ride inside a frame — a trace id, the sending
span's id, and a sampling decision — so the daemon's spans can adopt
the client's span as their parent and ``Observer.absorb`` renders one
end-to-end send→ack→flush tree per batch.

Sampling is **deterministic and seed-derived** (no RNG): whether a
session's batches carry context is a pure function of
``(seed, session)``, exactly like fault-plan decisions, so two runs of
the same fleet sample the same sessions and the overhead bound is
reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.obs import runtime as obs_runtime
from repro.obs.spans import NULL_SPAN, SpanContext, next_span_id

#: Payload key the context rides under in HELLO / BATCH frames.
CONTEXT_KEY = "trace"


def hash_fraction(seed: int, *parts: Any) -> float:
    """A deterministic uniform draw in ``[0, 1)`` named by its parts.

    Same contract as ``repro.faults.plan.hash_unit`` (kept separate so
    ``repro.obs`` stays dependency-free of the faults package): the
    same ``(seed, *parts)`` always produce the same value, in any
    process, in any order.
    """
    text = "/".join([str(seed), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def sample_decision(seed: int, key: str, rate: float) -> bool:
    """Deterministically decide whether ``key`` is sampled at ``rate``."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return hash_fraction(seed, "obs.sample", key) < rate


def trace_id_for(key: str, seed: int = 0) -> str:
    """The deterministic trace id for a propagation key (session id)."""
    digest = hashlib.sha256(f"{seed}/{key}".encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one in-flight operation.

    ``trace_id`` names the whole logical flow (one ingest session),
    ``span_id`` the specific span the receiver should adopt as parent,
    and ``sampled`` whether this flow records spans at all (an
    unsampled context is still minted — the decision must travel so
    both ends agree).
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def mint(
        cls, key: str, seed: int = 0, sample_rate: float = 1.0
    ) -> "TraceContext":
        """A fresh root context for ``key`` (deterministic sampling)."""
        return cls(
            trace_id=trace_id_for(key, seed),
            span_id=next_span_id(),
            sampled=sample_decision(seed, key, sample_rate),
        )

    def child(self) -> "TraceContext":
        """A context for one operation under this flow (new span id)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=next_span_id(),
            sampled=self.sampled,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The wire form (plain JSON-able dict, sorted-stable keys)."""
        return {
            "sampled": self.sampled,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(
        cls, raw: Optional[Mapping[str, Any]]
    ) -> Optional["TraceContext"]:
        """Rebuild a context from its wire form; ``None`` passes through.

        A malformed mapping (telemetry, not payload) degrades to
        ``None`` rather than raising — propagation must never make a
        decodable batch undecodable.
        """
        if raw is None:
            return None
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(raw.get("sampled", True)),
        )


def carrier_span(
    name: str, context: Optional[TraceContext], **attrs: Any
) -> Any:
    """A span that *is* ``context`` on the sending side.

    The returned span adopts ``context.span_id`` as its own id, so
    receiver-side spans parented on the propagated id attach to a span
    that really exists once snapshots merge. No-op when observation is
    disabled or the context is unsampled.
    """
    observer = obs_runtime.current()
    if observer is None or context is None or not context.sampled:
        return NULL_SPAN
    span_context: SpanContext = observer.span(name, **attrs)
    span_context.span.span_id = context.span_id
    span_context.span.attrs["trace_id"] = context.trace_id
    return span_context


def adopted_span(
    name: str, context: Optional[TraceContext], **attrs: Any
) -> Any:
    """A span parented under a propagated context on the receiving side.

    No-op when observation is disabled or no sampled context arrived —
    un-propagated traffic (an old client, an unsampled session) costs
    the receiver one branch, not a span.
    """
    observer = obs_runtime.current()
    if observer is None or context is None or not context.sampled:
        return NULL_SPAN
    span_context: SpanContext = observer.span(
        name, parent_id=context.span_id, **attrs
    )
    span_context.span.attrs["trace_id"] = context.trace_id
    return span_context
