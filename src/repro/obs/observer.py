"""The :class:`Observer`: one object tying spans, metrics, and
profiling together for a run.

Construct one, pass it to ``run_study(obs=...)`` / ``LagAlyzer(obs=...)``
or install it ambiently (:func:`repro.obs.runtime.install`), and every
instrumented layer of the pipeline reports into it. Afterwards
:meth:`save` writes the run's observability bundle to a directory::

    out/
      spans.jsonl    one span per line (tracing)
      metrics.json   counters / gauges / histograms
      profile.json   aggregated cProfile hotspots (only with profile=True)

which ``lagalyzer obs report`` and ``lagalyzer obs export`` consume.

Cross-process flow: a worker builds its own Observer, runs its task,
and returns :meth:`snapshot` (a picklable dict) alongside the result;
the dispatcher calls :meth:`absorb`, which re-parents the worker's root
spans under the dispatching span and merges metrics and profiles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import ProfileAggregator
from repro.obs.spans import (
    NULL_SPAN,
    Span,
    SpanCollector,
    SpanContext,
    span_depth,
)

SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
PROFILE_FILE = "profile.json"


class Observer:
    """Collects this process's spans, metrics, and (optionally) profiles.

    Args:
        profile: also wrap engine map calls in ``cProfile`` and
            aggregate hotspots (measurable overhead; off by default).
        profile_top_n: hotspot rows kept per analysis.
    """

    def __init__(self, profile: bool = False, profile_top_n: int = 15) -> None:
        self.collector = SpanCollector()
        self.metrics = MetricsRegistry()
        self.profiler: Optional[ProfileAggregator] = (
            ProfileAggregator(top_n=profile_top_n) if profile else None
        )

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def span(
        self,
        name: str,
        parent_id: Optional[str] = None,
        metric: Optional[str] = None,
        **attrs: Any,
    ) -> SpanContext:
        """Open a span; nests under the calling thread's current span.

        ``metric`` additionally records the span's duration into the
        histogram of that name on exit.
        """
        return SpanContext(
            self.collector,
            name,
            parent_id,
            attrs,
            metrics=self.metrics,
            metric=metric,
        )

    def current_span_id(self) -> Optional[str]:
        span = self.collector.current()
        return span.span_id if span is not None else None

    def spans(self) -> List[Span]:
        return self.collector.finished()

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------

    def profiled(self, key: str) -> Any:
        """cProfile context for ``key`` (no-op unless profiling is on)."""
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.profiled(key)

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything collected so far, as one picklable dict."""
        return {
            "spans": [span.to_dict() for span in self.collector.finished()],
            "metrics": self.metrics.as_dict(),
            "profile": self.profiler.as_dict() if self.profiler else None,
        }

    def absorb(
        self,
        snapshot: Optional[Mapping[str, Any]],
        parent_id: Optional[str] = None,
    ) -> None:
        """Merge a worker's :meth:`snapshot` into this observer.

        Spans that were roots in the worker (no parent) are re-parented
        under ``parent_id`` — typically the span that dispatched the
        task — so the merged trace stays one connected tree. Accepts
        None as a no-op so dispatchers can absorb unconditionally.
        """
        if snapshot is None:
            return
        spans = [Span.from_dict(raw) for raw in snapshot.get("spans", [])]
        if parent_id is not None:
            for span in spans:
                if span.parent_id is None:
                    span.parent_id = parent_id
        self.collector.extend(spans)
        metrics = snapshot.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        profile = snapshot.get("profile")
        if profile:
            if self.profiler is None:
                self.profiler = ProfileAggregator()
            self.profiler.merge(profile)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the observability bundle; returns the directory."""
        from repro.obs.export import spans_to_jsonl

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / SPANS_FILE).write_text(
            spans_to_jsonl(self.collector.finished()), encoding="utf-8"
        )
        (directory / METRICS_FILE).write_text(
            json.dumps(self.metrics.as_dict(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        if self.profiler is not None:
            (directory / PROFILE_FILE).write_text(
                json.dumps(self.profiler.as_dict(), indent=2, sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
        return directory

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary_line(self) -> str:
        """The end-of-run one-liner the CLI prints after an observed run."""
        spans = self.collector.finished()
        hits = self.metrics.counter_value("cache.hits")
        misses = self.metrics.counter_value("cache.misses")
        probes = hits + misses
        rate = f"{100.0 * hits / probes:.1f}%" if probes else "n/a"
        parsed = self.metrics.counter_value("lila.traces_parsed")
        write_errors = self.metrics.counter_value("cache.write_errors")
        roots = [span for span in spans if span.parent_id is None]
        slowest = max(roots or spans, key=lambda s: s.duration_ns, default=None)
        head = (
            f"[obs] spans={len(spans)} depth={span_depth(spans)} "
            f"cache={hits}/{probes} hits ({rate})"
        )
        if write_errors:
            head += f" write_errors={write_errors}"
        head += f" traces_parsed={parsed}"
        if slowest is not None:
            head += f" slowest={slowest.name}:{slowest.duration_ms:.0f}ms"
        return head


def load_bundle(directory: Union[str, Path]) -> Dict[str, Any]:
    """Read a saved bundle back: ``{"spans": [Span], "metrics": dict,
    "profile": dict or None}``.

    Raises:
        FileNotFoundError: when the directory holds no bundle.
    """
    from repro.obs.export import spans_from_jsonl

    directory = Path(directory)
    spans_path = directory / SPANS_FILE
    metrics_path = directory / METRICS_FILE
    if not spans_path.is_file() and not metrics_path.is_file():
        raise FileNotFoundError(
            f"{directory}: no observability bundle "
            f"({SPANS_FILE}/{METRICS_FILE} missing) — run with --obs first"
        )
    spans = (
        spans_from_jsonl(spans_path.read_text(encoding="utf-8"))
        if spans_path.is_file()
        else []
    )
    metrics = (
        json.loads(metrics_path.read_text(encoding="utf-8"))
        if metrics_path.is_file()
        else {}
    )
    profile_path = directory / PROFILE_FILE
    profile = (
        json.loads(profile_path.read_text(encoding="utf-8"))
        if profile_path.is_file()
        else None
    )
    return {"spans": spans, "metrics": metrics, "profile": profile}
