"""Process-safe counters, gauges, and fixed-bucket histograms.

The registry is the metrics pillar of :mod:`repro.obs`: cheap to
update, picklable as a plain dict snapshot, and *mergeable* — worker
processes ship their registry snapshot back with their results and the
dispatching process folds it in. Merging is associative, commutative,
and deterministic (counters and histograms add; gauges keep the
maximum), so the final numbers are identical no matter how the work was
scheduled or in which order workers finished.

Exports: :meth:`MetricsRegistry.as_dict` (JSON) and
:func:`repro.obs.export.metrics_to_prometheus` (Prometheus text).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: Default latency buckets, in milliseconds (upper bounds; +Inf implied).
DEFAULT_MS_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; merges keep the maximum observed."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram (bucket bounds are upper bounds, +Inf last)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_MS_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    All mutation goes through one lock, so threads in one process share
    a registry safely; cross-process accumulation goes through
    :meth:`snapshot` + :meth:`merge` instead of shared memory.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_MS_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    # ------------------------------------------------------------------
    # Convenience mutators
    # ------------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> None:
        self.histogram(name, buckets).observe(value)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            instrument = self._counters.get(name)
            return instrument.value if instrument else 0

    def as_dict(self) -> Dict[str, Any]:
        """A picklable / JSON-serializable snapshot (sorted names)."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name].value
                    for name in sorted(self._gauges)
                },
                "histograms": {
                    name: {
                        "buckets": list(hist.buckets),
                        "counts": list(hist.counts),
                        "sum": hist.total,
                        "count": hist.count,
                    }
                    for name, hist in sorted(self._histograms.items())
                },
            }

    snapshot = as_dict

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this one.

        Counters and histogram cells add; gauges keep the maximum. The
        operation is associative and commutative, so any merge order
        over any partition of the work produces the same registry.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(float(value))
        for name, raw in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, raw.get("buckets", DEFAULT_MS_BUCKETS))
            counts = raw.get("counts", [])
            if tuple(raw.get("buckets", ())) != hist.buckets or len(
                counts
            ) != len(hist.counts):
                # Bucket layouts disagree: fold the foreign histogram's
                # mass into this one's shape via its mean (lossy but
                # never silently dropped).
                count = int(raw.get("count", 0))
                if count:
                    mean = float(raw.get("sum", 0.0)) / count
                    for _ in range(count):
                        hist.observe(mean)
                continue
            for i, cell in enumerate(counts):
                hist.counts[i] += int(cell)
            hist.total += float(raw.get("sum", 0.0))
            hist.count += int(raw.get("count", 0))

    @classmethod
    def from_dict(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry
