"""Declarative SLO thresholds and their evaluation.

An :class:`SloPolicy` is a named set of :class:`SloThreshold` rules,
each bounding one observable of the live system — a gauge ("queue depth
stays under 1024"), a counter ("zero analyzer errors"), or a derived
stat. Evaluating a policy against a stats mapping yields an
:class:`SloReport`: per-rule verdicts plus one overall ``healthy`` bit,
which is exactly what ``/healthz`` turns into its 200-vs-503 answer and
``repro obs slo check`` into its exit code.

Policies are plain data (JSON round-trippable) so a deployment can ship
its own thresholds next to its fault plans; :data:`DEFAULT_INGEST_SLO`
is the daemon's built-in posture.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.core.errors import LagAlyzerError


class SloError(LagAlyzerError):
    """An SLO policy is malformed."""


_OPS = ("<=", ">=")


@dataclass(frozen=True)
class SloThreshold:
    """One bound on one stat.

    Args:
        stat: key looked up in the stats mapping (missing keys evaluate
            against 0, so a threshold on a counter that never fired
            passes rather than errors).
        op: ``"<="`` (an upper bound — queue depths, loss counters) or
            ``">="`` (a lower bound — throughput floors).
        limit: the bound itself.
        description: one line for reports; defaults to the rule text.
    """

    stat: str
    op: str
    limit: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.stat:
            raise SloError("threshold needs a non-empty 'stat'")
        if self.op not in _OPS:
            raise SloError(
                f"threshold {self.stat!r}: op must be one of "
                f"{', '.join(_OPS)}, got {self.op!r}"
            )
        if not self.description:
            object.__setattr__(
                self,
                "description",
                f"{self.stat} {self.op} {self.limit:g}",
            )

    def check(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.limit
        return value >= self.limit

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stat": self.stat,
            "op": self.op,
            "limit": self.limit,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SloThreshold":
        if not isinstance(raw, Mapping):
            raise SloError(f"threshold must be an object, got {raw!r}")
        unknown = set(raw) - {"stat", "op", "limit", "description"}
        if unknown:
            raise SloError(
                f"threshold has unknown field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        if "stat" not in raw or "limit" not in raw:
            raise SloError("threshold needs 'stat' and 'limit'")
        return cls(
            stat=str(raw["stat"]),
            op=str(raw.get("op", "<=")),
            limit=float(raw["limit"]),
            description=str(raw.get("description", "")),
        )


@dataclass(frozen=True)
class SloPolicy:
    """A named set of thresholds. JSON round-trippable."""

    name: str = "default"
    thresholds: Tuple[SloThreshold, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "thresholds", tuple(self.thresholds))

    def evaluate(self, stats: Mapping[str, Any]) -> "SloReport":
        """Check every threshold against ``stats`` (missing stats = 0)."""
        results = []
        for threshold in self.thresholds:
            value = float(stats.get(threshold.stat, 0) or 0)
            results.append(
                {
                    "stat": threshold.stat,
                    "description": threshold.description,
                    "value": value,
                    "limit": threshold.limit,
                    "op": threshold.op,
                    "ok": threshold.check(value),
                }
            )
        return SloReport(policy=self.name, results=tuple(results))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "thresholds": [t.as_dict() for t in self.thresholds],
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SloPolicy":
        if not isinstance(raw, Mapping):
            raise SloError(f"SLO policy must be an object, got {raw!r}")
        thresholds = raw.get("thresholds", [])
        if not isinstance(thresholds, (list, tuple)):
            raise SloError("'thresholds' must be a list")
        return cls(
            name=str(raw.get("name", "default")),
            thresholds=tuple(
                SloThreshold.from_dict(t) for t in thresholds
            ),
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SloPolicy":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as error:
            raise SloError(f"cannot read SLO policy {path}: {error}")
        try:
            raw = json.loads(text)
        except ValueError as error:
            raise SloError(
                f"SLO policy {path} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(raw)


@dataclass(frozen=True)
class SloReport:
    """The outcome of one policy evaluation."""

    policy: str
    results: Tuple[Dict[str, Any], ...]

    @property
    def healthy(self) -> bool:
        return all(result["ok"] for result in self.results)

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return [result for result in self.results if not result["ok"]]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "healthy": self.healthy,
            "results": list(self.results),
        }

    def lines(self) -> List[str]:
        """Human-readable per-rule lines (for the CLI)."""
        rendered = []
        for result in self.results:
            mark = "ok " if result["ok"] else "FAIL"
            rendered.append(
                f"[{mark}] {result['description']}"
                f" (value={result['value']:g})"
            )
        return rendered


def _ingest_default() -> SloPolicy:
    return SloPolicy(
        name="ingest-default",
        thresholds=(
            SloThreshold(
                "pending_batches", "<=", 1024,
                "accepted-but-unflushed batches stay bounded",
            ),
            SloThreshold(
                "spool_lag_records", "<=", 100000,
                "accepted records not yet on disk stay bounded",
            ),
            SloThreshold(
                "analyzer_errors", "<=", 0,
                "no incremental analyzer has failed",
            ),
            SloThreshold(
                "telemetry_lost_flushes", "<=", 0,
                "no warehouse flush has been lost",
            ),
        ),
    )


#: The ingest daemon's built-in health posture: queues bounded, spool
#: keeping up, no analyzer failures, no telemetry loss.
DEFAULT_INGEST_SLO: SloPolicy = _ingest_default()


def ingest_stats_for_slo(
    server_stats: Mapping[str, Any],
    analyzer_errors: int = 0,
    telemetry_lost: int = 0,
) -> Dict[str, float]:
    """Map daemon counters onto the stat names the default SLO bounds."""
    accepted = float(server_stats.get("records_accepted", 0))
    flushed = float(server_stats.get("records_flushed", 0))
    return {
        "sessions": float(server_stats.get("sessions", 0)),
        "pending_batches": float(server_stats.get("pending_batches", 0)),
        "spool_lag_records": max(0.0, accepted - flushed),
        "records_accepted": accepted,
        "records_flushed": flushed,
        "nacks_sent": float(server_stats.get("nacks_sent", 0)),
        "analyzer_errors": float(analyzer_errors),
        "telemetry_lost_flushes": float(telemetry_lost),
    }
