"""Exporters: spans as JSONL and Chrome trace events, metrics as
JSON and Prometheus text.

The Chrome format (the `trace-event format`_) is loadable in
``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: every
span becomes a complete (``"ph": "X"``) event on its process/thread
track, so a study run renders as one timeline per worker process —
LagAlyzer's own medicine applied to itself.

.. _trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs.spans import Span

#: Prefix for every exported Prometheus metric name.
PROM_PREFIX = "lagalyzer"

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One compact JSON object per line, collection order."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
    )


def spans_from_jsonl(text: str) -> List[Span]:
    return [
        Span.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def spans_to_chrome(spans: Sequence[Span]) -> Dict[str, Any]:
    """The Chrome trace-event document for ``spans``.

    Emits ``process_name``/``thread_name`` metadata so each worker
    process gets a labeled track, then one complete event per span with
    microsecond timestamps relative to the earliest span (Chrome's UI
    prefers small ``ts`` values over epoch nanoseconds).
    """
    events: List[Dict[str, Any]] = []
    threads: Dict[Tuple[int, int], str] = {}
    pids: Dict[int, None] = {}
    for span in spans:
        pids.setdefault(span.pid, None)
        threads.setdefault((span.pid, span.tid), span.thread)
    for pid in sorted(pids):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"lagalyzer pid {pid}"},
            }
        )
    for (pid, tid), thread_name in sorted(threads.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            }
        )
    origin_ns = min((span.start_ns for span in spans), default=0)
    for span in spans:
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["cpu_ms"] = round(span.cpu_ns / 1e6, 3)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "obs",
                "pid": span.pid,
                "tid": span.tid,
                "ts": (span.start_ns - origin_ns) / 1e3,
                "dur": span.duration_ns / 1e3,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Any) -> None:
    """Raise ``ValueError`` unless ``document`` is a well-formed
    Chrome trace-event JSON object (the schema the CI smoke asserts).
    """
    if not isinstance(document, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace must have a traceEvents array")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M", "B", "E", "i", "C"):
            raise ValueError(f"traceEvents[{i}]: unknown phase {phase!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"traceEvents[{i}]: missing integer {field}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"traceEvents[{i}]: missing name")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}]: bad {field} {value!r}"
                    )


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return f"{PROM_PREFIX}_{_PROM_NAME_RE.sub('_', name)}"


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Prometheus text exposition of a registry ``as_dict`` snapshot."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_number(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_number(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        bounds = list(hist.get("buckets", [])) + [float("inf")]
        for bound, cell in zip(bounds, hist.get("counts", [])):
            cumulative += int(cell)
            lines.append(
                f'{prom}_bucket{{le="{_prom_number(bound)}"}} {cumulative}'
            )
        lines.append(f"{prom}_sum {_prom_number(hist.get('sum', 0.0))}")
        lines.append(f"{prom}_count {int(hist.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse exposition text back to ``{name or name{labels}: value}``.

    A deliberately small parser used by tests and the report command to
    prove the export round-trips; not a general Prometheus client.
    """
    values: Dict[str, float] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, raw = line.rsplit(None, 1)
            values[key] = float(raw.replace("+Inf", "inf"))
        except ValueError as error:
            raise ValueError(f"line {line_no}: unparseable {line!r}") from error
    return values
