"""Opt-in ``cProfile`` hooks: aggregated hotspots per analysis.

With profiling enabled (``Observer(profile=True)`` / the CLI's
``--profile``), the engine wraps every ``map_trace`` call in a
:class:`cProfile.Profile` and feeds the rows here. The aggregator keeps
one table per *key* (the analysis name), summing call counts and timings
across traces, threads, and — via the picklable :meth:`as_dict`
snapshot — worker processes, then reports the top-N functions by
cumulative time.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Tuple

#: func label -> [primitive calls, total (own) time s, cumulative time s]
_Rows = Dict[str, List[float]]


def _func_label(func: Tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if filename == "~":  # builtins have no file
        return name
    return f"{filename}:{lineno}:{name}"


class ProfileAggregator:
    """Accumulates per-key cProfile tables; picklable via ``as_dict``."""

    def __init__(self, top_n: int = 15) -> None:
        self.top_n = top_n
        self._tables: Dict[str, _Rows] = {}

    @contextmanager
    def profiled(self, key: str) -> Iterator[None]:
        """Profile the body and fold its stats into ``key``'s table.

        If another profiler is already active on this thread (nested
        ``profiled`` calls), the body runs unprofiled rather than
        erroring — profiling is best-effort observability.
        """
        profile = cProfile.Profile()
        try:
            profile.enable()
        except ValueError:  # another profiler already active
            yield
            return
        try:
            yield
        finally:
            profile.disable()
            self._add(key, profile)

    def _add(self, key: str, profile: cProfile.Profile) -> None:
        stats = pstats.Stats(profile)
        table = self._tables.setdefault(key, {})
        for func, (cc, _nc, tt, ct, _callers) in stats.stats.items():
            label = _func_label(func)
            row = table.get(label)
            if row is None:
                table[label] = [float(cc), tt, ct]
            else:
                row[0] += cc
                row[1] += tt
                row[2] += ct

    # ------------------------------------------------------------------
    # Aggregation and reporting
    # ------------------------------------------------------------------

    def merge(self, snapshot: Mapping[str, Mapping[str, List[float]]]) -> None:
        """Fold another aggregator's ``as_dict`` snapshot into this one."""
        for key, rows in snapshot.items():
            table = self._tables.setdefault(key, {})
            for label, (calls, tottime, cumtime) in rows.items():
                row = table.get(label)
                if row is None:
                    table[label] = [float(calls), float(tottime), float(cumtime)]
                else:
                    row[0] += calls
                    row[1] += tottime
                    row[2] += cumtime

    def top(self, key: str, n: int = 0) -> List[Tuple[str, int, float, float]]:
        """``(func, calls, tottime_s, cumtime_s)`` rows, worst first."""
        n = n or self.top_n
        rows = [
            (label, int(calls), tottime, cumtime)
            for label, (calls, tottime, cumtime) in self._tables.get(
                key, {}
            ).items()
        ]
        rows.sort(key=lambda row: (-row[3], -row[2], row[0]))
        return rows[:n]

    def keys(self) -> List[str]:
        return sorted(self._tables)

    def as_dict(self) -> Dict[str, Any]:
        """Top-N rows per key (bounded so snapshots stay small)."""
        return {
            key: {
                label: [calls, tottime, cumtime]
                for label, calls, tottime, cumtime in self.top(key)
            }
            for key in self.keys()
        }

    def format_report(self, top: int = 5) -> str:
        """A human-readable hotspot report, one block per key."""
        lines: List[str] = []
        for key in self.keys():
            lines.append(f"{key}:")
            for label, calls, tottime, cumtime in self.top(key, top):
                lines.append(
                    f"  {cumtime * 1e3:9.1f} ms cum  {tottime * 1e3:9.1f} ms own"
                    f"  {calls:8d} calls  {label}"
                )
        return "\n".join(lines) if lines else "(no profile data)"
