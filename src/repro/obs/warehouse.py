"""The metrics warehouse: persistent, queryable operational telemetry.

Per-run observability bundles answer "what happened in this run?"; the
warehouse answers "how has the fleet behaved over time?". It is one
SQLite file (stdlib :mod:`sqlite3`, WAL mode) into which
:class:`~repro.obs.publisher.TelemetryPublisher` flushes periodic
metric *deltas* — counter increments, gauge highs, histogram cell
deltas, span rollups — keyed by run, host, and time bucket, so
``repro obs query`` can ask for e.g. the p99 send-to-ack latency per
day across every run that ever published.

Design rules:

- **Repository pattern, short-lived connections.** Every operation
  opens its own connection, ensures the schema, commits, and closes.
  There is no long-lived handle to corrupt: delete the file mid-run
  and the next flush simply recreates it. Telemetry storage must never
  be a single point of failure for the system it observes.
- **Additive writes.** A flush *merges* into its ``(run, name,
  bucket)`` row — counters and histogram cells add, gauges keep the
  max — so re-publishing after a failed flush is idempotent-ish in the
  only way that matters: no reader ever sees partial rows (one
  transaction per flush).
- **Bounded growth.** :meth:`Warehouse.prune` drops buckets older than
  a retention horizon; :meth:`Warehouse.compact` re-buckets old
  fine-grained rows into coarser buckets and reclaims the file.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.errors import LagAlyzerError

#: Schema version recorded in the ``meta`` table.
SCHEMA_VERSION = 1

#: Default width of a storage time bucket, in seconds.
DEFAULT_BUCKET_S = 60

#: Named display granularities accepted by the query API.
BUCKET_WIDTHS: Dict[str, int] = {
    "minute": 60,
    "hour": 3600,
    "day": 86400,
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,
    host       TEXT NOT NULL DEFAULT '',
    started_ts INTEGER NOT NULL,
    last_ts    INTEGER NOT NULL,
    flushes    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS metric_points (
    run_id    TEXT NOT NULL,
    name      TEXT NOT NULL,
    kind      TEXT NOT NULL,
    bucket_ts INTEGER NOT NULL,
    value     REAL NOT NULL,
    PRIMARY KEY (run_id, name, kind, bucket_ts)
);
CREATE INDEX IF NOT EXISTS idx_metric_points_name
    ON metric_points (name, bucket_ts);
CREATE TABLE IF NOT EXISTS histogram_points (
    run_id    TEXT NOT NULL,
    name      TEXT NOT NULL,
    bucket_ts INTEGER NOT NULL,
    buckets   TEXT NOT NULL,
    counts    TEXT NOT NULL,
    sum       REAL NOT NULL,
    count     INTEGER NOT NULL,
    PRIMARY KEY (run_id, name, bucket_ts)
);
CREATE INDEX IF NOT EXISTS idx_histogram_points_name
    ON histogram_points (name, bucket_ts);
CREATE TABLE IF NOT EXISTS span_rollups (
    run_id    TEXT NOT NULL,
    name      TEXT NOT NULL,
    bucket_ts INTEGER NOT NULL,
    count     INTEGER NOT NULL,
    total_ms  REAL NOT NULL,
    max_ms    REAL NOT NULL,
    PRIMARY KEY (run_id, name, bucket_ts)
);
CREATE INDEX IF NOT EXISTS idx_span_rollups_name
    ON span_rollups (name, bucket_ts);
"""


class WarehouseError(LagAlyzerError):
    """The warehouse file is unusable or a query is malformed."""


def estimate_percentile(
    buckets: List[float], counts: List[int], q: float
) -> float:
    """Upper-bound percentile estimate from fixed-bucket counts.

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q`` of the total — the same conservative estimator the
    ingest benchmark gates on. Mass in the +Inf overflow bucket reports
    the largest finite bound (the histogram cannot resolve beyond it).
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, cell in enumerate(counts):
        cumulative += cell
        if cumulative >= target:
            if i < len(buckets):
                return float(buckets[i])
            return float(buckets[-1]) if buckets else 0.0
    return float(buckets[-1]) if buckets else 0.0


class Warehouse:
    """One SQLite-backed telemetry warehouse.

    Args:
        path: the database file (created, with parents, on first write).
        bucket_s: storage time-bucket width in seconds; flushes landing
            in the same bucket merge into one row.
    """

    def __init__(
        self,
        path: Union[str, Path],
        bucket_s: int = DEFAULT_BUCKET_S,
    ) -> None:
        self.path = Path(path)
        self.bucket_s = max(1, int(bucket_s))

    # ------------------------------------------------------------------
    # Connection / schema management
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """A fresh connection with WAL mode and the schema ensured."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self.path), timeout=5.0)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.executescript(_SCHEMA)
            connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            # Close the implicit transaction the meta insert opened, so
            # callers that need autocommit (VACUUM) start clean.
            connection.commit()
        except sqlite3.Error:
            connection.close()
            raise
        return connection

    def bucket_ts(self, ts: float) -> int:
        """The storage bucket a wall-clock timestamp lands in."""
        return int(ts) // self.bucket_s * self.bucket_s

    def schema_version(self) -> int:
        """The schema version stored in the file (ensures the schema)."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        return int(row[0]) if row else 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def record_delta(
        self,
        run_id: str,
        delta: Mapping[str, Any],
        ts: Optional[float] = None,
        host: str = "",
    ) -> None:
        """Merge one publisher flush into the warehouse (one transaction).

        ``delta`` carries ``counters`` (name → increment), ``gauges``
        (name → current value), ``histograms`` (name →
        ``{"buckets", "counts", "sum", "count"}`` of *new* observations
        only), and ``spans`` (name → ``{"count", "total_ms", "max_ms"}``
        over spans finished since the previous flush).

        Raises:
            sqlite3.Error: the file is unwritable — callers treat this
                as lost telemetry, never as a fatal condition.
        """
        now = time.time() if ts is None else float(ts)
        bucket = self.bucket_ts(now)
        connection = self._connect()
        try:
            with connection:  # one transaction per flush
                connection.execute(
                    "INSERT INTO runs (run_id, host, started_ts, last_ts,"
                    " flushes) VALUES (?, ?, ?, ?, 1)"
                    " ON CONFLICT(run_id) DO UPDATE SET"
                    " last_ts = excluded.last_ts,"
                    " flushes = flushes + 1",
                    (run_id, host, int(now), int(now)),
                )
                for name, value in delta.get("counters", {}).items():
                    self._merge_metric(
                        connection, run_id, name, "counter", bucket,
                        float(value), add=True,
                    )
                for name, value in delta.get("gauges", {}).items():
                    self._merge_metric(
                        connection, run_id, name, "gauge", bucket,
                        float(value), add=False,
                    )
                for name, raw in delta.get("histograms", {}).items():
                    self._merge_histogram(
                        connection, run_id, name, bucket, raw
                    )
                for name, raw in delta.get("spans", {}).items():
                    connection.execute(
                        "INSERT INTO span_rollups (run_id, name, bucket_ts,"
                        " count, total_ms, max_ms) VALUES (?, ?, ?, ?, ?, ?)"
                        " ON CONFLICT(run_id, name, bucket_ts) DO UPDATE SET"
                        " count = count + excluded.count,"
                        " total_ms = total_ms + excluded.total_ms,"
                        " max_ms = MAX(max_ms, excluded.max_ms)",
                        (
                            run_id, name, bucket,
                            int(raw.get("count", 0)),
                            float(raw.get("total_ms", 0.0)),
                            float(raw.get("max_ms", 0.0)),
                        ),
                    )
        finally:
            connection.close()

    @staticmethod
    def _merge_metric(
        connection: sqlite3.Connection,
        run_id: str,
        name: str,
        kind: str,
        bucket: int,
        value: float,
        add: bool,
    ) -> None:
        merge = (
            "value = value + excluded.value"
            if add
            else "value = MAX(value, excluded.value)"
        )
        connection.execute(
            "INSERT INTO metric_points (run_id, name, kind, bucket_ts,"
            f" value) VALUES (?, ?, ?, ?, ?)"
            f" ON CONFLICT(run_id, name, kind, bucket_ts) DO UPDATE SET"
            f" {merge}",
            (run_id, name, kind, bucket, value),
        )

    @staticmethod
    def _merge_histogram(
        connection: sqlite3.Connection,
        run_id: str,
        name: str,
        bucket: int,
        raw: Mapping[str, Any],
    ) -> None:
        row = connection.execute(
            "SELECT buckets, counts, sum, count FROM histogram_points"
            " WHERE run_id = ? AND name = ? AND bucket_ts = ?",
            (run_id, name, bucket),
        ).fetchone()
        buckets = list(raw.get("buckets", ()))
        counts = [int(cell) for cell in raw.get("counts", ())]
        total = float(raw.get("sum", 0.0))
        count = int(raw.get("count", 0))
        if row is not None:
            old_buckets = json.loads(row[0])
            old_counts = json.loads(row[1])
            if old_buckets == buckets and len(old_counts) == len(counts):
                counts = [a + b for a, b in zip(old_counts, counts)]
            else:
                # Layout changed mid-bucket (shouldn't happen, but
                # telemetry never hard-fails): keep the bigger layout
                # and fold the smaller one's mass into the overflow.
                if len(old_counts) > len(counts):
                    buckets, counts, old_counts = (
                        old_buckets, old_counts, counts
                    )
                counts = list(counts)
                counts[-1] += sum(old_counts)
            total += float(row[2])
            count += int(row[3])
        connection.execute(
            "INSERT OR REPLACE INTO histogram_points (run_id, name,"
            " bucket_ts, buckets, counts, sum, count)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                run_id, name, bucket,
                json.dumps(buckets), json.dumps(counts), total, count,
            ),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @staticmethod
    def _display_bucket(name_or_width: Union[str, int]) -> int:
        if isinstance(name_or_width, int):
            width = name_or_width
        else:
            width = BUCKET_WIDTHS.get(name_or_width, 0)
        if width <= 0:
            raise WarehouseError(
                f"unknown bucket {name_or_width!r} "
                f"(choose from {', '.join(sorted(BUCKET_WIDTHS))} "
                f"or a positive width in seconds)"
            )
        return width

    def runs(self) -> List[Dict[str, Any]]:
        """Every run that ever published, newest last."""
        if not self.path.is_file():
            return []
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT run_id, host, started_ts, last_ts, flushes"
                " FROM runs ORDER BY started_ts, run_id"
            ).fetchall()
        return [
            {
                "run_id": run_id,
                "host": host,
                "started_ts": started_ts,
                "last_ts": last_ts,
                "flushes": flushes,
            }
            for run_id, host, started_ts, last_ts, flushes in rows
        ]

    def metric_names(self) -> Dict[str, List[str]]:
        """All published names by table: counters/gauges/histograms/spans."""
        if not self.path.is_file():
            return {
                "counters": [], "gauges": [], "histograms": [], "spans": [],
            }
        with self._connect() as connection:
            counters = [
                row[0] for row in connection.execute(
                    "SELECT DISTINCT name FROM metric_points"
                    " WHERE kind = 'counter' ORDER BY name"
                )
            ]
            gauges = [
                row[0] for row in connection.execute(
                    "SELECT DISTINCT name FROM metric_points"
                    " WHERE kind = 'gauge' ORDER BY name"
                )
            ]
            histograms = [
                row[0] for row in connection.execute(
                    "SELECT DISTINCT name FROM histogram_points"
                    " ORDER BY name"
                )
            ]
            spans = [
                row[0] for row in connection.execute(
                    "SELECT DISTINCT name FROM span_rollups ORDER BY name"
                )
            ]
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }

    def series(
        self,
        name: str,
        bucket: Union[str, int] = "minute",
        run_id: Optional[str] = None,
        since_ts: Optional[float] = None,
    ) -> List[Tuple[int, float]]:
        """A counter/gauge time-series: ``(bucket_ts, value)`` rows.

        Counters sum across runs and storage buckets inside each
        display bucket; gauges take the max.
        """
        width = self._display_bucket(bucket)
        if not self.path.is_file():
            return []
        where, params = self._filters(run_id, since_ts)
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT bucket_ts / ? * ? AS b,"
                " SUM(CASE WHEN kind = 'counter' THEN value END),"
                " MAX(CASE WHEN kind = 'gauge' THEN value END)"
                f" FROM metric_points WHERE name = ?{where}"
                " GROUP BY b ORDER BY b",
                [width, width, name, *params],
            ).fetchall()
        return [
            (int(b), float(total if total is not None else high))
            for b, total, high in rows
            if total is not None or high is not None
        ]

    def percentile_series(
        self,
        name: str,
        q: float = 0.99,
        bucket: Union[str, int] = "day",
        run_id: Optional[str] = None,
        since_ts: Optional[float] = None,
    ) -> List[Tuple[int, float, int]]:
        """Histogram percentile per display bucket.

        Returns ``(bucket_ts, estimate, observations)`` rows — e.g.
        ``percentile_series("ingest.client.flush_ms", 0.99, "day")`` is
        the p99 send-to-ack latency per day across every published run.
        """
        if not 0.0 < q <= 1.0:
            raise WarehouseError(f"percentile q={q} outside (0, 1]")
        width = self._display_bucket(bucket)
        if not self.path.is_file():
            return []
        where, params = self._filters(run_id, since_ts)
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT bucket_ts, buckets, counts, count"
                f" FROM histogram_points WHERE name = ?{where}"
                " ORDER BY bucket_ts",
                [name, *params],
            ).fetchall()
        merged: Dict[int, Tuple[List[float], List[int], int]] = {}
        for bucket_ts, buckets_json, counts_json, count in rows:
            display = int(bucket_ts) // width * width
            buckets = json.loads(buckets_json)
            counts = [int(cell) for cell in json.loads(counts_json)]
            entry = merged.get(display)
            if entry is None:
                merged[display] = (buckets, counts, int(count))
                continue
            old_buckets, old_counts, old_count = entry
            if old_buckets == buckets and len(old_counts) == len(counts):
                summed = [a + b for a, b in zip(old_counts, counts)]
            else:
                summed = list(old_counts)
                summed[-1] += sum(counts)
                buckets = old_buckets
            merged[display] = (buckets, summed, old_count + int(count))
        return [
            (ts, estimate_percentile(buckets, counts, q), count)
            for ts, (buckets, counts, count) in sorted(merged.items())
        ]

    def span_summary(
        self,
        run_id: Optional[str] = None,
        since_ts: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Aggregate span rollups by name (slowest mean first)."""
        if not self.path.is_file():
            return []
        where, params = self._filters(run_id, since_ts)
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT name, SUM(count), SUM(total_ms), MAX(max_ms)"
                f" FROM span_rollups WHERE 1=1{where}"
                " GROUP BY name",
                params,
            ).fetchall()
        summary = [
            {
                "name": name,
                "count": int(count),
                "total_ms": float(total_ms),
                "mean_ms": float(total_ms) / count if count else 0.0,
                "max_ms": float(max_ms),
            }
            for name, count, total_ms, max_ms in rows
        ]
        summary.sort(key=lambda row: (-row["mean_ms"], row["name"]))
        return summary

    def totals(
        self,
        run_id: Optional[str] = None,
        since_ts: Optional[float] = None,
    ) -> Dict[str, float]:
        """Counter totals by name over the selected rows."""
        if not self.path.is_file():
            return {}
        where, params = self._filters(run_id, since_ts)
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT name, SUM(value) FROM metric_points"
                f" WHERE kind = 'counter'{where}"
                " GROUP BY name ORDER BY name",
                params,
            ).fetchall()
        return {name: float(value) for name, value in rows}

    @staticmethod
    def _filters(
        run_id: Optional[str], since_ts: Optional[float]
    ) -> Tuple[str, List[Any]]:
        where = ""
        params: List[Any] = []
        if run_id is not None:
            where += " AND run_id = ?"
            params.append(run_id)
        if since_ts is not None:
            where += " AND bucket_ts >= ?"
            params.append(int(since_ts))
        return where, params

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def prune(self, max_age_s: float, now: Optional[float] = None) -> int:
        """Delete buckets older than ``max_age_s``; rows removed.

        Runs whose every point was pruned are removed too.
        """
        if not self.path.is_file():
            return 0
        cutoff = self.bucket_ts(
            (time.time() if now is None else now) - max_age_s
        )
        removed = 0
        connection = self._connect()
        try:
            with connection:
                for table in (
                    "metric_points", "histogram_points", "span_rollups"
                ):
                    cursor = connection.execute(
                        f"DELETE FROM {table} WHERE bucket_ts < ?",  # noqa: S608
                        (cutoff,),
                    )
                    removed += cursor.rowcount
                connection.execute(
                    "DELETE FROM runs WHERE run_id NOT IN ("
                    " SELECT run_id FROM metric_points"
                    " UNION SELECT run_id FROM histogram_points"
                    " UNION SELECT run_id FROM span_rollups)"
                )
        finally:
            connection.close()
        return removed

    def compact(
        self,
        older_than_s: float = 3600.0,
        coarse_s: int = 3600,
        now: Optional[float] = None,
    ) -> int:
        """Re-bucket old fine-grained rows into ``coarse_s`` buckets.

        Rows older than ``older_than_s`` collapse into coarse buckets
        (counters/histograms/rollups add, gauges keep max), then the
        file is vacuumed. Returns the number of rows eliminated.
        """
        if not self.path.is_file():
            return 0
        cutoff = (time.time() if now is None else now) - older_than_s
        coarse = max(self.bucket_s, int(coarse_s))
        connection = self._connect()
        try:
            before = self._point_rows(connection)
            with connection:
                connection.execute(
                    "UPDATE OR IGNORE metric_points"
                    " SET bucket_ts = bucket_ts / ? * ?"
                    " WHERE bucket_ts < ?",
                    (coarse, coarse, int(cutoff)),
                )
                # Rows whose coarse slot already existed collide on the
                # primary key and survive the UPDATE OR IGNORE; fold
                # them in by hand.
                self._fold_metric_collisions(connection, coarse, cutoff)
                self._fold_histogram_collisions(connection, coarse, cutoff)
                connection.execute(
                    "UPDATE OR IGNORE span_rollups"
                    " SET bucket_ts = bucket_ts / ? * ?"
                    " WHERE bucket_ts < ?",
                    (coarse, coarse, int(cutoff)),
                )
                self._fold_rollup_collisions(connection, coarse, cutoff)
            after = self._point_rows(connection)
        finally:
            connection.close()
        # VACUUM cannot run inside a transaction.
        connection = self._connect()
        try:
            connection.execute("VACUUM")
        finally:
            connection.close()
        return before - after

    @staticmethod
    def _point_rows(connection: sqlite3.Connection) -> int:
        total = 0
        for table in ("metric_points", "histogram_points", "span_rollups"):
            total += connection.execute(
                f"SELECT COUNT(*) FROM {table}"  # noqa: S608
            ).fetchone()[0]
        return total

    def _fold_metric_collisions(
        self,
        connection: sqlite3.Connection,
        coarse: int,
        cutoff: float,
    ) -> None:
        rows = connection.execute(
            "SELECT run_id, name, kind, bucket_ts, value"
            " FROM metric_points WHERE bucket_ts < ?"
            " AND bucket_ts % ? != 0",
            (int(cutoff), coarse),
        ).fetchall()
        for run_id, name, kind, bucket_ts, value in rows:
            self._merge_metric(
                connection, run_id, name, kind,
                int(bucket_ts) // coarse * coarse, float(value),
                add=(kind == "counter"),
            )
            connection.execute(
                "DELETE FROM metric_points WHERE run_id = ? AND name = ?"
                " AND kind = ? AND bucket_ts = ?",
                (run_id, name, kind, bucket_ts),
            )

    def _fold_histogram_collisions(
        self,
        connection: sqlite3.Connection,
        coarse: int,
        cutoff: float,
    ) -> None:
        rows = connection.execute(
            "SELECT run_id, name, bucket_ts, buckets, counts, sum, count"
            " FROM histogram_points WHERE bucket_ts < ?"
            " AND bucket_ts % ? != 0",
            (int(cutoff), coarse),
        ).fetchall()
        for run_id, name, bucket_ts, buckets, counts, total, count in rows:
            connection.execute(
                "DELETE FROM histogram_points WHERE run_id = ?"
                " AND name = ? AND bucket_ts = ?",
                (run_id, name, bucket_ts),
            )
            self._merge_histogram(
                connection, run_id, name,
                int(bucket_ts) // coarse * coarse,
                {
                    "buckets": json.loads(buckets),
                    "counts": json.loads(counts),
                    "sum": total,
                    "count": count,
                },
            )

    @staticmethod
    def _fold_rollup_collisions(
        connection: sqlite3.Connection,
        coarse: int,
        cutoff: float,
    ) -> None:
        rows = connection.execute(
            "SELECT run_id, name, bucket_ts, count, total_ms, max_ms"
            " FROM span_rollups WHERE bucket_ts < ?"
            " AND bucket_ts % ? != 0",
            (int(cutoff), coarse),
        ).fetchall()
        for run_id, name, bucket_ts, count, total_ms, max_ms in rows:
            connection.execute(
                "DELETE FROM span_rollups WHERE run_id = ? AND name = ?"
                " AND bucket_ts = ?",
                (run_id, name, bucket_ts),
            )
            connection.execute(
                "INSERT INTO span_rollups (run_id, name, bucket_ts,"
                " count, total_ms, max_ms) VALUES (?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(run_id, name, bucket_ts) DO UPDATE SET"
                " count = count + excluded.count,"
                " total_ms = total_ms + excluded.total_ms,"
                " max_ms = MAX(max_ms, excluded.max_ms)",
                (
                    run_id, name,
                    int(bucket_ts) // coarse * coarse,
                    int(count), float(total_ms), float(max_ms),
                ),
            )

    def __repr__(self) -> str:
        return f"Warehouse({self.path}, bucket={self.bucket_s}s)"
