"""The ambient observer: process-global, one-branch disabled guards.

Deep pipeline code (the trace reader, the result cache, the simulator's
tracer) cannot have an ``obs=`` parameter threaded through every
signature. Instead an :class:`~repro.obs.observer.Observer` is
*installed* for the duration of an observed run and hot paths consult
it through the helpers here. Every helper starts with the same single
branch — ``if _current is None: return`` — so the disabled mode costs
one global read and one comparison per site (verified by
``benchmarks/bench_obs_overhead.py``).

Worker processes never *use* the parent's observer: on fork-start
platforms a child inherits the module global, but its spans and
counters would land in a throwaway copy, so the installation records
the owning pid and :func:`current` treats a foreign-pid observer as
absent. The engine and study runner then install a fresh observer per
worker task and ship its snapshot back (see ``repro.engine.engine`` /
``repro.study.runner``).
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.obs.spans import NULL_SPAN

#: The installed observer, or None (observation disabled).
_current: Optional[Any] = None
#: Pid that installed it; a forked child sees a mismatch and ignores it.
_owner_pid: int = -1


def install(observer: Any) -> None:
    """Make ``observer`` the ambient observer for this process."""
    global _current, _owner_pid
    _current = observer
    _owner_pid = os.getpid()


def uninstall() -> None:
    """Disable ambient observation."""
    global _current
    _current = None


def current() -> Optional[Any]:
    """The ambient observer, or None when observation is disabled.

    An observer inherited through ``fork`` (pid mismatch) counts as
    disabled: recording into it could never be shipped back.
    """
    if _current is None or _owner_pid != os.getpid():
        return None
    return _current


class installed:
    """Context manager: install an observer, restore the previous one.

    A no-op when ``observer`` is None, so call sites don't need their
    own branch. Not re-entrancy-safe across threads (the ambient
    observer is process-global by design).
    """

    __slots__ = ("_observer", "_previous", "_previous_pid")

    def __init__(self, observer: Optional[Any]) -> None:
        self._observer = observer
        self._previous: Optional[Any] = None
        self._previous_pid: int = -1

    def __enter__(self) -> Optional[Any]:
        if self._observer is not None:
            self._previous = _current
            self._previous_pid = _owner_pid
            install(self._observer)
        return self._observer

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if self._observer is not None:
            global _current, _owner_pid
            _current = self._previous
            _owner_pid = self._previous_pid
        return False


# ----------------------------------------------------------------------
# One-branch guarded helpers (the only obs API hot paths should touch)
# ----------------------------------------------------------------------


def maybe_span(name: str, metric: Optional[str] = None, **attrs: Any) -> Any:
    """A span context under the ambient observer, or the shared no-op."""
    if _current is None:
        return NULL_SPAN
    if _owner_pid != os.getpid():
        return NULL_SPAN
    return _current.span(name, metric=metric, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment an ambient counter (no-op when disabled)."""
    if _current is None:
        return
    if _owner_pid != os.getpid():
        return
    _current.metrics.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    if _current is None:
        return
    if _owner_pid != os.getpid():
        return
    _current.metrics.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (merges across processes keep the max; no-op when disabled)."""
    if _current is None:
        return
    if _owner_pid != os.getpid():
        return
    _current.metrics.set_gauge(name, value)


def profiled(key: str) -> Any:
    """A cProfile context under the ambient observer (no-op unless
    the observer was built with ``profile=True``)."""
    if _current is None:
        return NULL_SPAN
    if _owner_pid != os.getpid():
        return NULL_SPAN
    return _current.profiled(key)
