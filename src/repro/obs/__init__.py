"""``repro.obs`` — observability for the analysis pipeline itself.

LagAlyzer explains other programs' latency; this package explains
LagAlyzer's. Three dependency-free pillars:

- **tracing** (:mod:`repro.obs.spans`) — nested, thread- and
  process-aware spans with wall/CPU durations and attributes,
  exportable as JSONL and Chrome trace-event JSON;
- **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  fixed-bucket histograms in a mergeable registry, exportable as JSON
  and Prometheus text;
- **profiling** (:mod:`repro.obs.profiling`) — opt-in ``cProfile``
  wrapping of engine map calls, aggregated into top-N hotspots per
  analysis.

Version 2 adds the *operational* layer for the live system:

- **propagation** (:mod:`repro.obs.context`) — trace contexts carried
  across the ingest wire so client and daemon spans form one tree;
- **warehouse** (:mod:`repro.obs.warehouse` /
  :mod:`repro.obs.publisher`) — a persistent SQLite metrics store fed
  by a background publisher, queryable across runs;
- **health** (:mod:`repro.obs.http` / :mod:`repro.obs.slo`) — live
  ``/metrics`` / ``/healthz`` / ``/sessions`` endpoints driven by
  declarative SLO policies.

Enable by constructing an :class:`Observer` and passing it to
``run_study(obs=...)`` / ``LagAlyzer(obs=...)``, or from the CLI::

    lagalyzer study --obs out/obs --workers 4
    lagalyzer obs report out/obs
    lagalyzer obs export out/obs --format chrome -o trace.json

When no observer is installed every instrumentation site reduces to a
single ``is None`` branch (see :mod:`repro.obs.runtime` and
``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.context import TraceContext
from repro.obs.http import HealthServer
from repro.obs.metrics import DEFAULT_MS_BUCKETS, MetricsRegistry
from repro.obs.observer import Observer, load_bundle
from repro.obs.profiling import ProfileAggregator
from repro.obs.publisher import TelemetryPublisher
from repro.obs.slo import (
    DEFAULT_INGEST_SLO,
    SloPolicy,
    SloReport,
    SloThreshold,
)
from repro.obs.warehouse import Warehouse
from repro.obs.runtime import (
    count,
    current,
    install,
    installed,
    maybe_span,
    observe,
    profiled,
    set_gauge,
    uninstall,
)
from repro.obs.spans import NULL_SPAN, Span, SpanCollector, span_depth

__all__ = [
    "DEFAULT_INGEST_SLO",
    "DEFAULT_MS_BUCKETS",
    "HealthServer",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observer",
    "ProfileAggregator",
    "SloPolicy",
    "SloReport",
    "SloThreshold",
    "Span",
    "SpanCollector",
    "TelemetryPublisher",
    "TraceContext",
    "Warehouse",
    "count",
    "current",
    "install",
    "installed",
    "load_bundle",
    "maybe_span",
    "observe",
    "profiled",
    "set_gauge",
    "span_depth",
    "uninstall",
]
