"""Structured tracing spans for the pipeline's own execution.

A *span* is one timed operation — a study run, one trace parse, one
``map_trace`` call, one cache write — with a stable id, a parent link,
wall and CPU durations, and free-form attributes. Spans form a tree:
within a thread, entering a span pushes it on a thread-local stack and
any span opened underneath becomes its child; across threads and
processes, parents are wired explicitly (worker snapshots are
re-parented under the dispatching span when they are absorbed, see
:meth:`repro.obs.observer.Observer.absorb`).

Everything here is dependency-free and picklable so spans survive the
``ProcessPoolExecutor`` round-trip the engine and study runner use.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

_id_counter = itertools.count(1)


def next_span_id() -> str:
    """A process-unique span id (pid-prefixed so merges never collide)."""
    return f"{os.getpid():x}-{next(_id_counter):x}"


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    span_id: str
    parent_id: Optional[str]
    pid: int
    thread: str
    tid: int
    start_ns: int
    """Wall-clock start, epoch nanoseconds (comparable across processes)."""
    end_ns: int = 0
    cpu_ns: int = 0
    """CPU time consumed by the owning thread while the span was open."""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return max(self.end_ns - self.start_ns, 0)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "thread": self.thread,
            "tid": self.tid,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "cpu_ns": self.cpu_ns,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "Span":
        return cls(
            name=str(raw["name"]),
            span_id=str(raw["span_id"]),
            parent_id=raw.get("parent_id"),
            pid=int(raw.get("pid", 0)),
            thread=str(raw.get("thread", "?")),
            tid=int(raw.get("tid", 0)),
            start_ns=int(raw.get("start_ns", 0)),
            end_ns=int(raw.get("end_ns", 0)),
            cpu_ns=int(raw.get("cpu_ns", 0)),
            attrs=dict(raw.get("attrs", {})),
        )


class SpanCollector:
    """Thread-safe store of finished spans plus per-thread open stacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._finished: List[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Per-thread span stack
    # ------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def push(self, span: Span) -> None:
        self._stack().append(span)

    def pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # ------------------------------------------------------------------
    # Finished spans
    # ------------------------------------------------------------------

    def add(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)

    def extend(self, spans: List[Span]) -> None:
        with self._lock:
            self._finished.extend(spans)

    def finished(self) -> List[Span]:
        """A snapshot copy of all finished spans (collection order)."""
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


class SpanContext:
    """The context manager returned by ``Observer.span()``.

    On exit the span is finalized and handed to the collector; an
    escaping exception is recorded as the ``error`` attribute without
    being swallowed. The open span object is yielded so callers can
    attach attributes mid-flight (``with obs.span("x") as sp: sp.attrs[...]``).
    """

    __slots__ = ("_collector", "span", "_metric", "_metrics", "_cpu_start")

    def __init__(
        self,
        collector: SpanCollector,
        name: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
        metrics: Any = None,
        metric: Optional[str] = None,
    ) -> None:
        self._collector = collector
        self._metrics = metrics
        self._metric = metric
        self._cpu_start = 0
        if parent_id is None:
            parent = collector.current()
            if parent is not None:
                parent_id = parent.span_id
        thread = threading.current_thread()
        self.span = Span(
            name=name,
            span_id=next_span_id(),
            parent_id=parent_id,
            pid=os.getpid(),
            thread=thread.name,
            tid=threading.get_ident(),
            start_ns=0,
            attrs=attrs,
        )

    def __enter__(self) -> Span:
        self.span.start_ns = time.time_ns()
        self._cpu_start = time.thread_time_ns()
        self._collector.push(self.span)
        return self.span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        span = self.span
        span.cpu_ns = time.thread_time_ns() - self._cpu_start
        span.end_ns = span.start_ns + max(
            time.time_ns() - span.start_ns, 0
        )
        if exc_type is not None:
            span.attrs["error"] = exc_type.__name__
        self._collector.pop(span)
        self._collector.add(span)
        if self._metric is not None and self._metrics is not None:
            self._metrics.observe(self._metric, span.duration_ms)
        return False


class _NullSpanContext:
    """The shared no-op context used whenever observation is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def __call__(self, *args: Any, **kwargs: Any) -> "_NullSpanContext":
        return self


#: Reusable (stateless, re-entrant) disabled-mode context manager.
NULL_SPAN = _NullSpanContext()


def span_depth(spans: List[Span]) -> int:
    """The deepest parent chain over ``spans`` (1 = roots only)."""
    by_id = {span.span_id: span for span in spans}
    depths: Dict[str, int] = {}

    def depth_of(span: Span) -> int:
        cached = depths.get(span.span_id)
        if cached is not None:
            return cached
        seen = set()
        depth = 1
        node = span
        while node.parent_id is not None and node.parent_id in by_id:
            if node.span_id in seen:  # defensive: broken cycle
                break
            seen.add(node.span_id)
            node = by_id[node.parent_id]
            depth += 1
        depths[span.span_id] = depth
        return depth

    return max((depth_of(span) for span in spans), default=0)
