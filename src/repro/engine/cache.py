"""Content-addressed on-disk cache for analysis partials.

Analyses re-run over unchanged traces dominate LagAlyzer's offline cost
(the paper's full study is 7.5 hours of sessions). The cache stores the
result of every ``map_trace`` keyed by everything that could change it:

- the **trace digest** (:func:`repro.lila.digest.trace_digest`) — the
  content hash of the session trace;
- the **config fingerprint** — a stable hash of the
  :class:`~repro.core.analyzer.AnalysisConfig` in effect;
- the **analysis name** — the registry key of the analysis;
- the **code version** — bumped whenever an analysis implementation
  changes shape, invalidating all prior entries at once.

Entries are self-checking: each file carries a magic header and a
checksum of its pickled payload, so truncated or corrupted entries are
detected, discarded, and transparently recomputed — a damaged cache can
slow a run down but never change its results.

Since the fused-plan refactor the cache also stores whole **bundles**:
one entry per (trace digest, config fingerprint, *plan* fingerprint)
holding every partial a fused pass produced for that trace, so a
multi-analysis study is served in one read per trace. Legacy
per-analysis entries are still written alongside and still serve
lookups of any subset, so old caches and single-analysis callers keep
working unchanged. Bundle traffic is counted separately
(``bundle_hits`` / ``bundle_misses`` / ``bundle_stores``).

Layout under the cache directory (default ``~/.cache/lagalyzer``,
overridable with ``cache_dir=`` or the ``LAGALYZER_CACHE_DIR``
environment variable)::

    objects/<kk>/<key>.pkl   one entry per (digest, config, analysis)
    bundles/<kk>/<key>.pkl   one fused bundle per (digest, config, plan)
    stats.json               cumulative hit/miss/store counters
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

import repro
from repro.faults import runtime as faults_runtime
from repro.obs import runtime as obs_runtime

#: Bump when the shape of cached partials changes incompatibly; stale
#: entries then simply never match and age out via ``cache clear``.
#: Schema 2: bundles carry a ``{"meta": ..., "partials": ...}`` envelope
#: recording trace provenance (application, session, digest, config and
#: plan fingerprints) so the study warehouse can compact a cache without
#: re-reading any trace.
CACHE_SCHEMA = 2

#: The code-version component of every cache key.
CODE_VERSION = f"{repro.__version__}/s{CACHE_SCHEMA}"

#: Sentinel returned by :meth:`ResultCache.get` on a miss, so ``None``
#: stays a cacheable value.
MISS = object()

_MAGIC = b"LAGCACHE"
_CHECKSUM_BYTES = 16
_ENTRY_SUFFIX = ".pkl"

_ENVELOPE_KEYS = frozenset({"meta", "partials"})


def bundle_envelope(
    partials: Dict[str, Any], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Wrap fused-pass ``partials`` with provenance ``meta`` for storage.

    ``meta`` records where the bundle came from (application, session
    id, trace digest, config/plan fingerprints, analysis names) so the
    study warehouse can compact a cache directory into queryable rows
    without touching the original traces.
    """
    return {"meta": dict(meta or {}), "partials": partials}


def bundle_parts(
    value: Any,
) -> Tuple[Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """``(meta, partials)`` from a stored bundle value.

    Schema-2 envelopes yield their recorded meta; a pre-envelope raw
    ``{analysis: partial}`` dict (only reachable through hand-rolled
    keys — schema-1 keys no longer match) yields ``(None, value)``. A
    value that is not a bundle at all yields ``(None, None)``.
    """
    if not isinstance(value, dict):
        return None, None
    if set(value) == _ENVELOPE_KEYS and isinstance(value["partials"], dict):
        meta = value["meta"]
        return (meta if isinstance(meta, dict) else None), value["partials"]
    return None, value


@dataclass(frozen=True)
class BundleRecord:
    """One stored fused bundle, as yielded by :meth:`ResultCache.iter_bundles`."""

    key: str
    """The content-address (filename stem) of the bundle entry."""
    meta: Optional[Dict[str, Any]]
    """Provenance envelope, or ``None`` for pre-envelope bundles."""
    partials: Dict[str, Any]
    """The fused pass's ``{analysis_name: partial}`` payload."""


def default_cache_dir() -> Path:
    """The cache root honoring ``LAGALYZER_CACHE_DIR``."""
    env = os.environ.get("LAGALYZER_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "lagalyzer"


def config_fingerprint(config: Any) -> str:
    """Stable hex fingerprint of an analysis configuration.

    Relies on the config having a deterministic ``repr`` (true for the
    frozen :class:`~repro.core.analyzer.AnalysisConfig` dataclass); the type
    name is folded in so two config classes never collide.
    """
    text = f"{type(config).__module__}.{type(config).__qualname__}:{config!r}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Counters for one cache (this process plus the persisted totals)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discarded: int = 0
    """Entries dropped because they failed the integrity check."""
    write_errors: int = 0
    """Stores that failed (disk full, permissions) and were skipped."""
    read_errors: int = 0
    """Reads that failed below the integrity check (IO errors, entries
    that passed their checksum but would not unpickle)."""
    bundle_hits: int = 0
    """Fused-bundle probes served from ``bundles/``."""
    bundle_misses: int = 0
    """Fused-bundle probes that fell back to per-analysis entries."""
    bundle_stores: int = 0
    """Fused bundles written after a bundle probe missed."""

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            stores=self.stores + other.stores,
            discarded=self.discarded + other.discarded,
            write_errors=self.write_errors + other.write_errors,
            read_errors=self.read_errors + other.read_errors,
            bundle_hits=self.bundle_hits + other.bundle_hits,
            bundle_misses=self.bundle_misses + other.bundle_misses,
            bundle_stores=self.bundle_stores + other.bundle_stores,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "discarded": self.discarded,
            "write_errors": self.write_errors,
            "read_errors": self.read_errors,
            "bundle_hits": self.bundle_hits,
            "bundle_misses": self.bundle_misses,
            "bundle_stores": self.bundle_stores,
        }


class ResultCache:
    """A content-addressed pickle store with integrity checking.

    Thread/process safety model: entries are immutable once written
    (writes go through a temp file + atomic rename), so concurrent
    readers and writers can only race benignly — at worst the same
    entry is computed twice. The persisted counters are merged with a
    read-modify-write on :meth:`flush_stats`; counts lost to a rare
    concurrent flush are cosmetic.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    @staticmethod
    def entry_key(
        trace_digest: str,
        config_fingerprint: str,
        analysis: str,
        code_version: str = CODE_VERSION,
    ) -> str:
        """The content address of one ``map_trace`` result."""
        text = "\n".join((trace_digest, config_fingerprint, analysis, code_version))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @staticmethod
    def bundle_key(
        trace_digest: str,
        config_fingerprint: str,
        plan_fingerprint: str,
        code_version: str = CODE_VERSION,
    ) -> str:
        """The content address of one fused pass's partial bundle.

        Keyed by the **plan** fingerprint (the deduplicated analysis
        set, see :func:`repro.core.plan.plan_fingerprint`) instead of a
        single analysis name; the ``bundle`` marker keeps the key space
        disjoint from per-analysis entries even under hash truncation.
        """
        text = "\n".join(
            ("bundle", trace_digest, config_fingerprint, plan_fingerprint,
             code_version)
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _objects_dir(self) -> Path:
        return self.root / "objects"

    def _bundles_dir(self) -> Path:
        return self.root / "bundles"

    def _path_for(self, key: str) -> Path:
        return self._objects_dir() / key[:2] / (key + _ENTRY_SUFFIX)

    def _bundle_path_for(self, key: str) -> Path:
        return self._bundles_dir() / key[:2] / (key + _ENTRY_SUFFIX)

    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    # ------------------------------------------------------------------
    # Get / put
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        Unreadable, truncated, or checksum-failing entries are deleted
        and reported as misses — corruption is never fatal. An absent
        entry is an ordinary miss; an entry that *exists* but cannot be
        read (IO error) additionally counts ``cache.read_errors`` and
        warns, because that usually means failing storage, not a cold
        cache.
        """
        path = self._path_for(key)
        try:
            faults_runtime.check("cache.read", key=key)
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            obs_runtime.count("cache.misses")
            return MISS
        except OSError as error:
            self.stats.read_errors += 1
            self.stats.misses += 1
            obs_runtime.count("cache.read_errors")
            obs_runtime.count("cache.misses")
            warnings.warn(
                f"result cache read failed for {key[:12]}… under "
                f"{self.root}: {error} — treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return MISS
        blob = faults_runtime.filter_bytes("cache.read", key, blob)
        value = self._decode(blob, key)
        if value is MISS:
            self.stats.discarded += 1
            self.stats.misses += 1
            obs_runtime.count("cache.discarded")
            obs_runtime.count("cache.misses")
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.stats.hits += 1
        obs_runtime.count("cache.hits")
        return value[0]

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically.

        Write failures (disk full, permission denied, a file squatting
        on the shard directory path) never propagate: the cache is an
        optimization, so a failed store warns, bumps the
        ``cache.write_errors`` obs counter, and lets the run continue
        uncached.
        """
        with obs_runtime.maybe_span("cache.put"):
            try:
                self._put(key, value)
            except OSError as error:
                self.stats.write_errors += 1
                obs_runtime.count("cache.write_errors")
                warnings.warn(
                    f"result cache write failed for {key[:12]}… under "
                    f"{self.root}: {error} — continuing uncached",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
        self.stats.stores += 1
        obs_runtime.count("cache.stores")

    def get_bundle(self, key: str) -> Any:
        """The cached fused-partial bundle for ``key``, or :data:`MISS`.

        Same integrity/robustness model as :meth:`get`, counted under
        the ``bundle_*`` statistics instead — ``engine cache stats``
        reports the two entry populations separately.
        """
        path = self._bundle_path_for(key)
        try:
            faults_runtime.check("cache.read", key=key)
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats.bundle_misses += 1
            obs_runtime.count("cache.bundle_misses")
            return MISS
        except OSError as error:
            self.stats.read_errors += 1
            self.stats.bundle_misses += 1
            obs_runtime.count("cache.read_errors")
            obs_runtime.count("cache.bundle_misses")
            warnings.warn(
                f"bundle cache read failed for {key[:12]}… under "
                f"{self.root}: {error} — treating as a miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return MISS
        blob = faults_runtime.filter_bytes("cache.read", key, blob)
        value = self._decode(blob, key)
        if value is MISS:
            self.stats.discarded += 1
            self.stats.bundle_misses += 1
            obs_runtime.count("cache.discarded")
            obs_runtime.count("cache.bundle_misses")
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.stats.bundle_hits += 1
        obs_runtime.count("cache.bundle_hits")
        return value[0]

    def put_bundle(self, key: str, value: Any) -> None:
        """Store a fused-partial bundle under ``key`` atomically.

        Like :meth:`put`, a write failure warns, counts
        ``cache.write_errors``, and lets the run continue uncached.
        """
        with obs_runtime.maybe_span("cache.put_bundle"):
            try:
                self._write_entry(self._bundle_path_for(key), key, value)
            except OSError as error:
                self.stats.write_errors += 1
                obs_runtime.count("cache.write_errors")
                warnings.warn(
                    f"bundle cache write failed for {key[:12]}… under "
                    f"{self.root}: {error} — continuing uncached",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
        self.stats.bundle_stores += 1
        obs_runtime.count("cache.bundle_stores")

    def _put(self, key: str, value: Any) -> None:
        self._write_entry(self._path_for(key), key, value)

    def _write_entry(self, path: Path, key: str, value: Any) -> None:
        faults_runtime.check("cache.write", key=key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        checksum = hashlib.sha256(payload).digest()[:_CHECKSUM_BYTES]
        blob = _MAGIC + checksum + payload
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=_ENTRY_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _decode(self, blob: bytes, key: str = "") -> Any:
        """``(value,)`` on success, :data:`MISS` on corruption.

        An entry that passes its checksum but still fails to unpickle
        (schema drift, an unimportable class) is *not* silently
        swallowed: it warns, counts ``cache.read_errors``, and reads as
        a miss. Interpreter-level failures — ``KeyboardInterrupt``,
        ``SystemExit``, ``MemoryError``, ``RecursionError`` — re-raise:
        they signal the process, not the entry.
        """
        header = len(_MAGIC) + _CHECKSUM_BYTES
        if len(blob) < header or not blob.startswith(_MAGIC):
            return MISS
        checksum = blob[len(_MAGIC) : header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest()[:_CHECKSUM_BYTES] != checksum:
            return MISS
        try:
            return (pickle.loads(payload),)
        except (KeyboardInterrupt, SystemExit, MemoryError, RecursionError):
            raise
        except Exception as error:
            self.stats.read_errors += 1
            obs_runtime.count("cache.read_errors")
            warnings.warn(
                f"cache entry {key[:12]}… passed its checksum but failed "
                f"to unpickle ({error!r}) — discarding and recomputing",
                RuntimeWarning,
                stacklevel=3,
            )
            return MISS

    # ------------------------------------------------------------------
    # Maintenance and introspection
    # ------------------------------------------------------------------

    @staticmethod
    def _entries_under(root: Path) -> Iterator[Path]:
        if not root.is_dir():
            return
        for shard in sorted(root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == _ENTRY_SUFFIX and not entry.name.startswith("."):
                    yield entry

    def _entries(self) -> Iterator[Path]:
        return self._entries_under(self._objects_dir())

    def _bundle_entries(self) -> Iterator[Path]:
        return self._entries_under(self._bundles_dir())

    def iter_bundles(self) -> Iterator[BundleRecord]:
        """Every stored fused bundle, in deterministic key order.

        This is the supported iteration surface for consumers like the
        study warehouse compactor — the shard layout under ``bundles/``
        is an implementation detail. Entries are yielded sorted by key
        (ascending hex, which matches the sorted shard/file walk), so
        two sweeps of the same cache always see the same sequence.

        Robustness matches :meth:`get_bundle`: unreadable, corrupt, or
        non-bundle entries are discarded (counted, unlinked where
        possible) and skipped, never fatal.
        """
        for path in self._bundle_entries():
            key = path.stem
            try:
                faults_runtime.check("cache.read", key=key)
                blob = path.read_bytes()
            except OSError as error:
                if not isinstance(error, FileNotFoundError):
                    self.stats.read_errors += 1
                    obs_runtime.count("cache.read_errors")
                    warnings.warn(
                        f"bundle sweep read failed for {key[:12]}… under "
                        f"{self.root}: {error} — skipping",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
            blob = faults_runtime.filter_bytes("cache.read", key, blob)
            value = self._decode(blob, key)
            if value is MISS:
                self.stats.discarded += 1
                obs_runtime.count("cache.discarded")
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            meta, partials = bundle_parts(value[0])
            if partials is None:
                self.stats.discarded += 1
                obs_runtime.count("cache.discarded")
                continue
            yield BundleRecord(key=key, meta=meta, partials=partials)

    def entry_count(self) -> int:
        """Legacy per-analysis entries (``objects/``), bundles excluded."""
        return sum(1 for _ in self._entries())

    def bundle_count(self) -> int:
        """Fused-bundle entries (``bundles/``)."""
        return sum(1 for _ in self._bundle_entries())

    @staticmethod
    def _bytes_of(entries: Iterator[Path]) -> int:
        total = 0
        for entry in entries:
            try:
                total += entry.stat().st_size
            except OSError:
                pass
        return total

    def total_bytes(self) -> int:
        """Bytes held by legacy per-analysis entries, bundles excluded."""
        return self._bytes_of(self._entries())

    def bundle_bytes(self) -> int:
        """Bytes held by fused-bundle entries."""
        return self._bytes_of(self._bundle_entries())

    def clear(self) -> int:
        """Delete every entry — per-analysis and bundle alike — plus the
        counters. Returns entries removed."""
        removed = 0
        for entry in list(self._entries()) + list(self._bundle_entries()):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self._stats_path().unlink()
        except OSError:
            pass
        return removed

    # ------------------------------------------------------------------
    # Persistent counters
    # ------------------------------------------------------------------

    def flush_stats(self) -> CacheStats:
        """Merge this process's counters into ``stats.json``.

        Returns the merged cumulative totals; in-process counters reset
        so repeated flushes don't double count. Like :meth:`put`, a
        write failure warns and continues — losing a counter flush must
        not kill the analysis that produced the counters.
        """
        current = self.stats
        if not any(current.as_dict().values()):
            return self.persisted_stats()
        self.stats = CacheStats()
        total = self.persisted_stats().merge(current)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self._stats_path().with_suffix(".json.tmp")
            tmp.write_text(json.dumps(total.as_dict()), encoding="utf-8")
            os.replace(tmp, self._stats_path())
        except OSError as error:
            self.stats = self.stats.merge(current)  # keep counters for a later flush
            obs_runtime.count("cache.write_errors")
            warnings.warn(
                f"cache stats flush failed under {self.root}: {error} — "
                f"continuing",
                RuntimeWarning,
                stacklevel=2,
            )
        return total

    def persisted_stats(self) -> CacheStats:
        """The cumulative counters previously flushed to disk.

        Lenient: a missing or corrupt ``stats.json`` reads as all
        zeros. Callers that must distinguish those cases (the CLI's
        ``engine cache stats``) use :meth:`persisted_stats_status`.
        """
        return self.persisted_stats_status()[0]

    def persisted_stats_status(self) -> Tuple[CacheStats, str]:
        """``(stats, status)`` — status is ``"ok"``, ``"missing"``
        (no ``stats.json`` yet), or ``"corrupt"`` (file exists but is
        unreadable or not a counter mapping; stats read as zeros)."""
        try:
            text = self._stats_path().read_text(encoding="utf-8")
        except FileNotFoundError:
            return CacheStats(), "missing"
        except OSError:
            return CacheStats(), "corrupt"
        try:
            raw = json.loads(text)
            if not isinstance(raw, dict):
                raise ValueError(f"expected a JSON object, got {type(raw).__name__}")
            return (
                CacheStats(
                    hits=int(raw.get("hits", 0)),
                    misses=int(raw.get("misses", 0)),
                    stores=int(raw.get("stores", 0)),
                    discarded=int(raw.get("discarded", 0)),
                    write_errors=int(raw.get("write_errors", 0)),
                    read_errors=int(raw.get("read_errors", 0)),
                    bundle_hits=int(raw.get("bundle_hits", 0)),
                    bundle_misses=int(raw.get("bundle_misses", 0)),
                    bundle_stores=int(raw.get("bundle_stores", 0)),
                ),
                "ok",
            )
        except (TypeError, ValueError):
            return CacheStats(), "corrupt"

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, {self.stats})"
