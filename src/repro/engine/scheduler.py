"""Process-pool scheduling with a guaranteed serial fallback.

The engine parallelizes *embarrassingly parallel* units — one
``map_trace`` per session trace, one application per study task — with
a :class:`~concurrent.futures.ProcessPoolExecutor`. Everything here
degrades to the serial path whenever a pool is not worth it
(``workers=1``, a single item) or not available (restricted
environments without working process spawning or shared semaphores), so
callers never need a fallback of their own and results are identical
either way.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.core.errors import AnalysisError
from repro.obs import runtime as obs_runtime

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob.

    ``None`` or ``0`` means "one per CPU"; anything below zero is a
    configuration error.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise AnalysisError(f"workers must be >= 0, got {workers}")
    return workers


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """``[func(x) for x in items]``, fanned out over processes.

    ``func`` and every item must be picklable (``func`` a module-level
    callable or a :func:`functools.partial` of one). Result order
    matches item order. Exceptions raised by ``func`` propagate; only
    *pool infrastructure* failures (no process support, broken worker
    transport) trigger the serial fallback.
    """
    items = list(items)
    workers = min(resolve_workers(workers), len(items))
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    obs_runtime.set_gauge("engine.workers", workers)
    pool = _make_pool(workers)
    if pool is None:
        obs_runtime.count("engine.pool_fallbacks")
        return [func(item) for item in items]
    from concurrent.futures.process import BrokenProcessPool

    with obs_runtime.maybe_span(
        "engine.parallel_map", items=len(items), workers=workers
    ):
        try:
            with pool:
                return list(pool.map(func, items, chunksize=chunksize))
        except BrokenProcessPool:
            # A worker died without raising (e.g. the platform kills
            # subprocesses); redo the whole batch serially.
            obs_runtime.count("engine.pool_fallbacks")
            return [func(item) for item in items]


def _make_pool(workers: int):
    """A process pool, or None when the platform can't provide one."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return None
