"""Hardened process-pool scheduling: retry, timeouts, quarantine.

The engine parallelizes *embarrassingly parallel* units — one
``map_trace`` per session trace, one application per study task — with
a :class:`~concurrent.futures.ProcessPoolExecutor`. This module is the
layer that keeps those units alive under failure:

- **Serial fallback** — everything degrades to the serial path whenever
  a pool is not worth it (``workers=1``, a single item) or not
  available (restricted environments), so callers never need a
  fallback of their own and results are identical either way.
- **Per-task retry** — transient failures (IO errors, injected crashes,
  timeouts) are retried with exponential backoff and *deterministic*
  jitter, up to :attr:`RetryPolicy.max_attempts`.
- **Per-call timeouts** — :func:`run_tasks` bounds each task's result
  wait; a hung worker trips the timeout, the pool is torn down, and the
  unfinished work re-runs serially.
- **Pool-break recovery** — a worker that dies without raising (OOM
  kill, hard crash) breaks the whole pool; completed results are kept
  and only the unfinished tasks re-execute serially.
- **Quarantine** — tasks that fail *deterministically* (a typed trace
  damage error, or a transient error that survived every retry) can be
  quarantined — reported as a failed :class:`TaskOutcome` instead of
  aborting the batch — when the caller opts in.

Fault injection (:mod:`repro.faults`) plugs in at the task wrapper:
the ambient plan is shipped inside each task payload so worker
processes make the same deterministic decisions as the parent.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.errors import AnalysisError
from repro.faults import runtime as faults_runtime
from repro.faults.injector import TransientFault
from repro.faults.plan import hash_unit
from repro.obs import runtime as obs_runtime

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob.

    ``None`` or ``0`` means "one per CPU"; anything below zero is a
    configuration error.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise AnalysisError(f"workers must be >= 0, got {workers}")
    return workers


@dataclass(frozen=True)
class RetryPolicy:
    """How transient task failures are retried.

    Backoff for retry round ``k`` (1-based) is
    ``min(base_delay_s * backoff_factor**(k-1), max_delay_s)`` scaled
    by ``1 + jitter * u`` where ``u`` is a deterministic hash draw —
    re-running the same batch sleeps the same amounts.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff_factor: float = 2.0
    jitter: float = 0.5
    retryable: Tuple[type, ...] = (OSError, TransientFault, TimeoutError)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def delay_for(self, round_no: int, token: Any = 0) -> float:
        if round_no <= 0 or self.base_delay_s <= 0:
            return 0.0
        delay = min(
            self.base_delay_s * self.backoff_factor ** (round_no - 1),
            self.max_delay_s,
        )
        return delay * (1.0 + self.jitter * hash_unit(0, "retry", token, round_no))


#: parallel_map semantics: no retries, errors propagate on first failure.
_NO_RETRY = RetryPolicy(max_attempts=1, base_delay_s=0.0)


@dataclass
class TaskOutcome:
    """The terminal state of one task in a :func:`run_tasks` batch."""

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    attempts: int = 0
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.quarantined


def _call_one(spec: Tuple[Callable, Any, int, int, Optional[dict]]) -> Any:
    """Execute one task under its fault-injection context.

    Module-level so it pickles into workers; the plan dict rides along
    in the spec and :class:`~repro.faults.runtime.task_scope` rebuilds
    the injector in a fresh worker process.
    """
    func, item, index, attempt, plan_dict = spec
    with faults_runtime.task_scope(plan_dict, index=index, attempt=attempt):
        faults_runtime.check("engine.task", key=index)
        return func(item)


def _settle_failure(
    index: int,
    error: BaseException,
    attempts: Sequence[int],
    outcomes: List[Optional[TaskOutcome]],
    still_pending: List[int],
    retry: RetryPolicy,
    quarantine_types: Tuple[type, ...],
) -> None:
    """Route one task failure: quarantine, retry, or re-raise."""
    if quarantine_types and isinstance(error, quarantine_types):
        # Deterministic damage: retrying cannot help; quarantine now.
        outcomes[index] = TaskOutcome(
            index, error=error, attempts=attempts[index], quarantined=True
        )
        obs_runtime.count("engine.quarantined")
        return
    if retry.is_retryable(error):
        if attempts[index] < retry.max_attempts:
            obs_runtime.count("engine.retries")
            still_pending.append(index)
            return
        if quarantine_types:
            # Retries exhausted but the caller asked never to abort.
            outcomes[index] = TaskOutcome(
                index, error=error, attempts=attempts[index],
                quarantined=True,
            )
            obs_runtime.count("engine.quarantined")
            return
    raise error


def _serial_round(
    func: Callable[[T], R],
    items: Sequence[T],
    pending: Sequence[int],
    attempts: List[int],
    outcomes: List[Optional[TaskOutcome]],
    retry: RetryPolicy,
    quarantine_types: Tuple[type, ...],
    plan_dict: Optional[dict],
) -> List[int]:
    still_pending: List[int] = []
    for index in pending:
        attempt = attempts[index]
        attempts[index] += 1
        try:
            value = _call_one((func, items[index], index, attempt, plan_dict))
        except Exception as error:
            _settle_failure(
                index, error, attempts, outcomes, still_pending,
                retry, quarantine_types,
            )
        else:
            outcomes[index] = TaskOutcome(
                index, value=value, attempts=attempts[index]
            )
    return still_pending


def _pool_round(
    func: Callable[[T], R],
    items: Sequence[T],
    pending: Sequence[int],
    attempts: List[int],
    outcomes: List[Optional[TaskOutcome]],
    workers: int,
    timeout: Optional[float],
    retry: RetryPolicy,
    quarantine_types: Tuple[type, ...],
    plan_dict: Optional[dict],
) -> Tuple[List[int], bool]:
    """One pooled attempt over ``pending``.

    Returns ``(still_pending, pool_usable)``; a broken or timed-out
    pool flips ``pool_usable`` off so the caller finishes serially.
    """
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    pool = _make_pool(min(workers, len(pending)))
    if pool is None:
        obs_runtime.count("engine.pool_fallbacks")
        return list(pending), False
    try:
        faults_runtime.check("engine.pool")
    except BrokenProcessPool:
        pool.shutdown(wait=True)
        obs_runtime.count("engine.pool_breaks")
        return list(pending), False

    still_pending: List[int] = []
    broke = False
    obs_runtime.set_gauge("engine.workers", min(workers, len(pending)))
    with obs_runtime.maybe_span(
        "engine.parallel_map", items=len(pending), workers=workers
    ):
        futures: List[Tuple[int, Any]] = []
        try:
            for index in pending:
                attempt = attempts[index]
                attempts[index] += 1
                futures.append(
                    (
                        index,
                        pool.submit(
                            _call_one,
                            (func, items[index], index, attempt, plan_dict),
                        ),
                    )
                )
        except BrokenProcessPool:
            broke = True
            submitted = {index for index, _ in futures}
            for index in pending:
                if index not in submitted:
                    still_pending.append(index)
        try:
            for index, future in futures:
                if broke:
                    # Harvest whatever finished before the break; the
                    # rest re-runs serially (attempt charge reverted
                    # for tasks that never started).
                    if future.done() and not future.cancelled():
                        try:
                            value = future.result()
                        except BrokenProcessPool:
                            still_pending.append(index)
                        except Exception as error:
                            _settle_failure(
                                index, error, attempts, outcomes,
                                still_pending, retry, quarantine_types,
                            )
                        else:
                            outcomes[index] = TaskOutcome(
                                index, value=value, attempts=attempts[index]
                            )
                    else:
                        attempts[index] -= 1
                        still_pending.append(index)
                    continue
                try:
                    value = future.result(timeout=timeout)
                except (FuturesTimeout, TimeoutError):
                    # A hung worker: count it, abandon the pool, and
                    # let every unfinished task re-run serially.
                    obs_runtime.count("engine.timeouts")
                    obs_runtime.count("engine.retries")
                    broke = True
                    still_pending.append(index)
                except BrokenProcessPool:
                    obs_runtime.count("engine.pool_breaks")
                    obs_runtime.count("engine.retries")
                    broke = True
                    still_pending.append(index)
                except Exception as error:
                    _settle_failure(
                        index, error, attempts, outcomes, still_pending,
                        retry, quarantine_types,
                    )
                else:
                    outcomes[index] = TaskOutcome(
                        index, value=value, attempts=attempts[index]
                    )
        finally:
            if broke:
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True)
    return still_pending, not broke


def run_tasks(
    func: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = 1,
    timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    quarantine_types: Tuple[type, ...] = (),
) -> List[TaskOutcome]:
    """Run ``func`` over ``items`` with retries, timeouts, and quarantine.

    Args:
        func: a module-level picklable callable.
        workers: process fan-out (``1`` serial, ``0``/``None`` per-CPU).
        timeout: per-task result wait in seconds (pooled path only; the
            serial path cannot interrupt a running call). A timeout
            tears the pool down and re-runs unfinished tasks serially.
        retry: transient-failure policy; defaults to 3 attempts with
            exponential backoff and deterministic jitter.
        quarantine_types: exception types that mark a task
            *deterministically* failed — its outcome is returned with
            ``quarantined=True`` instead of raising. When non-empty,
            exhausted retries also quarantine rather than abort.

    Returns:
        One :class:`TaskOutcome` per item, in item order. Errors that
        are neither retryable nor quarantinable propagate.
    """
    items = list(items)
    retry = retry or RetryPolicy()
    outcomes: List[Optional[TaskOutcome]] = [None] * len(items)
    attempts = [0] * len(items)
    pending = list(range(len(items)))
    plan_dict = faults_runtime.plan_snapshot()
    pool_usable = (
        min(resolve_workers(workers), len(items)) > 1 and len(items) > 1
    )
    round_no = 0
    while pending:
        if round_no > 0:
            delay = retry.delay_for(round_no, token=tuple(pending))
            if delay > 0:
                time.sleep(delay)
        if pool_usable and len(pending) > 1:
            pending, pool_usable = _pool_round(
                func, items, pending, attempts, outcomes,
                resolve_workers(workers), timeout, retry,
                quarantine_types, plan_dict,
            )
        else:
            pending = _serial_round(
                func, items, pending, attempts, outcomes, retry,
                quarantine_types, plan_dict,
            )
        round_no += 1
    return outcomes  # type: ignore[return-value]


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """``[func(x) for x in items]``, fanned out over processes.

    ``func`` and every item must be picklable (``func`` a module-level
    callable or a :func:`functools.partial` of one). Result order
    matches item order. Exceptions raised by ``func`` propagate; only
    *pool infrastructure* failures (no process support, a worker dying
    without raising, a per-task timeout) trigger serial re-execution of
    the unfinished work. ``chunksize`` is accepted for backward
    compatibility and ignored (tasks are submitted individually so
    partial completion survives a pool break).
    """
    del chunksize
    outcomes = run_tasks(func, items, workers=workers, retry=_NO_RETRY)
    return [outcome.value for outcome in outcomes]


def _make_pool(workers: int):
    """A process pool, or None when the platform can't provide one."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        return None
