"""The parallel, cache-aware analysis engine.

:class:`AnalysisEngine` is the execution layer under the
:class:`~repro.core.analyzer.LagAlyzer` facade and the study runner. It
knows three tricks, all behind the uniform
:class:`~repro.core.analyses.Analysis` protocol:

1. **Fused map–reduce execution** — the requested analyses are
   compiled into one :class:`~repro.core.plan.AnalysisPlan` and every
   trace is mapped in **one fused pass** through a shared
   :class:`~repro.core.plan.StageContext` (episode split, pattern
   tallies computed once per trace, not once per analysis); the
   per-analysis partials are then merged with each analysis's
   ``reduce``, bit-identical to the serial ``summarize``.
2. **Process-pool fan-out** — with ``workers > 1`` the fused passes for
   different traces run in parallel processes, one task per *trace*
   (columns pickled to a worker once, not once per analysis; serial
   fallback when a pool is unavailable; see
   :mod:`repro.engine.scheduler`).
3. **Content-addressed caching** — the fused pass's whole partial
   bundle is stored keyed by (trace digest, config fingerprint, plan
   fingerprint, code version), alongside legacy per-analysis entries
   that keep serving lookups of any subset, so re-analyzing unchanged
   traces skips the map work entirely (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analyses import REGISTRY, get_analysis
from repro.core.errors import AnalysisError, NestingError, TraceFormatError
from repro.core.plan import AnalysisPlan, build_plan
from repro.core.trace import Trace
from repro.engine.cache import (
    MISS,
    ResultCache,
    bundle_envelope,
    bundle_parts,
    config_fingerprint,
)
from repro.engine.scheduler import RetryPolicy, resolve_workers, run_tasks
from repro.faults import runtime as faults_runtime
from repro.lila.digest import trace_digest
from repro.obs import Observer
from repro.obs import runtime as obs_runtime

#: Exception types that mark a trace as *deterministically* damaged:
#: retrying cannot help, so the engine quarantines the trace instead of
#: aborting the whole batch.
QUARANTINE_ERRORS: Tuple[type, ...] = (TraceFormatError, NestingError)


@dataclass(frozen=True)
class QuarantinedTrace:
    """One trace the engine gave up on (and why)."""

    index: int
    """Position of the trace in the batch it was submitted with."""
    application: str
    session_id: str
    error: str
    """``repr`` of the terminal exception (picklable by construction)."""

    def describe(self) -> str:
        return f"{self.application}/{self.session_id}: {self.error}"


def _run_map(name: str, trace: Trace, config: Any) -> Any:
    """One ``map_trace`` call, spanned/profiled under the ambient observer."""
    with obs_runtime.maybe_span(
        "analysis.map", metric="engine.map_ms", analysis=name
    ):
        with obs_runtime.profiled(name):
            return get_analysis(name).map_trace(trace, config)


def _map_task(
    task: Union[
        Tuple[Trace, Tuple[str, ...], Any],
        Tuple[Trace, Tuple[str, ...], Any, Optional[Tuple[int, int]]],
    ]
) -> List[Any]:
    """Worker: the missing partials of one trace (module-level for pickling).

    Executes one **fused pass**: the names are compiled into an
    :class:`~repro.core.plan.AnalysisPlan` whose operators all map
    through one shared :class:`~repro.core.plan.StageContext`, so the
    episode split and pattern tallies are computed once for the whole
    task instead of once per analysis. A four-tuple task carries an
    intra-trace ``(index, count)`` shard: the pass then maps only that
    contiguous row-range of the trace and the dispatcher merges the
    shard partials back together.
    """
    trace, names, config = task[0], task[1], task[2]
    shard = task[3] if len(task) > 3 else None
    faults_runtime.check(
        "trace.map", key=f"{trace.application}/{trace.metadata.session_id}"
    )
    partials = build_plan(names).execute(trace, config, shard=shard)
    return [partials[name] for name in names]


def _obs_map_task(
    task: Tuple[Any, ...]
) -> Tuple[List[Any], Optional[dict]]:
    """Worker: ``_map_task`` plus this process's observability snapshot.

    In a fresh worker process a local observer is installed for the
    task and its snapshot shipped back for re-parented merging; when an
    ambient observer already exists (serial fallback in the dispatching
    process) spans land there directly and no snapshot is returned.
    A five-tuple task carries an intra-trace shard in the last slot.
    """
    trace, names, config, profile = task[0], task[1], task[2], task[3]
    shard = task[4] if len(task) > 4 else None
    if obs_runtime.current() is not None:
        return _map_task((trace, names, config, shard)), None
    worker = Observer(profile=profile)
    with obs_runtime.installed(worker):
        with worker.span(
            "engine.worker_task", analyses=len(names), application=trace.application
        ):
            partials = _map_task((trace, names, config, shard))
    return partials, worker.snapshot()


def _load_task(entry: Any) -> Trace:
    """Worker: load one trace from a file path or an open trace source."""
    from repro.lila.autodetect import load_trace
    from repro.lila.source import TraceSource, build_trace

    if isinstance(entry, TraceSource):
        return build_trace(entry)
    return load_trace(entry)


def _obs_load_task(task: Tuple[Any, bool]) -> Tuple[Trace, Optional[dict]]:
    """Worker: ``_load_task`` plus the worker's observability snapshot."""
    entry, profile = task
    if obs_runtime.current() is not None:
        return _load_task(entry), None
    worker = Observer(profile=profile)
    with obs_runtime.installed(worker):
        trace = _load_task(entry)
    return trace, worker.snapshot()


def _entry_label(entry: Any) -> str:
    """Quarantine label of one ``load_traces`` entry."""
    from repro.lila.source import TraceSource

    if isinstance(entry, TraceSource):
        return entry.label()
    return Path(entry).name


class AnalysisEngine:
    """Runs registered analyses over traces, in parallel, through a cache.

    Args:
        workers: process count for fan-out; ``1`` (the default) runs
            everything serially in-process, ``0``/``None`` means one
            worker per CPU.
        cache_dir: root of the on-disk result cache; defaults to
            ``~/.cache/lagalyzer`` (or ``LAGALYZER_CACHE_DIR``).
        use_cache: disable the cache entirely with ``False``.
        obs: an :class:`~repro.obs.Observer` to record this engine's
            spans and metrics into; defaults to whatever observer is
            ambiently installed (none = observation disabled).
        retry: transient-failure policy for map tasks; defaults to
            3 attempts with exponential backoff and deterministic
            jitter (see :class:`~repro.engine.scheduler.RetryPolicy`).
        task_timeout: per-task result wait in seconds when fanning out
            to a pool; a hung worker trips this, the pool is torn
            down, and unfinished tasks re-run serially.
        shards: intra-trace shard count; ``None``/``1`` (the default)
            maps each trace in one fused pass, ``n > 1`` splits every
            columnar-backed trace's pass into ``n`` contiguous
            row-range shard tasks whose partials are merged back with
            :meth:`~repro.core.plan.AnalysisPlan.merge_shards`,
            byte-identical to the unsharded pass. Lets a single large
            trace scale across workers. Object-graph traces ignore the
            knob and map whole.

    Traces whose map fails *deterministically* (typed trace damage,
    or a transient error that survived every retry) are dropped from
    the batch and recorded on :attr:`quarantined` instead of aborting
    the run; the obs counters ``engine.retries`` / ``engine.timeouts``
    / ``engine.quarantined`` record how hard the engine had to fight.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        cache: Optional[ResultCache] = None,
        obs: Optional[Observer] = None,
        retry: Optional[RetryPolicy] = None,
        task_timeout: Optional[float] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.workers = workers
        self.obs = obs
        self.retry = retry
        self.task_timeout = task_timeout
        if shards is not None and shards < 1:
            raise AnalysisError(f"shards must be >= 1, got {shards!r}")
        self.shards = shards
        #: Traces dropped by the most recent map/load call.
        self.quarantined: List[QuarantinedTrace] = []
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif use_cache:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None

    # ------------------------------------------------------------------
    # Mapping (with cache)
    # ------------------------------------------------------------------

    def _entry_key(self, analysis_name: str, trace: Trace, config: Any) -> str:
        return ResultCache.entry_key(
            trace_digest(trace), config_fingerprint(config), analysis_name
        )

    def map_trace(self, analysis_name: str, trace: Trace, config: Any) -> Any:
        """One analysis partial for one trace, via the cache."""
        get_analysis(analysis_name)
        with obs_runtime.installed(self.obs):
            if self.cache is None:
                return _run_map(analysis_name, trace, config)
            key = self._entry_key(analysis_name, trace, config)
            value = self.cache.get(key)
            if value is not MISS:
                return value
            value = _run_map(analysis_name, trace, config)
            self.cache.put(key, value)
            return value

    def map_traces(
        self,
        analysis_names: Sequence[str],
        traces: Sequence[Trace],
        config: Any,
    ) -> Dict[str, List[Any]]:
        """Partials for every (analysis, trace) pair, in trace order.

        Cache hits are satisfied up front; only the missing partials are
        fanned out to worker processes, grouped by trace so each trace
        is pickled to a worker at most once.
        """
        for name in analysis_names:
            get_analysis(name)
        with obs_runtime.installed(self.obs):
            return self._map_traces(analysis_names, traces, config)

    def _map_traces(
        self,
        analysis_names: Sequence[str],
        traces: Sequence[Trace],
        config: Any,
    ) -> Dict[str, List[Any]]:
        obs = obs_runtime.current()
        self.quarantined = []
        results: Dict[str, List[Any]] = {
            name: [None] * len(traces) for name in analysis_names
        }
        fingerprint = config_fingerprint(config) if self.cache else ""
        # Fused-bundle caching only pays off for multi-operator plans;
        # single-analysis calls keep their legacy per-entry behavior.
        plan: AnalysisPlan = build_plan(analysis_names)
        plan_fp = (
            plan.fingerprint()
            if self.cache is not None and len(plan.operators) > 1
            else ""
        )
        with obs_runtime.maybe_span(
            "engine.map_traces",
            analyses=len(analysis_names),
            traces=len(traces),
            workers=self.effective_workers,
        ) as dispatch_span:
            missing: List[Tuple[int, List[str]]] = []
            bundle_missed: List[int] = []
            with obs_runtime.maybe_span("engine.cache.probe"):
                for index, trace in enumerate(traces):
                    digest = trace_digest(trace) if self.cache else ""
                    if plan_fp:
                        stored = self.cache.get_bundle(
                            ResultCache.bundle_key(digest, fingerprint, plan_fp)
                        )
                        bundle = (
                            bundle_parts(stored)[1] if stored is not MISS else None
                        )
                        if bundle is not None and all(
                            name in bundle for name in analysis_names
                        ):
                            for name in analysis_names:
                                results[name][index] = bundle[name]
                            continue
                        bundle_missed.append(index)
                    names_missing: List[str] = []
                    for name in analysis_names:
                        if self.cache is None:
                            names_missing.append(name)
                            continue
                        key = ResultCache.entry_key(digest, fingerprint, name)
                        value = self.cache.get(key)
                        if value is MISS:
                            names_missing.append(name)
                        else:
                            results[name][index] = value
                    if names_missing:
                        missing.append((index, names_missing))
            if missing:
                # Expand each missing trace into its shard tasks. Only
                # columnar-backed traces shard; everything else maps
                # whole. Shards of one trace are contiguous in the task
                # list, so grouped outcomes arrive in shard order.
                shard_count = (
                    self.shards if self.shards and self.shards > 1 else 1
                )
                specs: List[
                    Tuple[int, Tuple[str, ...], Optional[Tuple[int, int]]]
                ] = []
                for index, names in missing:
                    store = getattr(traces[index], "columnar", None)
                    if shard_count > 1 and store is not None:
                        specs.extend(
                            (index, tuple(names), (part, shard_count))
                            for part in range(shard_count)
                        )
                    else:
                        specs.append((index, tuple(names), None))
                if obs is not None:
                    obs.metrics.inc("engine.tasks", len(specs))
                    sharded = sum(
                        1 for spec in specs if spec[2] is not None
                    )
                    if sharded:
                        obs.metrics.inc("engine.shards", sharded)
                    for index, _names, _shard in specs:
                        backing = getattr(
                            getattr(traces[index], "columnar", None),
                            "backing",
                            None,
                        )
                        if backing is not None:
                            # File-backed stores pickle as their path:
                            # these column bytes reach the worker by
                            # mmap, not through the task pipe.
                            obs.metrics.inc(
                                "store.zero_copy_bytes", backing.nbytes
                            )
                    profile = obs.profiler is not None
                    tasks: List[Any] = [
                        (traces[index], names, config, profile, shard)
                        for index, names, shard in specs
                    ]
                    task_func: Any = _obs_map_task
                    parent_id = (
                        dispatch_span.span_id
                        if dispatch_span is not None
                        else None
                    )
                else:
                    tasks = [
                        (traces[index], names, config, shard)
                        for index, names, shard in specs
                    ]
                    task_func = _map_task
                outcomes = run_tasks(
                    task_func,
                    tasks,
                    workers=self.workers,
                    timeout=self.task_timeout,
                    retry=self.retry,
                    quarantine_types=QUARANTINE_ERRORS,
                )
                failed: Dict[int, Any] = {}
                shard_partials: Dict[int, List[Dict[str, Any]]] = {}
                for (index, names, shard), outcome in zip(specs, outcomes):
                    if outcome.quarantined:
                        failed.setdefault(index, outcome.error)
                        continue
                    if obs is not None:
                        partials, snapshot = outcome.value
                        obs.absorb(snapshot, parent_id=parent_id)
                    else:
                        partials = outcome.value
                    shard_partials.setdefault(index, []).append(
                        dict(zip(names, partials))
                    )
                for index, names in missing:
                    if index in failed:
                        # Any failed shard poisons the whole trace —
                        # partial coverage would silently under-count.
                        trace = traces[index]
                        self.quarantined.append(
                            QuarantinedTrace(
                                index=index,
                                application=trace.application,
                                session_id=trace.metadata.session_id,
                                error=repr(failed[index]),
                            )
                        )
                        continue
                    parts = shard_partials[index]
                    merged = (
                        parts[0]
                        if len(parts) == 1
                        else build_plan(names).merge_shards(parts)
                    )
                    for name in names:
                        results[name][index] = merged[name]
                        if self.cache is not None:
                            key = ResultCache.entry_key(
                                trace_digest(traces[index]), fingerprint, name
                            )
                            self.cache.put(key, merged[name])
            if plan_fp:
                # Wherever the bundle probe missed, store the complete
                # bundle (legacy cache hits plus freshly computed
                # partials) so the next multi-analysis run over this
                # trace is served in one read.
                dead = {entry.index for entry in self.quarantined}
                for index in bundle_missed:
                    if index in dead:
                        continue
                    trace = traces[index]
                    digest = trace_digest(trace)
                    backing = getattr(
                        getattr(trace, "columnar", None), "backing", None
                    )
                    meta = {
                        "application": trace.application,
                        "session_id": trace.metadata.session_id,
                        "trace_digest": digest,
                        "config_fingerprint": fingerprint,
                        "plan_fingerprint": plan_fp,
                        "family": trace.metadata.extra.get("family", "gui"),
                        "analyses": sorted(analysis_names),
                        "threshold_ms": getattr(
                            config, "perceptible_threshold_ms", None
                        ),
                        "column_file": (
                            str(backing.path) if backing is not None else None
                        ),
                    }
                    self.cache.put_bundle(
                        ResultCache.bundle_key(digest, fingerprint, plan_fp),
                        bundle_envelope(
                            {name: results[name][index] for name in analysis_names},
                            meta,
                        ),
                    )
            if self.quarantined:
                # A quarantined trace contributes nothing, not even
                # partials another run left in the cache.
                dead = {entry.index for entry in self.quarantined}
                for name in analysis_names:
                    results[name] = [
                        partial
                        for index, partial in enumerate(results[name])
                        if index not in dead
                    ]
        return results

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def summarize(
        self,
        analysis_name: str,
        traces: Sequence[Trace],
        config: Any,
        perceptible_only: bool = False,
    ) -> Any:
        """The full summary of one analysis over ``traces``."""
        partials = self.map_traces([analysis_name], traces, config)[analysis_name]
        with obs_runtime.installed(self.obs):
            with obs_runtime.maybe_span(
                "engine.reduce", metric="engine.reduce_ms", analysis=analysis_name
            ):
                return get_analysis(analysis_name).reduce(
                    partials, perceptible_only=perceptible_only
                )

    def summarize_all(
        self,
        analysis_names: Sequence[str],
        traces: Sequence[Trace],
        config: Any,
    ) -> Dict[str, Any]:
        """Summaries of several analyses, sharing one map fan-out."""
        partial_lists = self.map_traces(analysis_names, traces, config)
        with obs_runtime.installed(self.obs):
            summaries: Dict[str, Any] = {}
            for name in analysis_names:
                with obs_runtime.maybe_span(
                    "engine.reduce", metric="engine.reduce_ms", analysis=name
                ):
                    summaries[name] = get_analysis(name).reduce(
                        partial_lists[name]
                    )
            return summaries

    # ------------------------------------------------------------------
    # Parallel trace loading
    # ------------------------------------------------------------------

    def load_traces(
        self,
        paths: Sequence[Any],
        on_error: str = "raise",
    ) -> List[Trace]:
        """Load traces, fanning the parsing out across workers.

        Args:
            paths: trace file paths and/or open
                :class:`~repro.lila.source.TraceSource` objects, freely
                mixed; each source streams straight into a columnar
                store without re-materializing an object tree.
            on_error: ``"raise"`` (default) propagates the first parse
                failure; ``"quarantine"`` skips unreadable/damaged
                files, records them on :attr:`quarantined`, and returns
                the traces that loaded.
        """
        from repro.lila.source import TraceSource
        if on_error not in ("raise", "quarantine"):
            raise AnalysisError(
                f"on_error must be 'raise' or 'quarantine', got {on_error!r}"
            )
        quarantine = QUARANTINE_ERRORS if on_error == "quarantine" else ()
        with obs_runtime.installed(self.obs):
            obs = obs_runtime.current()
            self.quarantined = []
            with obs_runtime.maybe_span(
                "engine.load_traces", files=len(paths)
            ) as load_span:
                entries: List[Any] = [
                    path if isinstance(path, TraceSource) else str(path)
                    for path in paths
                ]
                if obs is None:
                    task_func: Any = _load_task
                    tasks: List[Any] = entries
                else:
                    profile = obs.profiler is not None
                    task_func = _obs_load_task
                    tasks = [(entry, profile) for entry in entries]
                outcomes = run_tasks(
                    task_func,
                    tasks,
                    workers=self.workers,
                    timeout=self.task_timeout,
                    retry=self.retry,
                    quarantine_types=quarantine,
                )
                parent_id = (
                    load_span.span_id if load_span is not None else None
                )
                traces = []
                for index, outcome in enumerate(outcomes):
                    if outcome.quarantined:
                        self.quarantined.append(
                            QuarantinedTrace(
                                index=index,
                                application="",
                                session_id=_entry_label(paths[index]),
                                error=repr(outcome.error),
                            )
                        )
                        continue
                    if obs is None:
                        traces.append(outcome.value)
                    else:
                        trace, snapshot = outcome.value
                        obs.absorb(snapshot, parent_id=parent_id)
                        traces.append(trace)
                return traces

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def effective_workers(self) -> int:
        return resolve_workers(self.workers)

    def flush_cache_stats(self) -> None:
        """Persist this process's cache counters (no-op without a cache)."""
        if self.cache is not None:
            self.cache.flush_stats()

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return (
            f"AnalysisEngine(workers={self.workers!r}, cache={str(cache)!r}, "
            f"analyses={sorted(REGISTRY)})"
        )
