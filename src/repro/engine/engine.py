"""The parallel, cache-aware analysis engine.

:class:`AnalysisEngine` is the execution layer under the
:class:`~repro.core.api.LagAlyzer` facade and the study runner. It
knows three tricks, all behind the uniform
:class:`~repro.core.analyses.Analysis` protocol:

1. **Map–reduce execution** — per-trace ``map_trace`` partials are
   computed independently, then merged with the analysis's ``reduce``;
   the result is bit-identical to the serial ``summarize``.
2. **Process-pool fan-out** — with ``workers > 1`` the partials for
   different traces are computed in parallel processes (serial
   fallback when a pool is unavailable; see
   :mod:`repro.engine.scheduler`).
3. **Content-addressed caching** — each partial is stored on disk
   keyed by (trace digest, config fingerprint, analysis name, code
   version), so re-analyzing unchanged traces skips the map work
   entirely (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analyses import REGISTRY, get_analysis
from repro.core.trace import Trace
from repro.engine.cache import MISS, ResultCache, config_fingerprint
from repro.engine.scheduler import parallel_map, resolve_workers
from repro.lila.digest import trace_digest


def _map_task(task: Tuple[Trace, Tuple[str, ...], Any]) -> List[Any]:
    """Worker: the missing partials of one trace (module-level for pickling)."""
    trace, names, config = task
    return [get_analysis(name).map_trace(trace, config) for name in names]


def _load_task(path: str) -> Trace:
    """Worker: load one trace file."""
    from repro.lila.autodetect import load_trace

    return load_trace(path)


class AnalysisEngine:
    """Runs registered analyses over traces, in parallel, through a cache.

    Args:
        workers: process count for fan-out; ``1`` (the default) runs
            everything serially in-process, ``0``/``None`` means one
            worker per CPU.
        cache_dir: root of the on-disk result cache; defaults to
            ``~/.cache/lagalyzer`` (or ``LAGALYZER_CACHE_DIR``).
        use_cache: disable the cache entirely with ``False``.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.workers = workers
        if cache is not None:
            self.cache: Optional[ResultCache] = cache
        elif use_cache:
            self.cache = ResultCache(cache_dir)
        else:
            self.cache = None

    # ------------------------------------------------------------------
    # Mapping (with cache)
    # ------------------------------------------------------------------

    def _entry_key(self, analysis_name: str, trace: Trace, config: Any) -> str:
        return ResultCache.entry_key(
            trace_digest(trace), config_fingerprint(config), analysis_name
        )

    def map_trace(self, analysis_name: str, trace: Trace, config: Any) -> Any:
        """One analysis partial for one trace, via the cache."""
        analysis = get_analysis(analysis_name)
        if self.cache is None:
            return analysis.map_trace(trace, config)
        key = self._entry_key(analysis_name, trace, config)
        value = self.cache.get(key)
        if value is not MISS:
            return value
        value = analysis.map_trace(trace, config)
        self.cache.put(key, value)
        return value

    def map_traces(
        self,
        analysis_names: Sequence[str],
        traces: Sequence[Trace],
        config: Any,
    ) -> Dict[str, List[Any]]:
        """Partials for every (analysis, trace) pair, in trace order.

        Cache hits are satisfied up front; only the missing partials are
        fanned out to worker processes, grouped by trace so each trace
        is pickled to a worker at most once.
        """
        for name in analysis_names:
            get_analysis(name)
        results: Dict[str, List[Any]] = {
            name: [None] * len(traces) for name in analysis_names
        }
        fingerprint = config_fingerprint(config) if self.cache else ""
        missing: List[Tuple[int, List[str]]] = []
        for index, trace in enumerate(traces):
            names_missing: List[str] = []
            for name in analysis_names:
                if self.cache is None:
                    names_missing.append(name)
                    continue
                key = ResultCache.entry_key(
                    trace_digest(trace), fingerprint, name
                )
                value = self.cache.get(key)
                if value is MISS:
                    names_missing.append(name)
                else:
                    results[name][index] = value
            if names_missing:
                missing.append((index, names_missing))
        if missing:
            tasks = [
                (traces[index], tuple(names), config)
                for index, names in missing
            ]
            computed = parallel_map(_map_task, tasks, workers=self.workers)
            for (index, names), partials in zip(missing, computed):
                for name, partial in zip(names, partials):
                    results[name][index] = partial
                    if self.cache is not None:
                        key = ResultCache.entry_key(
                            trace_digest(traces[index]), fingerprint, name
                        )
                        self.cache.put(key, partial)
        return results

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def summarize(
        self,
        analysis_name: str,
        traces: Sequence[Trace],
        config: Any,
        perceptible_only: bool = False,
    ) -> Any:
        """The full summary of one analysis over ``traces``."""
        partials = self.map_traces([analysis_name], traces, config)[analysis_name]
        return get_analysis(analysis_name).reduce(
            partials, perceptible_only=perceptible_only
        )

    def summarize_all(
        self,
        analysis_names: Sequence[str],
        traces: Sequence[Trace],
        config: Any,
    ) -> Dict[str, Any]:
        """Summaries of several analyses, sharing one map fan-out."""
        partial_lists = self.map_traces(analysis_names, traces, config)
        return {
            name: get_analysis(name).reduce(partial_lists[name])
            for name in analysis_names
        }

    # ------------------------------------------------------------------
    # Parallel trace loading
    # ------------------------------------------------------------------

    def load_traces(
        self, paths: Sequence[Union[str, Path]]
    ) -> List[Trace]:
        """Load trace files, fanning the parsing out across workers."""
        return parallel_map(
            _load_task, [str(path) for path in paths], workers=self.workers
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def effective_workers(self) -> int:
        return resolve_workers(self.workers)

    def flush_cache_stats(self) -> None:
        """Persist this process's cache counters (no-op without a cache)."""
        if self.cache is not None:
            self.cache.flush_stats()

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return (
            f"AnalysisEngine(workers={self.workers!r}, cache={str(cache)!r}, "
            f"analyses={sorted(REGISTRY)})"
        )
