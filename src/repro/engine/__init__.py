"""The parallel map–reduce analysis engine with on-disk result caching.

LagAlyzer's analyses decompose into per-trace ``map_trace`` partials
merged by a ``reduce`` (see :mod:`repro.core.analyses`). This package
executes that decomposition at scale:

- :class:`~repro.engine.engine.AnalysisEngine` — fan ``map_trace`` out
  across worker processes and satisfy repeats from a content-addressed
  cache, with results bit-identical to the serial path.
- :class:`~repro.engine.cache.ResultCache` — the on-disk store, keyed
  by (trace digest, config fingerprint, analysis name, code version).
- :mod:`~repro.engine.scheduler` — process-pool plumbing with a serial
  fallback for restricted environments.

Every later scaling layer (sharding, streaming aggregation,
multi-backend execution) builds on this package.
"""

from repro.engine.cache import (
    CACHE_SCHEMA,
    CODE_VERSION,
    MISS,
    CacheStats,
    ResultCache,
    config_fingerprint,
    default_cache_dir,
)
from repro.engine.engine import (
    QUARANTINE_ERRORS,
    AnalysisEngine,
    QuarantinedTrace,
)
from repro.engine.scheduler import (
    RetryPolicy,
    TaskOutcome,
    parallel_map,
    resolve_workers,
    run_tasks,
)

__all__ = [
    "AnalysisEngine",
    "CACHE_SCHEMA",
    "CODE_VERSION",
    "CacheStats",
    "MISS",
    "QUARANTINE_ERRORS",
    "QuarantinedTrace",
    "ResultCache",
    "RetryPolicy",
    "TaskOutcome",
    "config_fingerprint",
    "default_cache_dir",
    "parallel_map",
    "resolve_workers",
    "run_tasks",
]
