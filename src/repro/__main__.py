"""Entry point for ``python -m repro`` — the unified CLI.

With no arguments, prints the command overview and exits 0.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
