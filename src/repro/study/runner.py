"""Running the characterization study.

The paper's methodology: four interactive sessions per application,
each analyzed offline by LagAlyzer; Table III reports per-application
averages over the sessions, and Figures 3-8 characterize patterns,
triggers, locations, and causes. :func:`run_study` reproduces that
pipeline, one application at a time (like the paper's tool, which loads
one session's trace into memory at a time, we keep only analysis
summaries, not traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import AnalysisConfig, LagAlyzer
from repro.core.concurrency import ConcurrencySummary
from repro.core.location import LocationSummary
from repro.core.occurrence import OccurrenceSummary
from repro.core.statistics import SessionStats, average_stats, mean_row
from repro.core.threadstates import ThreadStateSummary
from repro.core.triggers import TriggerSummary
from repro.apps.catalog import APPLICATION_NAMES
from repro.apps.sessions import simulate_sessions


@dataclass(frozen=True)
class StudyConfig:
    """How to run the study."""

    seed: int = 20100401
    sessions: int = 4
    scale: float = 1.0
    applications: Tuple[str, ...] = APPLICATION_NAMES
    perceptible_threshold_ms: float = 100.0

    def analysis_config(self) -> AnalysisConfig:
        return AnalysisConfig(
            perceptible_threshold_ms=self.perceptible_threshold_ms
        )


@dataclass
class AppResult:
    """Every per-application statistic the paper's evaluation uses."""

    name: str
    session_stats: List[SessionStats]
    mean_stats: SessionStats
    occurrence: OccurrenceSummary
    triggers_all: TriggerSummary
    triggers_perceptible: TriggerSummary
    location_all: LocationSummary
    location_perceptible: LocationSummary
    concurrency_all: ConcurrencySummary
    concurrency_perceptible: ConcurrencySummary
    threadstates_all: ThreadStateSummary
    threadstates_perceptible: ThreadStateSummary
    pattern_cdf: List[float]
    """Figure 3 curve: cumulative episode % by pattern % (101 points)."""


@dataclass
class StudyResult:
    """All application results plus the cross-application mean row."""

    config: StudyConfig
    apps: Dict[str, AppResult]

    @property
    def mean_stats(self) -> SessionStats:
        """The "Mean" row at the bottom of Table III."""
        return mean_row([result.mean_stats for result in self.apps.values()])

    def ordered(self) -> List[AppResult]:
        """Results in Table II order."""
        return [self.apps[name] for name in self.config.applications]


def analyze_app(
    name: str, config: StudyConfig
) -> AppResult:
    """Simulate and analyze one application's sessions."""
    traces = simulate_sessions(
        name, count=config.sessions, seed=config.seed, scale=config.scale
    )
    analyzer = LagAlyzer.from_traces(traces, config=config.analysis_config())
    per_session = analyzer.session_stats()
    return AppResult(
        name=analyzer.application,
        session_stats=per_session,
        mean_stats=average_stats(per_session, analyzer.application),
        occurrence=analyzer.occurrence_summary(),
        triggers_all=analyzer.trigger_summary(),
        triggers_perceptible=analyzer.trigger_summary(perceptible_only=True),
        location_all=analyzer.location_summary(),
        location_perceptible=analyzer.location_summary(perceptible_only=True),
        concurrency_all=analyzer.concurrency_summary(),
        concurrency_perceptible=analyzer.concurrency_summary(
            perceptible_only=True
        ),
        threadstates_all=analyzer.threadstate_summary(),
        threadstates_perceptible=analyzer.threadstate_summary(
            perceptible_only=True
        ),
        pattern_cdf=analyzer.pattern_table().cumulative_episode_distribution(),
    )


def run_study(
    config: Optional[StudyConfig] = None,
    progress: bool = False,
) -> StudyResult:
    """Run the full characterization study.

    Args:
        config: study parameters; defaults to the paper's setup (four
            full-length sessions per application, 100 ms threshold).
        progress: print one line per application as it completes.
    """
    config = config or StudyConfig()
    results: Dict[str, AppResult] = {}
    for name in config.applications:
        result = analyze_app(name, config)
        results[result.name] = result
        if progress:
            stats = result.mean_stats
            print(
                f"  {result.name:<14s} traced={stats.traced:7.0f} "
                f"perceptible={stats.perceptible:6.0f} "
                f"patterns={stats.distinct_patterns:6.0f}"
            )
    return StudyResult(config=config, apps=results)
